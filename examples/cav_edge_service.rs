//! The paper's §VII case study: a connected-and-autonomous-vehicle (CAV)
//! edge server providing privacy-preserving digit recognition to nearby smart
//! devices.
//!
//! A batch of 10 users each submit one encrypted image (the SIMD slots carry
//! the batch, paper §V-B); the CAV runs the hybrid pipeline through the
//! `Session` API and returns each passenger their logits; the run compares
//! hybrid against the pure-HE baseline on the same batch — the Fig. 8
//! experiment at example scale.
//!
//! ```text
//! cargo run --release -p hesgx-core --example cav_edge_service
//! ```

use hesgx_core::pipeline::total_enclave_cost;
use hesgx_core::prelude::*;
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::cryptonets::CryptoNets;
use hesgx_nn::dataset;
use hesgx_nn::layers::PoolKind;
use hesgx_nn::train::{train_paper_cnn, TrainConfig};
use std::time::Instant;

const BATCH: usize = 10;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    println!("CAV edge service: privacy-preserving inference for {BATCH} vehicle passengers");

    println!("\n== training both model variants ==");
    let cfg = TrainConfig {
        train_samples: 800,
        test_samples: 50,
        epochs: 2,
        ..Default::default()
    };
    let sigmoid_net = train_paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &cfg);
    let square_cfg = TrainConfig {
        learning_rate: 0.01,
        ..cfg
    };
    let square_net = train_paper_cnn(ActivationKind::Square, PoolKind::ScaledMean, &square_cfg);
    println!(
        "sigmoid model {:.1}% | square (HE-only) model {:.1}%",
        sigmoid_net.test_accuracy * 100.0,
        square_net.test_accuracy * 100.0
    );

    let hybrid_model =
        QuantizedCnn::from_network(&sigmoid_net.network, QuantPipeline::Hybrid, 16, 32, 16);
    let baseline_model =
        QuantizedCnn::from_network(&square_net.network, QuantPipeline::CryptoNets, 8, 8, 16);

    // Ten passengers, one image each.
    let samples: Vec<_> = sigmoid_net.test_set.iter().take(BATCH).collect();
    let images: Vec<Vec<i64>> = samples
        .iter()
        .map(|s| dataset::quantize_pixels(&s.image))
        .collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();

    println!("\n== hybrid framework (EncryptSGX) ==");
    let session = SessionBuilder::new()
        .params(ParamsPreset::Paper)
        .activation(ActivationKind::Sigmoid)
        .seed(5)
        .build(Platform::new(77), hybrid_model.clone())?;
    println!("HE worker threads: {}", session.threads());
    let start = Instant::now();
    let all_logits = session.serve(InferRequest::batch(images.clone()))?.logits;
    let hybrid_wall = start.elapsed();
    let metrics = session.metrics().expect("one batch ran");
    let enclave_overhead = {
        let c = total_enclave_cost(&metrics);
        std::time::Duration::from_nanos(c.total_ns().saturating_sub(c.real_ns))
    };

    // Each passenger reads their own logit row.
    let hybrid_preds: Vec<usize> = all_logits
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(class, _)| class)
                .expect("model has classes")
        })
        .collect();
    let hybrid_total = hybrid_wall + enclave_overhead;
    println!(
        "pipeline: {hybrid_wall:?} wall + {enclave_overhead:?} modeled SGX overhead = {hybrid_total:?} for {BATCH} images"
    );
    println!(
        "enclave side-channel exposure: {} ECALLs, {} page faults",
        session
            .service()
            .enclave()
            .enclave()
            .with_monitor(|m| m.ecall_count()),
        session
            .service()
            .enclave()
            .enclave()
            .with_monitor(|m| m.page_fault_count())
    );

    println!("\n== pure-HE baseline (Encrypted / CryptoNets) ==");
    let mut rng = ChaChaRng::from_seed(4242);
    let engine = CryptoNets::new(baseline_model.clone(), 1024)?;
    let keys = engine.system().generate_keys(&mut rng);
    let enc = engine.encrypt_batch(&images, &keys, &mut rng)?;
    let start = Instant::now();
    let (logits, counter) = engine.infer(&enc, &keys)?;
    let baseline_wall = start.elapsed();
    let baseline_preds = engine.decrypt_predictions(&logits, &keys, BATCH)?;
    println!(
        "pipeline: {baseline_wall:?} for {BATCH} images ({} C×P, {} C×C multiplications, {} relinearizations)",
        counter.ct_pt_mul, counter.ct_ct_mul, counter.relin
    );

    println!("\n== results ==");
    println!("passenger  label  hybrid  baseline");
    let mut hybrid_hits = 0;
    let mut baseline_hits = 0;
    for b in 0..BATCH {
        println!(
            "{b:9}  {:5}  {:6}  {:8}",
            labels[b], hybrid_preds[b], baseline_preds[b]
        );
        hybrid_hits += (hybrid_preds[b] == labels[b]) as usize;
        baseline_hits += (baseline_preds[b] == labels[b]) as usize;
    }
    println!(
        "accuracy on this batch: hybrid {hybrid_hits}/{BATCH}, baseline {baseline_hits}/{BATCH}"
    );
    let saving = 1.0 - hybrid_total.as_secs_f64() / baseline_wall.as_secs_f64();
    println!(
        "hybrid saves {:.1}% of the pure-HE inference time (paper: 39.615%)",
        saving * 100.0
    );
    Ok(())
}
