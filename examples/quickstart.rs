//! Quickstart: build a hybrid HE+SGX inference session, attest it, and run
//! one encrypted prediction through the unified `Session` API.
//!
//! ```text
//! cargo run --release -p hesgx-core --example quickstart
//! ```

use hesgx_core::keydist::verify_key_ceremony;
use hesgx_core::prelude::*;
use hesgx_nn::dataset;
use hesgx_nn::layers::PoolKind;
use hesgx_nn::train::{train_paper_cnn, TrainConfig};
use hesgx_tee::attestation::AttestationService;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // 1. Train the paper's 4-layer CNN (conv → sigmoid → mean-pool → FC) on
    //    the synthetic digit set, then quantize it for the hybrid pipeline.
    println!("[1/5] training the case-study CNN...");
    let config = TrainConfig {
        train_samples: 800,
        test_samples: 100,
        epochs: 2,
        ..Default::default()
    };
    let trained = train_paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &config);
    println!(
        "      float test accuracy: {:.1}%",
        trained.test_accuracy * 100.0
    );
    let model = QuantizedCnn::from_network(&trained.network, QuantPipeline::Hybrid, 16, 32, 16);

    // 2. Build the session: the enclave generates the FV keys inside and
    //    binds them into an attestation quote — no trusted third party. The
    //    HE hot paths run on a work-stealing pool, one worker per core.
    println!("[2/5] building the inference session (enclave key ceremony)...");
    let platform = Platform::new(7);
    let mut attestation = AttestationService::new();
    attestation.register_platform(platform.quoting_enclave());
    let session = SessionBuilder::new()
        .params(ParamsPreset::Paper)
        .activation(ActivationKind::Sigmoid)
        .seed(42)
        .build(platform, model.clone())?;
    println!("      HE worker threads: {}", session.threads());

    // 3. The user verifies the quote chain before trusting the keys.
    println!("[3/5] verifying the attestation quote...");
    let expected = *session.service().enclave().enclave().measurement();
    verify_key_ceremony(&attestation, session.ceremony(), &expected)?;
    println!("      quote verified; keys accepted");

    // 4. Encrypt an image, run the hybrid pipeline, decrypt — one call.
    println!("[4/5] running one encrypted prediction...");
    let sample = &trained.test_set[0];
    let pixels = dataset::quantize_pixels(&sample.image);
    let logits = session
        .serve(InferRequest::single(pixels.clone()))?
        .logits
        .remove(0);

    // 5. The plaintext argmax of the decrypted logits is the prediction.
    println!("[5/5] reading the result...");
    let predicted = logits
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(class, _)| class)
        .expect("model has classes");
    let metrics = session.metrics().expect("one inference ran");
    println!();
    println!("true label:           {}", sample.label);
    println!("encrypted prediction: {predicted}");
    println!(
        "plaintext reference:  {} (must match the encrypted result exactly)",
        model.predict_ints(&pixels)
    );
    println!(
        "pipeline time:        {:?} ({} threads)",
        metrics.total(),
        metrics.threads
    );
    for stage in &metrics.stages {
        println!("  - {:<36} {:?}", stage.name, stage.effective());
    }
    Ok(())
}
