//! Quickstart: provision the hybrid HE+SGX inference service, attest it,
//! encrypt one image, run inference, decrypt the prediction.
//!
//! ```text
//! cargo run --release -p hesgx-core --example quickstart
//! ```

use hesgx_core::keydist::verify_key_ceremony;
use hesgx_core::pipeline::{EcallBatching, HybridInference};
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::image::EncryptedMap;
use hesgx_nn::dataset;
use hesgx_nn::layers::{ActivationKind, PoolKind};
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_nn::train::{train_paper_cnn, TrainConfig};
use hesgx_tee::attestation::AttestationService;
use hesgx_tee::enclave::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the paper's 4-layer CNN (conv → sigmoid → mean-pool → FC) on
    //    the synthetic digit set, then quantize it for the hybrid pipeline.
    println!("[1/5] training the case-study CNN...");
    let config = TrainConfig {
        train_samples: 800,
        test_samples: 100,
        epochs: 2,
        ..Default::default()
    };
    let trained = train_paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &config);
    println!("      float test accuracy: {:.1}%", trained.test_accuracy * 100.0);
    let model = QuantizedCnn::from_network(&trained.network, QuantPipeline::Hybrid, 16, 32, 16);

    // 2. Provision the edge service: the enclave generates the FV keys and
    //    binds them into an attestation quote — no trusted third party.
    println!("[2/5] provisioning the hybrid service (enclave key ceremony)...");
    let platform = Platform::new(7);
    let mut attestation = AttestationService::new();
    attestation.register_platform(platform.quoting_enclave());
    let (service, ceremony) = HybridInference::provision(platform, model.clone(), 1024, 42)?;

    // 3. The user verifies the quote chain before trusting the keys.
    println!("[3/5] verifying the attestation quote...");
    let expected = *service.enclave().enclave().measurement();
    let public_keys = verify_key_ceremony(&attestation, &ceremony, &expected)?;
    println!("      quote verified; keys accepted");

    // 4. Encrypt an image and submit it.
    println!("[4/5] encrypting a digit image and running hybrid inference...");
    let sample = &trained.test_set[0];
    let pixels = dataset::quantize_pixels(&sample.image);
    let mut rng = ChaChaRng::from_seed(99);
    let encrypted = EncryptedMap::encrypt_images(
        service.system(),
        &[pixels.clone()],
        model.in_side,
        &public_keys,
        &mut rng,
    )?;
    let (logits, metrics) = service.infer(&encrypted, EcallBatching::Batched)?;

    // 5. Decrypt the logits with the user's secret keys and take the argmax.
    println!("[5/5] decrypting the result...");
    let mut best = (0usize, i128::MIN);
    for (class, ct) in logits.iter().enumerate() {
        let value = service.system().decrypt_slots(ct, &ceremony.user_secret)?[0];
        if value > best.1 {
            best = (class, value);
        }
    }
    println!();
    println!("true label:           {}", sample.label);
    println!("encrypted prediction: {}", best.0);
    println!(
        "plaintext reference:  {} (must match the encrypted result exactly)",
        model.predict_ints(&pixels)
    );
    println!("pipeline time:        {:?}", metrics.total());
    for stage in &metrics.stages {
        println!("  - {:<36} {:?}", stage.name, stage.effective());
    }
    Ok(())
}
