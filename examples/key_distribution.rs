//! Key distribution without a trusted third party (paper §IV-A, Fig. 1 vs
//! Fig. 2): the enclave generates the FV keys, the quote carries them to the
//! user, and tampering anywhere in the chain is detected.
//!
//! ```text
//! cargo run --release -p hesgx-core --example key_distribution
//! ```

use hesgx_core::keydist::{
    digest_public_keys, enclave_generate_keys, seal_secret_keys, verify_key_ceremony,
};
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::crt::CrtPlainSystem;
use hesgx_tee::attestation::AttestationService;
use hesgx_tee::enclave::{EnclaveBuilder, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== the classic deployment's problem (paper Fig. 1) ==");
    println!("HE inference needs a PKI-style trusted third party to distribute keys;");
    println!("the hybrid framework replaces it with the enclave + remote attestation.\n");

    // The edge provider's platform and inference enclave.
    let platform = Platform::new(2024);
    let enclave = EnclaveBuilder::new("hesgx-inference")
        .add_code(b"hybrid-inference-v1")
        .build(platform.clone());
    println!(
        "enclave measurement (MRENCLAVE): {}",
        hex(&enclave.measurement()[..8])
    );

    // The attestation service knows the platform (DCAP provisioning).
    let mut service = AttestationService::new();
    service.register_platform(platform.quoting_enclave());

    // Step 1: key generation inside the enclave.
    let sys = CrtPlainSystem::new(1024, &[65537])?;
    let mut rng = ChaChaRng::from_seed(5);
    let (keys, ceremony) = enclave_generate_keys(&enclave, &sys, &mut rng)?;
    println!(
        "\n[enclave] generated FV keys inside SGX in {:.3} ms (virtual)",
        ceremony.keygen_cost.total_ns() as f64 / 1e6
    );
    println!(
        "[enclave] public-key digest in quote user-data: {}",
        hex(&digest_public_keys(&ceremony.public)[..8])
    );

    // Step 2: the user verifies the quote chain.
    let accepted = verify_key_ceremony(&service, &ceremony, enclave.measurement())?;
    println!(
        "[user]    quote verified against attestation service — keys accepted ({} moduli)",
        accepted.len()
    );

    // Step 3: what an attacker cannot do.
    println!("\n== attack scenarios ==");

    // (a) substitute their own keys in transit.
    let mut tampered = hesgx_core::keydist::KeyCeremonyPublic {
        public: sys.generate_keys(&mut rng).public,
        user_secret: ceremony.user_secret.clone(),
        quote: ceremony.quote.clone(),
        keygen_cost: ceremony.keygen_cost,
    };
    match verify_key_ceremony(&service, &tampered, enclave.measurement()) {
        Err(e) => println!("(a) key substitution in transit      -> REJECTED ({e})"),
        Ok(_) => unreachable!("tampered keys must be rejected"),
    }

    // (b) run a modified enclave binary.
    let evil_enclave = EnclaveBuilder::new("hesgx-inference")
        .add_code(b"hybrid-inference-v1-BACKDOORED")
        .build(platform.clone());
    let (_, evil_ceremony) = enclave_generate_keys(&evil_enclave, &sys, &mut rng)?;
    match verify_key_ceremony(&service, &evil_ceremony, enclave.measurement()) {
        Err(e) => println!("(b) backdoored enclave binary        -> REJECTED ({e})"),
        Ok(_) => unreachable!("wrong measurement must be rejected"),
    }

    // (c) quote from an unregistered (fake) platform.
    let rogue_platform = Platform::new(666);
    let rogue_enclave = EnclaveBuilder::new("hesgx-inference")
        .add_code(b"hybrid-inference-v1")
        .build(rogue_platform);
    let (_, rogue_ceremony) = enclave_generate_keys(&rogue_enclave, &sys, &mut rng)?;
    match verify_key_ceremony(&service, &rogue_ceremony, rogue_enclave.measurement()) {
        Err(e) => println!("(c) quote from unregistered platform -> REJECTED ({e})"),
        Ok(_) => unreachable!("unknown platform must be rejected"),
    }

    // (d) tamper with a sealed secret-key blob at rest.
    let blob = seal_secret_keys(&enclave, &keys.secret);
    tampered.quote = ceremony.quote.clone();
    let _ = tampered;
    let (ok, _) = enclave.unseal(&blob);
    assert!(ok.is_ok());
    // A blob sealed by a different enclave identity must not open here.
    let other = EnclaveBuilder::new("other")
        .add_code(b"other")
        .build(platform);
    let (forged, _) = other.seal(b"forged keys");
    match enclave.unseal(&forged).0 {
        Err(e) => println!("(d) forged sealed key blob           -> REJECTED ({e})"),
        Ok(_) => unreachable!("forged blob must be rejected"),
    }

    println!("\nkey distribution established with no trusted third party.");
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
