//! Operation explorer: the paper's §VI quantitative analysis at example
//! scale — per-operation costs of FV and the enclave, SIMD batching
//! throughput, and the pooling-strategy decision rule.
//!
//! ```text
//! cargo run --release -p hesgx-core --example operation_explorer
//! ```

use hesgx_bfv::prelude::*;
use hesgx_core::planner::PoolStrategy;
use hesgx_core::InferenceEnclave;
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::crt::CrtPlainSystem;
use hesgx_henn::image::EncryptedMap;
use hesgx_henn::ops::{self, OpCounter};
use hesgx_nn::layers::ActivationKind;
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_tee::enclave::{EnclaveBuilder, Platform};
use std::time::Instant;

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaChaRng::from_seed(1);

    println!("== FV basics at the paper's parameters (n = 1024, t = 65537) ==");
    let params = presets::paper_n1024();
    let ctx = BfvContext::new(params.clone())?;
    println!(
        "q = {} bits across {} RNS limbs | security: {:?}",
        params.coeff_modulus_bits(),
        params.coeff_moduli().len(),
        params.security_level()
    );
    let keygen = KeyGenerator::new(ctx.clone(), &mut rng);
    let encryptor = Encryptor::new(ctx.clone(), keygen.public_key());
    let decryptor = Decryptor::new(ctx.clone(), keygen.secret_key());
    let evaluator = Evaluator::new(ctx.clone());
    let evk = keygen.evaluation_keys(&mut rng);

    let pt = Plaintext::constant(123);
    let ct = encryptor.encrypt(&pt, &mut rng)?;
    println!(
        "fresh noise budget: {} bits",
        decryptor.invariant_noise_budget(&ct)?
    );
    println!(
        "encrypt:      {:8.3} ms",
        time_ms(|| {
            let _ = encryptor.encrypt(&pt, &mut rng).unwrap();
        })
    );
    println!(
        "decrypt:      {:8.3} ms",
        time_ms(|| {
            let _ = decryptor.decrypt(&ct).unwrap();
        })
    );
    println!(
        "add:          {:8.3} ms",
        time_ms(|| {
            let _ = evaluator.add(&ct, &ct).unwrap();
        })
    );
    println!(
        "mul_plain:    {:8.3} ms",
        time_ms(|| {
            let _ = evaluator.mul_plain_signed_scalar(&ct, 31).unwrap();
        })
    );
    let mut size3 = None;
    println!(
        "multiply:     {:8.3} ms",
        time_ms(|| {
            size3 = Some(evaluator.multiply(&ct, &ct).unwrap());
        })
    );
    let size3 = size3.unwrap();
    println!(
        "relinearize:  {:8.3} ms",
        time_ms(|| {
            let _ = evaluator.relinearize(&size3, &evk).unwrap();
        })
    );
    println!(
        "noise after square: {} bits",
        decryptor.invariant_noise_budget(&size3)?
    );

    println!("\n== SIMD batching (paper §VIII: 'you can get 1024 times the throughput') ==");
    let batch_encoder = BatchEncoder::new(&params)?;
    let values: Vec<u64> = (0..batch_encoder.slot_count() as u64).collect();
    let packed = batch_encoder.encode(&values)?;
    let ct_packed = encryptor.encrypt(&packed, &mut rng)?;
    let tripled = evaluator.mul_plain_signed_scalar(&ct_packed, 3)?;
    let decoded = batch_encoder.decode(&decryptor.decrypt(&tripled)?);
    assert!(decoded
        .iter()
        .enumerate()
        .all(|(i, &v)| v == (3 * i as u64) % 65537));
    println!(
        "{} independent values in ONE ciphertext, one op = {} multiplications",
        batch_encoder.slot_count(),
        batch_encoder.slot_count()
    );

    println!("\n== Fig. 4 intuition: op count vs kernel size (28x28 map) ==");
    for k in [1usize, 7, 14, 15, 22, 28] {
        println!(
            "kernel {k:2}: {:6} C×P ops",
            OpCounter::conv_theoretical(28, k)
        );
    }

    println!("\n== pooling strategy rule (paper §VI-D) ==");
    let sys = CrtPlainSystem::new(1024, &[65537])?;
    let keys = sys.generate_keys(&mut rng);
    let platform = Platform::new(3);
    let enclave = EnclaveBuilder::new("explorer")
        .add_code(b"x")
        .build(platform);
    let ie = InferenceEnclave::new(enclave, keys.secret.clone(), keys.public.clone(), 9);
    let images = vec![(0..576).map(|p| (p % 16) as i64).collect::<Vec<i64>>()];
    let input = EncryptedMap::encrypt_images(&sys, &images, 24, &keys.public, &mut rng)?;
    println!("window   rule        SGXDiv(ms)   SGXPool(ms)");
    for window in [2usize, 3, 4, 6, 8, 12] {
        let model = QuantizedCnn {
            pipeline: QuantPipeline::Hybrid,
            in_side: 24,
            conv_out: 1,
            kernel: 1,
            window,
            classes: 10,
            conv_weights: vec![1],
            conv_bias: vec![0],
            fc_weights: vec![1; 10 * (24 / window) * (24 / window)],
            fc_bias: vec![0; 10],
            weight_scale: 16,
            fc_scale: 16,
            act_scale: 16,
        };
        let start = Instant::now();
        let mut counter = OpCounter::default();
        let summed =
            ops::he_scaled_mean_pool(&sys, &input, window, &mut counter, &PolyArena::new())?;
        let (_, div_cost) = ie.divide_map(&sys, &summed, &model)?;
        let div_ms = start.elapsed().as_secs_f64() * 1e3
            + (div_cost.total_ns().saturating_sub(div_cost.real_ns)) as f64 / 1e6;
        let (_, pool_cost) = ie.pool_full_map(&sys, &input, &model, false)?;
        let pool_ms = pool_cost.total_ns() as f64 / 1e6;
        println!(
            "{window:6}   {:?}   {div_ms:10.3}   {pool_ms:11.3}",
            PoolStrategy::select(window)
        );
    }

    println!("\n== exact activations inside SGX (paper §VI-C) ==");
    let model = QuantizedCnn {
        pipeline: QuantPipeline::Hybrid,
        in_side: 8,
        conv_out: 1,
        kernel: 1,
        window: 2,
        classes: 10,
        conv_weights: vec![1],
        conv_bias: vec![0],
        fc_weights: vec![1; 160],
        fc_bias: vec![0; 10],
        weight_scale: 16,
        fc_scale: 16,
        act_scale: 16,
    };
    let img = vec![(0..64).map(|p| p as i64 * 4 - 128).collect::<Vec<i64>>()];
    let map = EncryptedMap::encrypt_images(&sys, &img, 8, &keys.public, &mut rng)?;
    for kind in [
        ActivationKind::Sigmoid,
        ActivationKind::Relu,
        ActivationKind::Tanh,
        ActivationKind::LeakyRelu,
    ] {
        let (_, cost) = ie.activation_map(&sys, &map, &model, kind)?;
        println!(
            "{kind:?} over 64 cells: {:.3} ms virtual",
            cost.total_ns() as f64 / 1e6
        );
    }
    println!("\nall exact — no polynomial approximation, no accuracy loss.");
    Ok(())
}
