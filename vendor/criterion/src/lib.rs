//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`BenchmarkGroup`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! mean/min/max timing report instead of criterion's statistics engine.
//!
//! Mirrors upstream's test-mode behaviour: when the binary is invoked
//! without `--bench` (as `cargo test` does for `harness = false` bench
//! targets), every benchmark body runs exactly once as a smoke test and no
//! timing is collected.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched-iteration inputs are grouped; accepted for API
/// compatibility, the stand-in times each batch of one.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke_only: bool,
}

impl Bencher {
    /// Times `routine`, calling it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let runs = if self.smoke_only { 1 } else { self.sample_size };
        for _ in 0..runs {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let runs = if self.smoke_only { 1 } else { self.sample_size };
        for _ in 0..runs {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "bench {name:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples)",
        n = samples.len()
    );
}

fn run_one(name: &str, sample_size: usize, smoke_only: bool, f: &mut dyn FnMut(&mut Bencher)) {
    if smoke_only {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            smoke_only,
        };
        f(&mut b);
        println!("bench {name}: ok (smoke test)");
    } else {
        let mut b = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            smoke_only,
        };
        f(&mut b);
        report(name, &b.samples);
    }
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    smoke_only: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench to harness=false targets; cargo test
        // does not. Upstream criterion uses the same signal to pick
        // full-measurement vs smoke-test mode.
        let full = std::env::args().any(|a| a == "--bench");
        Criterion {
            smoke_only: !full,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.default_sample_size, self.smoke_only, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Finalises reporting (upstream API; the stand-in reports eagerly).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.effective_samples(),
            self.criterion.smoke_only,
            &mut f,
        );
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.effective_samples(),
            self.criterion.smoke_only,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the stand-in reports
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (upstream `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` (upstream `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
