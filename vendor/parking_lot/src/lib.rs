//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` wrapping the
//! `std::sync` primitives with the `parking_lot` API shape — `lock()`
//! returns the guard directly and poisoning is transparently recovered
//! (matching `parking_lot`'s poison-free semantics).

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
