//! The `Strategy` trait, range strategies, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
    )*};
}
range_strategy_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let f = (-2.5f64..2.5).generate(&mut rng);
            assert!((-2.5..2.5).contains(&f));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::from_seed(1);
        let doubled = (1u64..10).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }
}
