//! Deterministic test runner: config, RNG, and case loop.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases (upstream constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the single-core CI budget sane
        // while still exercising varied inputs. Tests that need more set
        // `with_cases` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition unmet (`prop_assume!`); the case is redrawn, not failed.
    Reject,
    /// Assertion failure with message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs the failure variant (used by the assertion macros).
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic RNG handed to strategies (SplitMix64).
///
/// Seeded from the test's fully-qualified name so every run of a given test
/// draws the same case sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a numeric seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5bf0_3635_d4f6_2d1c,
        }
    }

    /// Creates an RNG seeded from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs the case loop for one property test.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let rng = TestRng::from_name(name);
        TestRunner { config, name, rng }
    }

    /// Executes `body` until `config.cases` cases succeed, redrawing on
    /// `Reject` and panicking (with the case index) on `Fail`.
    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let max_rejects = self.config.cases.saturating_mul(20).max(1000);
        let mut rejects = 0u32;
        while passed < self.config.cases {
            match body(&mut self.rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "proptest {}: too many rejected cases ({} rejects, {} passed)",
                            self.name, rejects, passed
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        self.name,
                        passed + 1,
                        msg
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("mod::case");
        let mut b = TestRng::from_name("mod::case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("mod::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn runner_counts_rejections_separately() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "t");
        let mut calls = 0;
        runner.run(|rng| {
            calls += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls >= 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(3), "t");
        runner.run(|_| Err(TestCaseError::fail("boom".into())));
    }
}
