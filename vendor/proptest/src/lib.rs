//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `any::<T>()`, range strategies, `prop_map`, and
//! `proptest::collection::vec`. Generation is deterministic: each test gets
//! an RNG seeded from its fully-qualified name, so failures reproduce
//! run-to-run. Unlike upstream proptest there is no shrinking — a failing
//! case reports the case number and assertion message only.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `Arbitrary` trait and the `any` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types that can be generated from raw RNG output.
    pub trait Arbitrary: Sized {
        /// Draws a value from the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy producing arbitrary values of `T` (`any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    // `vec(strategy, 1..8)` with an untyped integer range infers i32 when
    // the strategy's element type fixes no usize context; accept it too.
    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            assert!(0 <= r.start && r.start < r.end, "invalid size range");
            SizeRange {
                min: r.start as usize,
                max_exclusive: r.end as usize,
            }
        }
    }

    /// Strategy generating `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports matching `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(|__proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                #[allow(unreachable_code)]
                (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left,
                right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            ),
        }
    };
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                left,
                format!($($fmt)+)
            ),
        }
    };
}

/// Rejects the current case (drawing a replacement) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
