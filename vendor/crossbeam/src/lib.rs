//! Offline stand-in for `crossbeam`, covering the scoped-thread API the
//! workspace uses (`crossbeam::thread::scope`). Backed by
//! `std::thread::scope`, which provides the same structured-concurrency
//! guarantee: all spawned threads join before `scope` returns, so borrows
//! of stack data are sound without `'static` bounds.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::thread as std_thread;

    /// A scope handle passed to the `scope` closure; mirrors
    /// `crossbeam_utils::thread::Scope`.
    #[derive(Copy, Clone)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread; mirrors
    /// `crossbeam_utils::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// Like crossbeam, a panicking thread surfaces as `Err` with the
        /// panic payload.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam style), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All threads are joined before this returns.
    ///
    /// Returns `Ok(result)` on success, matching crossbeam's signature.
    /// Unlike crossbeam (which collects child panics into `Err`), an
    /// unjoined child panic propagates out of `scope` as a panic — the
    /// workspace joins every handle it spawns, so the two behaviours
    /// coincide for our callers.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
