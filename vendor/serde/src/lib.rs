//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names (blanket-implemented,
//! since the workspace's byte formats are hand-rolled) and re-exports the
//! no-op derive macros so `#[derive(Serialize, Deserialize)]` compiles
//! without a registry. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
