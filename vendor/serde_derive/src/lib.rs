//! Offline stand-in for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace's serialization is hand-rolled (`hesgx-bfv::serialization`);
//! the `#[derive(Serialize, Deserialize)]` attributes are declarative
//! documentation of which types are wire-safe. Expanding to an empty token
//! stream keeps those declarations compiling without a registry.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
