#!/usr/bin/env bash
# Local CI: the exact checks the GitHub Actions workflow runs.
# Usage: ./ci.sh [--quick]   (--quick skips the slow release test pass)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Lint gate: the baseline grandfathers nothing today (header-only file),
# so any finding is a new finding and fails; --json must be byte-identical
# across two runs (the lint's own output is held to the replay contract),
# and the SARIF export is produced as a CI artifact.
echo "==> hesgx-lint --workspace (baseline gate + json determinism + sarif)"
cargo run -q -p hesgx-lint --offline -- --workspace --baseline lint-baseline.txt
mkdir -p target/lint
cargo run -q -p hesgx-lint --offline -- --workspace --baseline lint-baseline.txt --json > target/lint/lint.first.json
cargo run -q -p hesgx-lint --offline -- --workspace --baseline lint-baseline.txt --json > target/lint/lint.json
diff target/lint/lint.first.json target/lint/lint.json
rm -f target/lint/lint.first.json
cargo run -q -p hesgx-lint --offline -- --workspace --baseline lint-baseline.txt --sarif > target/lint/lint.sarif
test -s target/lint/lint.sarif

echo "==> cargo build --release"
cargo build --release --offline

if [ "$quick" -eq 0 ]; then
    echo "==> cargo test (release)"
    cargo test --workspace --release --offline -q
else
    echo "==> skipping tests (--quick)"
fi

# Chaos sweep: fixed fault-plan seeds (see crates/bench chaos_sweep::PLAN_SEEDS);
# writes the per-seed FaultReport artifact to target/chaos-report.json.
echo "==> chaos sweep"
cargo run --release -q -p hesgx-bench --offline --bin repro -- chaos_sweep --quick
test -s target/chaos-report.json

# Obs report: deterministic per-layer cost accounting; reconciles the obs
# spans against the pipeline metrics ns-for-ns and writes the snapshot
# artifact to target/obs/obs_report.json.
echo "==> obs report"
cargo run --release -q -p hesgx-bench --offline --bin repro -- obs_report --quick
test -s target/obs/obs_report.json

# Trace determinism gate: run the timeline experiment twice and require the
# Perfetto trace and the Prometheus exposition to be byte-identical — the
# virtual-clock contract (DESIGN.md §13) as an executable check.
echo "==> trace determinism (two runs, diffed)"
cargo run --release -q -p hesgx-bench --offline --bin repro -- trace --quick
test -s target/obs/trace-7.json
test -s target/obs/trace-7.prom
cp target/obs/trace-7.json target/obs/trace-7.first.json
cp target/obs/trace-7.prom target/obs/trace-7.first.prom
cargo run --release -q -p hesgx-bench --offline --bin repro -- trace --quick
diff target/obs/trace-7.first.json target/obs/trace-7.json
diff target/obs/trace-7.first.prom target/obs/trace-7.prom
rm -f target/obs/trace-7.first.json target/obs/trace-7.first.prom

# Serving-layer determinism gate: the serve_load sweep runs twice and the
# latency report, obs snapshot, and Prometheus export must be byte-identical
# (each run already asserts identity across HE pool sizes 1/2/4 and that
# SIMD batching cuts the modeled per-request HE cost at high arrival rate).
echo "==> serve load (two runs, diffed)"
cargo run --release -q -p hesgx-bench --offline --bin repro -- serve_load --quick
test -s target/bench/BENCH_serve.json
test -s target/obs/serve-load.json
test -s target/obs/serve-load.prom
cp target/bench/BENCH_serve.json target/bench/BENCH_serve.first.json
cp target/obs/serve-load.json target/obs/serve-load.first.json
cp target/obs/serve-load.prom target/obs/serve-load.first.prom
cargo run --release -q -p hesgx-bench --offline --bin repro -- serve_load --quick
diff target/bench/BENCH_serve.first.json target/bench/BENCH_serve.json
diff target/obs/serve-load.first.json target/obs/serve-load.json
diff target/obs/serve-load.first.prom target/obs/serve-load.prom
rm -f target/bench/BENCH_serve.first.json target/obs/serve-load.first.json target/obs/serve-load.first.prom

# NTT bench determinism gate: wall times live in BENCH_ntt.json (informative,
# never diffed); the replay-stable face — tier checksums, logits-identity
# flags, HE op counts — is BENCH_ntt.deterministic.json, which must be
# byte-identical across two runs. Each run also asserts in-process that the
# lazy/cached kernels are bit-identical to the eager reference and that the
# cached pipeline performs zero per-request weight preparations.
echo "==> ntt bench (two runs, deterministic sections diffed)"
cargo run --release -q -p hesgx-bench --offline --bin repro -- ntt_bench --quick
test -s target/bench/BENCH_ntt.json
test -s target/bench/BENCH_ntt.deterministic.json
cp target/bench/BENCH_ntt.deterministic.json target/bench/BENCH_ntt.deterministic.first.json
cargo run --release -q -p hesgx-bench --offline --bin repro -- ntt_bench --quick
diff target/bench/BENCH_ntt.deterministic.first.json target/bench/BENCH_ntt.deterministic.json
rm -f target/bench/BENCH_ntt.deterministic.first.json

# Transciphered-ingress gate: wall times live in BENCH_transcipher.json
# (informative, never diffed); the replay-stable face — upload bytes both
# ways, the reduction ratio, logit-identity and cost-reconciliation flags,
# the modeled ECALL cost — is BENCH_transcipher.deterministic.json, which
# must be byte-identical across two runs. Each run serves the same batch
# through both ingress modes at HE pool sizes 1/2/4.
echo "==> transcipher bench (two runs, deterministic sections diffed)"
cargo run --release -q -p hesgx-bench --offline --bin repro -- transcipher --quick
test -s target/bench/BENCH_transcipher.json
test -s target/bench/BENCH_transcipher.deterministic.json
cp target/bench/BENCH_transcipher.deterministic.json target/bench/BENCH_transcipher.deterministic.first.json
cargo run --release -q -p hesgx-bench --offline --bin repro -- transcipher --quick
diff target/bench/BENCH_transcipher.deterministic.first.json target/bench/BENCH_transcipher.deterministic.json
rm -f target/bench/BENCH_transcipher.deterministic.first.json

# Profile gate: the run itself asserts the deterministic face (tree shape,
# call counts, bytes — no nanoseconds) is byte-identical across HE pool
# sizes 1/2/4, that profiled logits match an unprofiled serve bit-for-bit,
# and that the measured/modeled drift ratio stays inside the checked-in
# budget band. The run-twice diff below covers the cross-run half of the
# contract; the flamegraph and hotspot table are wall-face artifacts for
# humans, never diffed.
echo "==> profile (two runs, deterministic sections diffed)"
cargo run --release -q -p hesgx-bench --offline --bin repro -- profile --quick
test -s target/bench/BENCH_profile.json
test -s target/bench/BENCH_profile.deterministic.json
test -s target/bench/profile.collapsed.txt
test -s target/bench/profile_hotspots.txt
cp target/bench/BENCH_profile.deterministic.json target/bench/BENCH_profile.deterministic.first.json
cargo run --release -q -p hesgx-bench --offline --bin repro -- profile --quick
diff target/bench/BENCH_profile.deterministic.first.json target/bench/BENCH_profile.deterministic.json
rm -f target/bench/BENCH_profile.deterministic.first.json

echo "ci: all checks passed"
