//! Property-based tests for the TEE simulator: sealing integrity, EPC
//! accounting invariants, attestation chain robustness, and cost-model
//! monotonicity.

use hesgx_tee::attestation::AttestationService;
use hesgx_tee::cost::{CostModel, VirtualClock};
use hesgx_tee::enclave::{EnclaveBuilder, Platform};
use hesgx_tee::epc::{Epc, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn seal_roundtrip_any_payload(code in proptest::collection::vec(any::<u8>(), 1..64),
                                  payload in proptest::collection::vec(any::<u8>(), 0..1000)) {
        let platform = Platform::new(1);
        let enclave = EnclaveBuilder::new("p").add_code(&code).build(platform);
        let (blob, _) = enclave.seal(&payload);
        let (restored, _) = enclave.unseal(&blob);
        prop_assert_eq!(restored.unwrap(), payload);
    }

    #[test]
    fn tampered_blob_never_unseals(payload in proptest::collection::vec(any::<u8>(), 1..200),
                                   flip_byte in any::<u8>(), flip_pos in any::<usize>()) {
        prop_assume!(flip_byte != 0);
        let platform = Platform::new(2);
        let enclave = EnclaveBuilder::new("p").add_code(b"c").build(platform);
        let (blob, _) = enclave.seal(&payload);
        // Round-trip through serde-free byte-level tampering: rebuild a blob
        // with one ciphertext byte flipped by re-sealing on another enclave is
        // covered elsewhere; here flip within the same enclave via clone.
        let mut tampered = blob.clone();
        // SealedBlob fields are private; tamper by flipping a payload byte
        // before sealing and checking the tags differ instead.
        let mut altered = payload.clone();
        let pos = flip_pos % altered.len();
        altered[pos] ^= flip_byte;
        let (blob2, _) = enclave.seal(&altered);
        prop_assert_ne!(&blob, &blob2);
        let _ = &mut tampered;
    }

    #[test]
    fn quote_chain_verifies_for_any_user_data(user_data in proptest::collection::vec(any::<u8>(), 0..500)) {
        let platform = Platform::new(3);
        let enclave = EnclaveBuilder::new("p").add_code(b"c").build(platform.clone());
        let mut service = AttestationService::new();
        service.register_platform(platform.quoting_enclave());
        let report = enclave.create_report(user_data.clone());
        let quote = platform.quoting_enclave().quote(&report).unwrap();
        let verified = service.verify(&quote).unwrap();
        prop_assert_eq!(verified.user_data, user_data);
        prop_assert_eq!(&verified.measurement, enclave.measurement());
    }

    #[test]
    fn epc_resident_never_exceeds_capacity(capacity_pages in 1usize..32,
                                           regions in proptest::collection::vec(1usize..8, 1..6),
                                           touches in proptest::collection::vec(0usize..6, 0..30)) {
        let total: usize = regions.iter().sum();
        let mut epc = Epc::new(capacity_pages * PAGE_SIZE, (total + 1) * PAGE_SIZE);
        let ids: Vec<_> = regions.iter().map(|&p| epc.alloc(p * PAGE_SIZE).unwrap()).collect();
        for &t in &touches {
            let _ = epc.touch_region(ids[t % ids.len()]);
        }
        prop_assert!(epc.resident_pages() <= capacity_pages);
        // Conservation: faults = hits' complement; evictions <= faults.
        let stats = epc.stats();
        prop_assert!(stats.evictions <= stats.faults);
    }

    #[test]
    fn virtual_time_monotone_in_each_term(real in 0u64..10_000_000,
                                          transitions in 0u64..16,
                                          bytes in 0u64..1_000_000,
                                          faults in 0u64..256) {
        let model = CostModel {
            jitter_rel_std: 0.0,
            ..CostModel::default()
        };
        let clock = VirtualClock::new(model, 0);
        let base = clock.charge(real, transitions, bytes, faults);
        let more_faults = clock.charge(real, transitions, bytes, faults + 1);
        let more_bytes = clock.charge(real, transitions, bytes + 4096, faults);
        let more_transitions = clock.charge(real, transitions + 2, bytes, faults);
        prop_assert!(more_faults.total_ns() >= base.total_ns());
        prop_assert!(more_bytes.total_ns() >= base.total_ns());
        prop_assert!(more_transitions.total_ns() > base.total_ns());
        // Virtual time never below real time.
        prop_assert!(base.total_ns() >= real);
    }

    #[test]
    fn fake_sgx_is_identity_on_real_time(real in 0u64..100_000_000) {
        let clock = VirtualClock::new(CostModel::fake_sgx(), 0);
        prop_assert_eq!(clock.charge(real, 2, 12345, 17).total_ns(), real);
    }

    #[test]
    fn measurement_collision_free_for_distinct_code(a in proptest::collection::vec(any::<u8>(), 1..64),
                                                    b in proptest::collection::vec(any::<u8>(), 1..64)) {
        prop_assume!(a != b);
        let platform = Platform::new(4);
        let ea = EnclaveBuilder::new("x").add_code(&a).build(platform.clone());
        let eb = EnclaveBuilder::new("x").add_code(&b).build(platform);
        prop_assert_ne!(ea.measurement(), eb.measurement());
    }
}
