//! Enclave lifecycle, ECALL dispatch, and the simulated platform.
//!
//! [`Platform`] models one SGX-capable CPU: it owns the hardware root secret
//! (sealing), the report key (local attestation), and a quoting enclave.
//! [`EnclaveBuilder`] plays `ECREATE`/`EADD`/`EINIT`, hashing the loaded code
//! and configuration into a measurement. [`Enclave::ecall`] executes a closure
//! "inside" the enclave: the body runs for real while the boundary crossing,
//! marshalling, slowdown, and paging are charged on the virtual clock and
//! logged on the side-channel monitor.

use crate::attestation::{QuotingEnclave, Report};
use crate::cost::{CostBreakdown, CostModel, VirtualClock};
use crate::epc::{Epc, EpcStats, RegionId, DEFAULT_EPC_BYTES};
use crate::error::{Result, TeeError};
use crate::sealing::{self, SealedBlob};
use crate::sidechannel::{SideChannelEvent, SideChannelMonitor};
use crate::wall::WallTimer;
use hesgx_chaos::{FaultHook, FaultKind, FaultSite};
use hesgx_crypto::sha256::Sha256;
use hesgx_obs::{counters, Recorder};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One SGX-capable machine: hardware secrets plus the quoting enclave.
pub struct Platform {
    platform_id: [u8; 32],
    secret: [u8; 32],
    report_key: [u8; 32],
    qe: QuotingEnclave,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The hardware root secret and report key stay out of any log line
        // (hesgx-lint: secret-debug).
        f.debug_struct("Platform")
            .field("platform_id", &self.platform_id)
            .field("secret", &"<redacted>")
            .field("report_key", &"<redacted>")
            .finish()
    }
}

impl Platform {
    /// Creates a platform with secrets derived deterministically from `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        let root = hesgx_crypto::rng::ChaChaRng::from_seed(seed);
        let mut id_rng = root.fork("platform-id");
        let mut secret_rng = root.fork("platform-secret");
        let mut report_rng = root.fork("platform-report-key");
        let mut platform_id = [0u8; 32];
        id_rng.fill_bytes(&mut platform_id);
        let mut secret = [0u8; 32];
        secret_rng.fill_bytes(&mut secret);
        let mut report_key = [0u8; 32];
        report_rng.fill_bytes(&mut report_key);
        Arc::new(Platform {
            platform_id,
            secret,
            report_key,
            qe: QuotingEnclave::new(platform_id, report_key, seed ^ 0x5147_5545),
        })
    }

    /// The platform identifier.
    pub fn id(&self) -> [u8; 32] {
        self.platform_id
    }

    /// The platform's quoting enclave.
    pub fn quoting_enclave(&self) -> &QuotingEnclave {
        &self.qe
    }
}

/// Builder for [`Enclave`] (the `ECREATE`/`EADD`/`EINIT` sequence).
#[derive(Debug)]
pub struct EnclaveBuilder {
    name: String,
    code: Vec<u8>,
    heap_bytes: usize,
    epc_bytes: usize,
    cost_model: CostModel,
    event_log_capacity: usize,
    seed: u64,
    hook: Option<Arc<dyn FaultHook>>,
    recorder: Recorder,
}

impl EnclaveBuilder {
    /// Starts building an enclave named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        EnclaveBuilder {
            name: name.into(),
            code: Vec::new(),
            heap_bytes: 64 * 1024 * 1024,
            epc_bytes: DEFAULT_EPC_BYTES,
            cost_model: CostModel::default(),
            event_log_capacity: 1024,
            seed: 0,
            hook: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Adds "code" pages (any identifying bytes) to the measurement.
    pub fn add_code(mut self, code: &[u8]) -> Self {
        self.code.extend_from_slice(code);
        self
    }

    /// Sets the enclave heap size.
    pub fn heap_bytes(mut self, bytes: usize) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Sets the platform EPC capacity available to this enclave.
    pub fn epc_bytes(mut self, bytes: usize) -> Self {
        self.epc_bytes = bytes;
        self
    }

    /// Overrides the cost model (e.g. [`CostModel::fake_sgx`]).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Seeds the deterministic jitter generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault hook consulted at the enclave's fault sites
    /// (ECALL enter/exit, EPC load/evict, seal/unseal). No hook — the
    /// default — means no consultation at all.
    pub fn fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Installs an observability recorder. Every ECALL records an
    /// `ecall.<name>` span plus boundary counters; the EPC records paging
    /// counters. The default is the disabled recorder, which costs nothing.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Initializes the enclave on `platform`, fixing its measurement.
    pub fn build(self, platform: Arc<Platform>) -> Enclave {
        let mut h = Sha256::new();
        h.update(b"hesgx-enclave-v1");
        h.update(self.name.as_bytes());
        h.update(&self.code);
        h.update(&(self.heap_bytes as u64).to_le_bytes());
        let measurement = h.finalize();
        let mut epc = Epc::new(self.epc_bytes, self.heap_bytes);
        if let Some(hook) = &self.hook {
            epc.set_fault_hook(hook.clone());
        }
        epc.set_recorder(self.recorder.clone());
        Enclave {
            name: self.name,
            measurement,
            platform,
            vclock: VirtualClock::new(self.cost_model, self.seed),
            epc: Mutex::new(epc),
            monitor: Mutex::new(SideChannelMonitor::new(self.event_log_capacity)),
            seal_counter: AtomicU64::new(1),
            hook: self.hook,
            recorder: self.recorder,
        }
    }
}

/// A running enclave instance.
#[derive(Debug)]
pub struct Enclave {
    name: String,
    measurement: [u8; 32],
    platform: Arc<Platform>,
    vclock: VirtualClock,
    epc: Mutex<Epc>,
    monitor: Mutex<SideChannelMonitor>,
    seal_counter: AtomicU64,
    hook: Option<Arc<dyn FaultHook>>,
    recorder: Recorder,
}

/// Execution context handed to an ECALL body; tracks memory touches and
/// OCALLs so they can be charged and logged.
#[derive(Debug)]
pub struct EnclaveCtx<'a> {
    epc: &'a Mutex<Epc>,
    faults: u64,
    ocalls: u64,
    cpu_ns: u64,
}

impl EnclaveCtx<'_> {
    /// Allocates an enclave-heap region.
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn alloc(&mut self, bytes: usize) -> Result<RegionId> {
        self.epc.lock().alloc(bytes)
    }

    /// Frees a region.
    ///
    /// # Errors
    ///
    /// Fails when the region is unknown.
    pub fn free(&mut self, region: RegionId) -> Result<()> {
        self.epc.lock().free(region)
    }

    /// Touches a whole region (full scan), recording any page faults.
    ///
    /// # Errors
    ///
    /// Fails when the region is unknown.
    pub fn touch(&mut self, region: RegionId) -> Result<()> {
        self.faults += self.epc.lock().touch_region(region)?;
        Ok(())
    }

    /// Touches the first `bytes` of a region.
    ///
    /// # Errors
    ///
    /// Fails when the region is unknown.
    pub fn touch_bytes(&mut self, region: RegionId, bytes: usize) -> Result<()> {
        self.faults += self.epc.lock().touch_bytes(region, bytes)?;
        Ok(())
    }

    /// Records an OCALL out to the untrusted host (charged as an extra
    /// boundary round-trip).
    pub fn ocall(&mut self, _name: &str) {
        self.ocalls += 1;
    }

    /// Page faults recorded so far in this call.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Reports aggregate CPU time consumed by the ECALL body.
    ///
    /// The dispatcher measures the body's *wall-clock* time; when the body
    /// fans work out across worker threads, wall time undercounts the CPU
    /// work the memory-encryption engine slows down. A parallel body sums
    /// its per-task CPU time and reports it here; the call is then charged
    /// `max(wall, reported_cpu)` so the slowdown factor applies to the full
    /// batch of work, not just the elapsed span.
    pub fn record_cpu_ns(&mut self, ns: u64) {
        self.cpu_ns = self.cpu_ns.saturating_add(ns);
    }

    /// CPU nanoseconds reported so far in this call.
    pub fn reported_cpu_ns(&self) -> u64 {
        self.cpu_ns
    }
}

impl Enclave {
    /// The enclave's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> &[u8; 32] {
        &self.measurement
    }

    /// The platform hosting this enclave.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// Executes `body` inside the enclave.
    ///
    /// `input_bytes` / `output_bytes` model the marshalled argument and result
    /// sizes. Returns the body's value and the charged cost breakdown.
    pub fn ecall<R>(
        &self,
        name: &str,
        input_bytes: usize,
        output_bytes: usize,
        body: impl FnOnce(&mut EnclaveCtx<'_>) -> R,
    ) -> (R, CostBreakdown) {
        // Same frame name the recorder uses for its span, so the profiler's
        // drift report joins measured wall ns against the modeled cost.
        let _prof = hesgx_obs::prof::span2("ecall", name);
        hesgx_obs::prof::add_bytes((input_bytes + output_bytes) as u64);
        {
            let mut mon = self.monitor.lock();
            mon.record(SideChannelEvent::EcallEnter {
                name: name.to_string(),
                input_bytes,
            });
        }
        // Timeline: the slice opens before the body so EPC load/evict
        // instants recorded during the body nest inside it; the clock
        // advances by the call's *modeled* cost when the slice closes.
        let trace = self.recorder.trace_enabled();
        if trace {
            self.recorder.trace_begin(
                &format!("ecall.{name}"),
                &[("bytes_in", input_bytes.to_string())],
            );
        }
        let mut ctx = EnclaveCtx {
            epc: &self.epc,
            faults: 0,
            ocalls: 0,
            cpu_ns: 0,
        };
        let start = WallTimer::start();
        let result = body(&mut ctx);
        // Parallel bodies report their summed per-task CPU time; charge
        // whichever is larger so fanned-out work still pays the in-enclave
        // slowdown on every CPU-nanosecond of the batch.
        let wall_ns = start.elapsed_ns();
        let real_ns = wall_ns.max(ctx.cpu_ns);
        // Enter + exit, plus a round-trip per OCALL.
        let transitions = 2 + 2 * ctx.ocalls;
        let copied = (input_bytes + output_bytes) as u64;
        let breakdown = self.vclock.charge(real_ns, transitions, copied, ctx.faults);
        if self.recorder.is_enabled() {
            self.recorder
                .record_span(&format!("ecall.{name}"), breakdown.span_cost());
            self.recorder.incr(counters::ECALLS, 1);
            self.recorder.incr(counters::ECALL_TRANSITIONS, transitions);
            self.recorder.incr(counters::BYTES_MARSHALLED, copied);
            self.recorder.observe("ecall.bytes", copied);
            self.recorder.observe("ecall.epc_faults", ctx.faults);
        }
        if trace {
            self.recorder
                .trace_advance(breakdown.span_cost().model_ns());
            self.recorder.trace_end(&format!("ecall.{name}"));
        }
        {
            let mut mon = self.monitor.lock();
            if ctx.faults > 0 {
                mon.record(SideChannelEvent::PageFaults { count: ctx.faults });
            }
            for _ in 0..ctx.ocalls {
                mon.record(SideChannelEvent::Ocall {
                    name: "host".to_string(),
                });
            }
            mon.record(SideChannelEvent::EcallExit {
                name: name.to_string(),
                output_bytes,
            });
        }
        (result, breakdown)
    }

    /// Consults the fault hook, if one is installed.
    fn consult(&self, site: FaultSite) -> Option<FaultKind> {
        self.hook.as_ref().and_then(|h| h.inject(site))
    }

    /// Executes `body` inside the enclave, subject to injected boundary
    /// faults.
    ///
    /// Same contract as [`Enclave::ecall`], except the fault hook is
    /// consulted at the boundary: a fault at [`FaultSite::EcallEnter`] aborts
    /// the `EENTER` transition — the body never runs, and the caller is
    /// charged only the failed crossing plus the marshalled input copy. A
    /// fault at [`FaultSite::EcallExit`] loses the result after the body ran —
    /// the full call cost is charged. Both surface as
    /// [`TeeError::Interrupted`], which is transient: the caller may retry.
    /// With no hook installed this is exactly `ecall` wrapped in `Ok`.
    ///
    /// # Errors
    ///
    /// Fails with [`TeeError::Interrupted`] when a fault is injected at
    /// either boundary site.
    pub fn ecall_fallible<R>(
        &self,
        name: &str,
        input_bytes: usize,
        output_bytes: usize,
        body: impl FnOnce(&mut EnclaveCtx<'_>) -> R,
    ) -> (Result<R>, CostBreakdown) {
        if self.consult(FaultSite::EcallEnter).is_some() {
            let breakdown = self.vclock.charge(0, 2, input_bytes as u64, 0);
            if self.recorder.is_enabled() {
                // The aborted crossing is still a boundary event: the
                // failed EENTER and the marshalled input are charged and
                // must therefore appear on the books.
                self.recorder
                    .record_span(&format!("ecall.{name}"), breakdown.span_cost());
                self.recorder.incr(counters::ECALLS, 1);
                self.recorder.incr(counters::ECALL_TRANSITIONS, 2);
                self.recorder
                    .incr(counters::BYTES_MARSHALLED, input_bytes as u64);
                // Aborted crossings are boundary events too: they land in
                // the distributions and on the timeline as an instant (the
                // body never ran, so there is no slice to draw).
                self.recorder.observe("ecall.bytes", input_bytes as u64);
                self.recorder.observe("ecall.epc_faults", 0);
                if self.recorder.trace_enabled() {
                    self.recorder.trace_instant(
                        &format!("ecall.{name}.aborted"),
                        &[("bytes_in", input_bytes.to_string())],
                    );
                    self.recorder
                        .trace_advance(breakdown.span_cost().model_ns());
                }
            }
            let mut mon = self.monitor.lock();
            mon.record(SideChannelEvent::EcallEnter {
                name: name.to_string(),
                input_bytes,
            });
            mon.record(SideChannelEvent::EcallExit {
                name: name.to_string(),
                output_bytes: 0,
            });
            return (Err(TeeError::Interrupted(FaultSite::EcallEnter)), breakdown);
        }
        let (result, breakdown) = self.ecall(name, input_bytes, output_bytes, body);
        if self.consult(FaultSite::EcallExit).is_some() {
            return (Err(TeeError::Interrupted(FaultSite::EcallExit)), breakdown);
        }
        (Ok(result), breakdown)
    }

    /// Seals `data` to this enclave's identity (charged as an ECALL).
    ///
    /// An injected fault at [`FaultSite::Seal`] models the blob rotting on
    /// untrusted storage: the returned blob is silently damaged and the
    /// corruption only surfaces at the next [`Enclave::unseal`].
    pub fn seal(&self, data: &[u8]) -> (SealedBlob, CostBreakdown) {
        let nonce = self.seal_counter.fetch_add(1, Ordering::Relaxed);
        let (mut blob, cost) = self.ecall("seal", data.len(), data.len() + 44, |_| {
            sealing::seal(&self.platform.secret, &self.measurement, nonce, data)
        });
        if self.consult(FaultSite::Seal).is_some() {
            blob.corrupt();
        }
        (blob, cost)
    }

    /// Unseals a blob sealed by this enclave identity.
    ///
    /// # Errors
    ///
    /// Fails with [`crate::error::TeeError::SealedBlobCorrupted`] on tampering
    /// or identity mismatch — including an injected fault at
    /// [`FaultSite::Unseal`], which models the stored blob failing its
    /// integrity check.
    pub fn unseal(&self, blob: &SealedBlob) -> (Result<Vec<u8>>, CostBreakdown) {
        let (mut result, cost) = self.ecall("unseal", blob.byte_len(), blob.byte_len(), |_| {
            sealing::unseal(&self.platform.secret, &self.measurement, blob)
        });
        if self.consult(FaultSite::Unseal).is_some() {
            result = Err(TeeError::SealedBlobCorrupted);
        }
        (result, cost)
    }

    /// The installed fault hook, if any (used by the recovery layer to report
    /// its decisions back to the same recorder that injected the faults).
    pub fn fault_hook(&self) -> Option<&Arc<dyn FaultHook>> {
        self.hook.as_ref()
    }

    /// The observability recorder this enclave reports into (the disabled
    /// no-op recorder unless one was installed at build time).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Produces an attestation report carrying `user_data` (EREPORT).
    pub fn create_report(&self, user_data: Vec<u8>) -> Report {
        Report::new(&self.platform.report_key, self.measurement, user_data)
    }

    /// The enclave's virtual clock.
    pub fn vclock(&self) -> &VirtualClock {
        &self.vclock
    }

    /// Snapshot of EPC statistics.
    pub fn epc_stats(&self) -> EpcStats {
        self.epc.lock().stats()
    }

    /// Runs `f` with the side-channel monitor.
    pub fn with_monitor<R>(&self, f: impl FnOnce(&SideChannelMonitor) -> R) -> R {
        f(&self.monitor.lock())
    }

    /// Allocates a persistent region on the enclave heap from outside an
    /// ECALL (models `EADD`-time allocation of long-lived buffers).
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn alloc_region(&self, bytes: usize) -> Result<RegionId> {
        self.epc.lock().alloc(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TeeError;

    fn platform() -> Arc<Platform> {
        Platform::new(1)
    }

    #[test]
    fn measurement_depends_on_code() {
        let p = platform();
        let a = EnclaveBuilder::new("e").add_code(b"v1").build(p.clone());
        let b = EnclaveBuilder::new("e").add_code(b"v2").build(p.clone());
        let c = EnclaveBuilder::new("e").add_code(b"v1").build(p);
        assert_ne!(a.measurement(), b.measurement());
        assert_eq!(a.measurement(), c.measurement());
    }

    #[test]
    fn ecall_returns_value_and_charges_time() {
        let e = EnclaveBuilder::new("e").build(platform());
        let (value, cost) = e.ecall("add", 16, 8, |_| 2 + 2);
        assert_eq!(value, 4);
        assert!(cost.transition_ns > 0);
        assert!(e.vclock().elapsed_ns() >= cost.total_ns() as u128);
    }

    #[test]
    fn ecalls_logged_on_monitor() {
        let e = EnclaveBuilder::new("e").build(platform());
        e.ecall("f", 0, 0, |_| ());
        e.ecall("g", 0, 0, |ctx| ctx.ocall("host_log"));
        e.with_monitor(|m| {
            assert_eq!(m.ecall_count(), 2);
            assert_eq!(m.ocall_count(), 1);
        });
    }

    #[test]
    fn paging_pressure_visible() {
        // Enclave with tiny EPC: scanning a large region twice faults a lot.
        let e = EnclaveBuilder::new("e")
            .epc_bytes(8 * crate::epc::PAGE_SIZE)
            .heap_bytes(32 * crate::epc::PAGE_SIZE)
            .build(platform());
        let ((), cost) = e.ecall("scan", 0, 0, |ctx| {
            let big = ctx.alloc(16 * crate::epc::PAGE_SIZE).unwrap();
            ctx.touch(big).unwrap();
            ctx.touch(big).unwrap();
        });
        assert!(cost.paging_ns > 0);
        assert!(e.epc_stats().evictions > 0);
        e.with_monitor(|m| assert!(m.page_fault_count() >= 16));
    }

    #[test]
    fn seal_roundtrip_same_enclave() {
        let p = platform();
        let e = EnclaveBuilder::new("e").add_code(b"code").build(p);
        let (blob, _) = e.seal(b"fv-secret-key");
        let (data, _) = e.unseal(&blob);
        assert_eq!(data.unwrap(), b"fv-secret-key");
    }

    #[test]
    fn seal_rejected_across_enclaves() {
        let p = platform();
        let a = EnclaveBuilder::new("a").add_code(b"A").build(p.clone());
        let b = EnclaveBuilder::new("b").add_code(b"B").build(p);
        let (blob, _) = a.seal(b"secret");
        let (res, _) = b.unseal(&blob);
        assert_eq!(res, Err(TeeError::SealedBlobCorrupted));
    }

    #[test]
    fn report_to_quote_flow() {
        let p = platform();
        let e = EnclaveBuilder::new("e").add_code(b"code").build(p.clone());
        let report = e.create_report(b"payload".to_vec());
        let quote = p.quoting_enclave().quote(&report).unwrap();
        assert_eq!(&quote.measurement, e.measurement());
        assert_eq!(quote.user_data, b"payload");
    }

    #[test]
    fn reported_cpu_time_floors_the_charge() {
        let e = EnclaveBuilder::new("par").build(platform());
        // A body that "ran" 10 ms of CPU work across workers while the wall
        // measurement saw almost nothing must still be charged the CPU time.
        let ((), cost) = e.ecall("fanout", 0, 0, |ctx| {
            ctx.record_cpu_ns(10_000_000);
        });
        assert!(cost.real_ns >= 10_000_000);
        // Without a report, wall time is charged as before.
        let ((), cost) = e.ecall("plain", 0, 0, |_| ());
        assert!(cost.real_ns < 10_000_000);
    }

    #[test]
    fn ecall_fallible_without_hook_is_plain_ecall() {
        let e = EnclaveBuilder::new("e").build(platform());
        let (value, cost) = e.ecall_fallible("add", 16, 8, |_| 2 + 2);
        assert_eq!(value, Ok(4));
        assert!(cost.transition_ns > 0);
    }

    #[test]
    fn enter_fault_skips_body_and_charges_partial_cost() {
        use hesgx_chaos::{FaultPlan, FaultSite};
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::EcallEnter, 0, hesgx_chaos::FaultKind::Transient)
                .build(),
        );
        let e = EnclaveBuilder::new("e")
            .fault_hook(injector.clone())
            .build(platform());
        let mut ran = false;
        let (res, cost) = e.ecall_fallible("f", 64, 8, |_| ran = true);
        assert_eq!(res, Err(TeeError::Interrupted(FaultSite::EcallEnter)));
        assert!(!ran, "body must not run when EENTER aborts");
        assert!(cost.transition_ns > 0);
        assert!(res.unwrap_err().is_transient());
        // Retry succeeds (the script fired once).
        let (res, _) = e.ecall_fallible("f", 64, 8, |_| 7);
        assert_eq!(res, Ok(7));
        assert_eq!(injector.report().injected_total(), 1);
    }

    #[test]
    fn exit_fault_loses_result_after_body_ran() {
        use hesgx_chaos::{FaultKind, FaultPlan, FaultSite};
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::EcallExit, 0, FaultKind::Transient)
                .build(),
        );
        let e = EnclaveBuilder::new("e")
            .fault_hook(injector)
            .build(platform());
        let mut ran = false;
        let (res, cost) = e.ecall_fallible("f", 0, 0, |_| ran = true);
        assert_eq!(res, Err(TeeError::Interrupted(FaultSite::EcallExit)));
        assert!(ran, "body runs before the result is lost at EEXIT");
        assert!(cost.transition_ns > 0);
    }

    #[test]
    fn seal_fault_corrupts_blob_detected_at_unseal() {
        use hesgx_chaos::{FaultKind, FaultPlan, FaultSite};
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::Seal, 0, FaultKind::Corruption)
                .build(),
        );
        let e = EnclaveBuilder::new("e")
            .fault_hook(injector)
            .build(platform());
        let (blob, _) = e.seal(b"key material");
        let (res, _) = e.unseal(&blob);
        assert_eq!(res, Err(TeeError::SealedBlobCorrupted));
        // The next seal is clean: corruption was a one-shot script.
        let (blob, _) = e.seal(b"key material");
        let (res, _) = e.unseal(&blob);
        assert_eq!(res, Ok(b"key material".to_vec()));
    }

    #[test]
    fn unseal_fault_rejects_a_good_blob() {
        use hesgx_chaos::{FaultKind, FaultPlan, FaultSite};
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::Unseal, 0, FaultKind::Corruption)
                .build(),
        );
        let e = EnclaveBuilder::new("e")
            .fault_hook(injector)
            .build(platform());
        let (blob, _) = e.seal(b"data");
        let (res, _) = e.unseal(&blob);
        assert_eq!(res, Err(TeeError::SealedBlobCorrupted));
        // The blob itself is intact; a retry unseals it.
        let (res, _) = e.unseal(&blob);
        assert_eq!(res, Ok(b"data".to_vec()));
    }

    #[test]
    fn recorder_sees_ecall_spans_and_counters() {
        let rec = Recorder::enabled();
        let e = EnclaveBuilder::new("e")
            .recorder(rec.clone())
            .build(platform());
        let (_, cost) = e.ecall("work", 100, 28, |_| 1 + 1);
        let span = rec.span("ecall.work").expect("span recorded");
        assert_eq!(span.entries, 1);
        assert_eq!(span.cost.transition_ns, cost.transition_ns);
        assert_eq!(span.cost.copy_ns, cost.copy_ns);
        assert_eq!(rec.counter(counters::ECALLS), 1);
        assert_eq!(rec.counter(counters::ECALL_TRANSITIONS), 2);
        assert_eq!(rec.counter(counters::BYTES_MARSHALLED), 128);
    }

    #[test]
    fn recorder_books_the_aborted_enter_crossing() {
        use hesgx_chaos::{FaultKind, FaultPlan, FaultSite};
        let rec = Recorder::enabled();
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::EcallEnter, 0, FaultKind::Transient)
                .build(),
        );
        let e = EnclaveBuilder::new("e")
            .fault_hook(injector)
            .recorder(rec.clone())
            .build(platform());
        let (res, cost) = e.ecall_fallible("f", 64, 8, |_| ());
        assert!(res.is_err());
        let span = rec.span("ecall.f").expect("aborted crossing recorded");
        assert_eq!(span.entries, 1);
        assert_eq!(span.cost.transition_ns, cost.transition_ns);
        assert_eq!(rec.counter(counters::BYTES_MARSHALLED), 64);
    }

    #[test]
    fn fake_sgx_model_charges_no_overhead() {
        let e = EnclaveBuilder::new("fake")
            .cost_model(CostModel::fake_sgx())
            .build(platform());
        let ((), cost) = e.ecall("work", 1024, 1024, |_| ());
        assert_eq!(cost.transition_ns, 0);
        assert_eq!(cost.copy_ns, 0);
        assert_eq!(cost.slowdown_ns, 0);
    }
}
