//! The single audited wall-clock accessor for the workspace.
//!
//! The system's determinism contract (DESIGN.md §12–§14) says wall time may
//! *never* reach exported bytes: ciphertexts, obs snapshots, traces, and
//! load reports must replay byte-identically. Wall time is still legitimate
//! in exactly two places — the in-process `HybridMetrics` stage timings a
//! caller reads live, and the max(wall, modeled) floor the enclave cost
//! model charges — and both of those flow through this module.
//!
//! Centralizing the accessor makes the discipline checkable: the
//! `wall-clock` rule of `hesgx-lint` bans `Instant::now` / `SystemTime::now`
//! everywhere except this file and the wall-only `hesgx-bench` crate, so a
//! new call site that bypasses the audited path fails CI instead of
//! shipping PR 5's bug class again.

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
///
/// Thin wrapper over [`Instant`] so call sites name the audited entry point
/// (`WallTimer::start()`) instead of the banned raw API.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Starts measuring now.
    #[must_use]
    pub fn start() -> Self {
        WallTimer {
            start: Instant::now(),
        }
    }

    /// Wall time elapsed since [`WallTimer::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed wall nanoseconds, saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let t = WallTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
        assert!(t.elapsed() >= Duration::from_nanos(a));
    }
}
