//! Error types for the TEE simulator.

/// Errors produced by enclave, sealing, and attestation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// A sealed blob failed integrity verification (tampered or wrong enclave).
    SealedBlobCorrupted,
    /// A report MAC did not verify (report not produced on this platform).
    ReportMacInvalid,
    /// A quote signature did not verify.
    QuoteSignatureInvalid,
    /// The quote's platform is not registered with the attestation service.
    UnknownPlatform,
    /// The enclave measurement does not match the expected value.
    MeasurementMismatch {
        /// Expected MRENCLAVE value.
        expected: [u8; 32],
        /// Actual MRENCLAVE value from the quote.
        actual: [u8; 32],
    },
    /// An EPC region id was not found.
    UnknownRegion(u64),
    /// The requested allocation exceeds the enclave's configured heap.
    HeapExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::SealedBlobCorrupted => write!(f, "sealed blob failed integrity check"),
            TeeError::ReportMacInvalid => write!(f, "report MAC invalid for this platform"),
            TeeError::QuoteSignatureInvalid => write!(f, "quote signature invalid"),
            TeeError::UnknownPlatform => {
                write!(f, "platform not registered with attestation service")
            }
            TeeError::MeasurementMismatch { .. } => write!(f, "enclave measurement mismatch"),
            TeeError::UnknownRegion(id) => write!(f, "unknown enclave memory region {id}"),
            TeeError::HeapExhausted {
                requested,
                available,
            } => write!(
                f,
                "heap exhausted: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for TeeError {}

/// Convenience alias for TEE results.
pub type Result<T> = std::result::Result<T, TeeError>;
