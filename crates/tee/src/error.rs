//! Error types for the TEE simulator, with a transient/fatal taxonomy the
//! recovery layer dispatches on.

use hesgx_chaos::FaultSite;

/// Errors produced by enclave, sealing, and attestation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// An operation was interrupted by an injected transient fault at the
    /// given site (an aborted `EENTER`, a lost ECALL result, a dropped
    /// attestation or noise-refresh request). Retrying can succeed.
    Interrupted(FaultSite),
    /// A sealed blob failed integrity verification (tampered or wrong enclave).
    SealedBlobCorrupted,
    /// A report MAC did not verify (report not produced on this platform).
    ReportMacInvalid,
    /// A quote signature did not verify.
    QuoteSignatureInvalid,
    /// The quote's platform is not registered with the attestation service.
    UnknownPlatform,
    /// The enclave measurement does not match the expected value.
    MeasurementMismatch {
        /// Expected MRENCLAVE value.
        expected: [u8; 32],
        /// Actual MRENCLAVE value from the quote.
        actual: [u8; 32],
    },
    /// An EPC region id was not found.
    UnknownRegion(u64),
    /// The requested allocation exceeds the enclave's configured heap.
    HeapExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
}

impl TeeError {
    /// Whether retrying the failed operation can succeed.
    ///
    /// The match is intentionally exhaustive (no `_` arm): adding a variant
    /// without classifying it here is a compile error, so no error can ship
    /// unclassified. Only [`TeeError::Interrupted`] is transient — every
    /// integrity, identity, and capacity failure is a property of the inputs
    /// or configuration and will recur on retry.
    pub fn is_transient(&self) -> bool {
        match self {
            TeeError::Interrupted(_) => true,
            TeeError::SealedBlobCorrupted
            | TeeError::ReportMacInvalid
            | TeeError::QuoteSignatureInvalid
            | TeeError::UnknownPlatform
            | TeeError::MeasurementMismatch { .. }
            | TeeError::UnknownRegion(_)
            | TeeError::HeapExhausted { .. } => false,
        }
    }

    /// The fault site behind a transient interruption, if any.
    pub fn fault_site(&self) -> Option<FaultSite> {
        match self {
            TeeError::Interrupted(site) => Some(*site),
            _ => None,
        }
    }
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::Interrupted(site) => {
                write!(f, "operation interrupted by transient fault at {site}")
            }
            TeeError::SealedBlobCorrupted => write!(f, "sealed blob failed integrity check"),
            TeeError::ReportMacInvalid => write!(f, "report MAC invalid for this platform"),
            TeeError::QuoteSignatureInvalid => write!(f, "quote signature invalid"),
            TeeError::UnknownPlatform => {
                write!(f, "platform not registered with attestation service")
            }
            TeeError::MeasurementMismatch { .. } => write!(f, "enclave measurement mismatch"),
            TeeError::UnknownRegion(id) => write!(f, "unknown enclave memory region {id}"),
            TeeError::HeapExhausted {
                requested,
                available,
            } => write!(
                f,
                "heap exhausted: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for TeeError {}

/// Convenience alias for TEE results.
pub type Result<T> = std::result::Result<T, TeeError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// One representative value per variant; the `match` in `is_transient`
    /// is the real exhaustiveness guarantee, this just pins the verdicts.
    fn all_variants() -> Vec<TeeError> {
        vec![
            TeeError::Interrupted(FaultSite::EcallEnter),
            TeeError::SealedBlobCorrupted,
            TeeError::ReportMacInvalid,
            TeeError::QuoteSignatureInvalid,
            TeeError::UnknownPlatform,
            TeeError::MeasurementMismatch {
                expected: [0; 32],
                actual: [1; 32],
            },
            TeeError::UnknownRegion(7),
            TeeError::HeapExhausted {
                requested: 10,
                available: 5,
            },
        ]
    }

    #[test]
    fn only_interruptions_are_transient() {
        for err in all_variants() {
            let expected = matches!(err, TeeError::Interrupted(_));
            assert_eq!(err.is_transient(), expected, "misclassified: {err}");
            assert_eq!(err.fault_site().is_some(), expected);
        }
    }

    #[test]
    fn interrupted_display_names_the_site() {
        let err = TeeError::Interrupted(FaultSite::NoiseRefresh);
        assert!(err.to_string().contains("noise-refresh"));
        assert_eq!(err.fault_site(), Some(FaultSite::NoiseRefresh));
    }
}
