//! Sealed storage: encrypt-then-MAC blobs bound to an enclave measurement,
//! the `sgx_seal_data` analogue.

use crate::error::{Result, TeeError};
use hesgx_crypto::chacha20;
use hesgx_crypto::hmac::{hmac_sha256, verify_tag};
use hesgx_crypto::kdf;
use serde::{Deserialize, Serialize};

/// An encrypted, integrity-protected blob only the sealing enclave identity
/// (on the same platform) can open.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
    tag: [u8; 32],
}

impl std::fmt::Debug for SealedBlob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Sealed blobs are registry types: dumping ciphertext bytes into logs
        // invites offline analysis, so print sizes only
        // (hesgx-lint: secret-debug).
        f.debug_struct("SealedBlob")
            .field("byte_len", &self.byte_len())
            .finish()
    }
}

impl SealedBlob {
    /// Serialized length in bytes.
    pub fn byte_len(&self) -> usize {
        12 + self.ciphertext.len() + 32
    }

    /// Silently damages the blob's integrity tag — the fault-injection model
    /// of a sealed blob rotting on untrusted storage. The damage is only
    /// detectable at the next unseal, exactly like real bit rot.
    pub(crate) fn corrupt(&mut self) {
        self.tag[0] ^= 1;
    }
}

/// Derives the sealing key for `(platform_secret, measurement)` — the
/// `EGETKEY(SEAL_KEY, MRENCLAVE policy)` analogue.
pub(crate) fn sealing_key(platform_secret: &[u8; 32], measurement: &[u8; 32]) -> [u8; 32] {
    kdf::derive_key(measurement, platform_secret, b"hesgx-seal-mrenclave")
}

/// Seals `data` under the derived key. `nonce_seed` must be unique per blob
/// (the enclave uses a monotonic counter).
pub(crate) fn seal(
    platform_secret: &[u8; 32],
    measurement: &[u8; 32],
    nonce_seed: u64,
    data: &[u8],
) -> SealedBlob {
    let key = sealing_key(platform_secret, measurement);
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&nonce_seed.to_le_bytes());
    let mut ciphertext = data.to_vec();
    chacha20::xor_stream(&key, 1, &nonce, &mut ciphertext);
    let mut mac_input = Vec::with_capacity(12 + ciphertext.len());
    mac_input.extend_from_slice(&nonce);
    mac_input.extend_from_slice(&ciphertext);
    let tag = hmac_sha256(&key, &mac_input);
    SealedBlob {
        nonce,
        ciphertext,
        tag,
    }
}

/// Unseals a blob; verifies the MAC before decrypting.
pub(crate) fn unseal(
    platform_secret: &[u8; 32],
    measurement: &[u8; 32],
    blob: &SealedBlob,
) -> Result<Vec<u8>> {
    let key = sealing_key(platform_secret, measurement);
    let mut mac_input = Vec::with_capacity(12 + blob.ciphertext.len());
    mac_input.extend_from_slice(&blob.nonce);
    mac_input.extend_from_slice(&blob.ciphertext);
    let tag = hmac_sha256(&key, &mac_input);
    if !verify_tag(&tag, &blob.tag) {
        return Err(TeeError::SealedBlobCorrupted);
    }
    let mut plaintext = blob.ciphertext.clone();
    chacha20::xor_stream(&key, 1, &blob.nonce, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: [u8; 32] = [9; 32];
    const MR_A: [u8; 32] = [1; 32];
    const MR_B: [u8; 32] = [2; 32];

    #[test]
    fn seal_unseal_roundtrip() {
        let blob = seal(&SECRET, &MR_A, 1, b"model weights");
        assert_eq!(unseal(&SECRET, &MR_A, &blob).unwrap(), b"model weights");
    }

    #[test]
    fn different_enclave_cannot_unseal() {
        let blob = seal(&SECRET, &MR_A, 1, b"secret");
        assert_eq!(
            unseal(&SECRET, &MR_B, &blob),
            Err(TeeError::SealedBlobCorrupted)
        );
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let blob = seal(&SECRET, &MR_A, 1, b"secret");
        let other_secret = [8u8; 32];
        assert_eq!(
            unseal(&other_secret, &MR_A, &blob),
            Err(TeeError::SealedBlobCorrupted)
        );
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let mut blob = seal(&SECRET, &MR_A, 1, b"secret");
        blob.ciphertext[0] ^= 1;
        assert_eq!(
            unseal(&SECRET, &MR_A, &blob),
            Err(TeeError::SealedBlobCorrupted)
        );
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        let a = seal(&SECRET, &MR_A, 1, b"same data");
        let b = seal(&SECRET, &MR_A, 2, b"same data");
        assert_ne!(a.ciphertext, b.ciphertext);
    }
}
