//! # hesgx-tee
//!
//! A software simulator of Intel SGX, built so the ICDCS 2021 hybrid HE+SGX
//! inference framework can be reproduced without SGX hardware (the paper used
//! driver 2.5.0 / SDK 2.6.100 on a Xeon E3-1225 v6).
//!
//! What is simulated, and how:
//!
//! * **Isolation & lifecycle** — [`enclave::EnclaveBuilder`] measures loaded
//!   code into an MRENCLAVE-style hash; [`enclave::Enclave::ecall`] runs typed
//!   closures "inside" with boundary accounting. Functional security
//!   properties (sealing bound to measurement, attestation chains) are
//!   executed for real in software.
//! * **Performance** — a calibrated [`cost::CostModel`] charges the
//!   in-enclave slowdown, EENTER/EEXIT transitions, marshalling, and EPC
//!   paging on a [`cost::VirtualClock`]. Defaults reproduce the ratios of the
//!   paper's Tables I/IV/V; [`cost::CostModel::fake_sgx`] is the paper's
//!   `FakeSGX` control (same code, no enclave).
//! * **Limited memory** — [`epc::Epc`] models the ~93 MiB protected page
//!   cache with LRU eviction; working sets larger than the EPC thrash, which
//!   is both a cost term and a side-channel signal (paper §III-B).
//! * **Remote attestation** — [`attestation`] implements the DCAP-style
//!   report → quote → service chain, including the *user data* field the
//!   paper uses to distribute FV keys without a trusted third party (§IV-A).
//! * **Side channels** — [`sidechannel::SideChannelMonitor`] logs every
//!   host-observable event so deployment strategies can be compared by
//!   exposure (§IV-C).
//!
//! # Examples
//!
//! ```
//! use hesgx_tee::prelude::*;
//!
//! let platform = Platform::new(7);
//! let enclave = EnclaveBuilder::new("inference")
//!     .add_code(b"sigmoid-v1")
//!     .build(platform.clone());
//!
//! // Run work "inside"; real result, modeled cost.
//! let (sum, cost) = enclave.ecall("sum", 8, 8, |_| 40 + 2);
//! assert_eq!(sum, 42);
//! assert!(cost.total_ns() > 0);
//!
//! // Attested channel carrying enclave-generated data.
//! let report = enclave.create_report(b"generated-key".to_vec());
//! let quote = platform.quoting_enclave().quote(&report).unwrap();
//! let mut service = AttestationService::new();
//! service.register_platform(platform.quoting_enclave());
//! let verified = service.verify(&quote).unwrap();
//! assert_eq!(verified.user_data, b"generated-key");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attestation;
pub mod cost;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod sealing;
pub mod sidechannel;
pub mod wall;

/// Convenient glob-import of the main types.
pub mod prelude {
    pub use crate::attestation::{
        AttestationService, Quote, QuotingEnclave, Report, VerifiedQuote,
    };
    pub use crate::cost::{CostBreakdown, CostModel, VirtualClock};
    pub use crate::enclave::{Enclave, EnclaveBuilder, EnclaveCtx, Platform};
    pub use crate::epc::{Epc, EpcStats, RegionId, PAGE_SIZE};
    pub use crate::error::TeeError;
    pub use crate::sealing::SealedBlob;
    pub use crate::sidechannel::{SideChannelEvent, SideChannelMonitor};
    pub use crate::wall::WallTimer;
    pub use hesgx_chaos::{FaultHook, FaultKind, FaultPlan, FaultReport, FaultSite};
}
