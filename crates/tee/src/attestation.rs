//! Remote attestation: reports, quotes, and the attestation service.
//!
//! Mirrors the DCAP flow the paper relies on (§IV-A, [20]):
//!
//! 1. The application enclave produces a **report** (`EREPORT`): its
//!    measurement plus a caller-chosen *user data* field, MAC'd with a
//!    platform key only enclaves on the same CPU can derive.
//! 2. The platform's **quoting enclave** verifies the MAC locally and signs a
//!    **quote** with its attestation key (ECDSA in DCAP; Schnorr here).
//! 3. A remote **attestation service** verifies the quote signature against
//!    the registered platform and hands the caller the verified measurement
//!    and user data.
//!
//! The user-data field is what the paper's key-distribution trick rides on:
//! the enclave generates the FV key pair and ships it to the user inside the
//! attested quote, eliminating the trusted third party of Fig. 1.

use crate::error::{Result, TeeError};
use hesgx_chaos::{FaultHook, FaultKind, FaultSite};
use hesgx_crypto::hmac::{hmac_sha256, verify_tag};
use hesgx_crypto::rng::ChaChaRng;
use hesgx_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use hesgx_crypto::sha256::Sha256;
use hesgx_obs::{counters, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A local attestation report (`EREPORT` analogue).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// MRENCLAVE of the reporting enclave.
    pub measurement: [u8; 32],
    /// Caller-chosen payload (the paper carries HE keys here).
    pub user_data: Vec<u8>,
    mac: [u8; 32],
}

pub(crate) fn report_mac(
    report_key: &[u8; 32],
    measurement: &[u8; 32],
    user_data: &[u8],
) -> [u8; 32] {
    let mut msg = Vec::with_capacity(40 + user_data.len());
    msg.extend_from_slice(measurement);
    msg.extend_from_slice(&(user_data.len() as u64).to_le_bytes());
    msg.extend_from_slice(user_data);
    hmac_sha256(report_key, &msg)
}

impl Report {
    pub(crate) fn new(report_key: &[u8; 32], measurement: [u8; 32], user_data: Vec<u8>) -> Self {
        let mac = report_mac(report_key, &measurement, &user_data);
        Report {
            measurement,
            user_data,
            mac,
        }
    }

    pub(crate) fn verify(&self, report_key: &[u8; 32]) -> bool {
        verify_tag(
            &report_mac(report_key, &self.measurement, &self.user_data),
            &self.mac,
        )
    }
}

/// A remotely verifiable quote: a report counter-signed by the platform's
/// quoting enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// MRENCLAVE of the attested enclave.
    pub measurement: [u8; 32],
    /// User data carried through from the report.
    pub user_data: Vec<u8>,
    /// Identifier of the signing platform.
    pub platform_id: [u8; 32],
    signature: Signature,
}

impl Quote {
    fn signed_bytes(measurement: &[u8; 32], user_data: &[u8], platform_id: &[u8; 32]) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(b"hesgx-quote-v1");
        h.update(measurement);
        h.update(&(user_data.len() as u64).to_le_bytes());
        h.update(user_data);
        h.update(platform_id);
        h.finalize().to_vec()
    }
}

/// The platform's quoting enclave: turns reports into signed quotes.
pub struct QuotingEnclave {
    platform_id: [u8; 32],
    report_key: [u8; 32],
    signing_key: SigningKey,
}

impl std::fmt::Debug for QuotingEnclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The report key authenticates EREPORTs platform-wide; never print it
        // (hesgx-lint: secret-debug).
        f.debug_struct("QuotingEnclave")
            .field("platform_id", &self.platform_id)
            .field("report_key", &"<redacted>")
            .finish()
    }
}

impl QuotingEnclave {
    pub(crate) fn new(platform_id: [u8; 32], report_key: [u8; 32], seed: u64) -> Self {
        let group = hesgx_crypto::schnorr::SchnorrGroup::default_group();
        let mut rng = ChaChaRng::from_seed(seed).fork("qe-attestation-key");
        QuotingEnclave {
            platform_id,
            report_key,
            signing_key: SigningKey::generate(group, &mut rng),
        }
    }

    /// The attestation verification key to register with the service.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// The platform identifier.
    pub fn platform_id(&self) -> [u8; 32] {
        self.platform_id
    }

    /// Verifies a local report and signs a quote over it.
    ///
    /// # Errors
    ///
    /// Fails with [`TeeError::ReportMacInvalid`] when the report was not
    /// produced on this platform.
    pub fn quote(&self, report: &Report) -> Result<Quote> {
        if !report.verify(&self.report_key) {
            return Err(TeeError::ReportMacInvalid);
        }
        let msg = Quote::signed_bytes(&report.measurement, &report.user_data, &self.platform_id);
        Ok(Quote {
            measurement: report.measurement,
            user_data: report.user_data.clone(),
            platform_id: self.platform_id,
            signature: self.signing_key.sign(&msg),
        })
    }
}

/// The verified content of a quote, as returned by the attestation service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedQuote {
    /// Verified enclave measurement.
    pub measurement: [u8; 32],
    /// Verified user data (e.g. the HE public key the enclave generated).
    pub user_data: Vec<u8>,
    /// The platform that produced the quote.
    pub platform_id: [u8; 32],
}

/// The remote attestation service — the Intel PCS / IAS analogue holding the
/// registry of genuine platforms.
#[derive(Debug, Default)]
pub struct AttestationService {
    /// Ordered map: registry iteration order must never vary across runs
    /// (replay contract; `unordered-iter` lint).
    platforms: BTreeMap<[u8; 32], VerifyingKey>,
    hook: Option<Arc<dyn FaultHook>>,
    recorder: Recorder,
}

impl AttestationService {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a platform's attestation verification key (the provisioning
    /// step real platforms do through Intel).
    pub fn register_platform(&mut self, qe: &QuotingEnclave) {
        self.platforms.insert(qe.platform_id(), qe.verifying_key());
    }

    /// Installs a fault hook consulted at
    /// [`FaultSite::AttestationVerify`] on every [`AttestationService::verify`].
    /// A transient injection models the service timing out (retryable); a
    /// corruption injection models the quote arriving mangled
    /// ([`TeeError::QuoteSignatureInvalid`]).
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.hook = Some(hook);
    }

    /// Installs an observability recorder; every verification attempt bumps
    /// the `attestation.verifies` counter (injected-fault failures included).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Verifies a quote's signature and provenance.
    ///
    /// # Errors
    ///
    /// Fails with [`TeeError::UnknownPlatform`],
    /// [`TeeError::QuoteSignatureInvalid`], or — under injected transient
    /// faults — [`TeeError::Interrupted`].
    pub fn verify(&self, quote: &Quote) -> Result<VerifiedQuote> {
        self.recorder.incr(counters::ATTESTATION_VERIFIES, 1);
        if let Some(kind) = self
            .hook
            .as_ref()
            .and_then(|h| h.inject(FaultSite::AttestationVerify))
        {
            return Err(match kind {
                FaultKind::Transient => TeeError::Interrupted(FaultSite::AttestationVerify),
                FaultKind::Corruption | FaultKind::Pressure => TeeError::QuoteSignatureInvalid,
            });
        }
        let vk = self
            .platforms
            .get(&quote.platform_id)
            .ok_or(TeeError::UnknownPlatform)?;
        let msg = Quote::signed_bytes(&quote.measurement, &quote.user_data, &quote.platform_id);
        if !vk.verify(&msg, &quote.signature) {
            return Err(TeeError::QuoteSignatureInvalid);
        }
        Ok(VerifiedQuote {
            measurement: quote.measurement,
            user_data: quote.user_data.clone(),
            platform_id: quote.platform_id,
        })
    }

    /// Verifies a quote *and* that it came from the expected enclave build.
    ///
    /// # Errors
    ///
    /// Additionally fails with [`TeeError::MeasurementMismatch`].
    pub fn verify_expecting(
        &self,
        quote: &Quote,
        expected_measurement: &[u8; 32],
    ) -> Result<VerifiedQuote> {
        let verified = self.verify(quote)?;
        if &verified.measurement != expected_measurement {
            return Err(TeeError::MeasurementMismatch {
                expected: *expected_measurement,
                actual: verified.measurement,
            });
        }
        Ok(verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QuotingEnclave, AttestationService, [u8; 32]) {
        let report_key = [7u8; 32];
        let qe = QuotingEnclave::new([1u8; 32], report_key, 42);
        let mut service = AttestationService::new();
        service.register_platform(&qe);
        (qe, service, report_key)
    }

    #[test]
    fn full_attestation_flow() {
        let (qe, service, report_key) = setup();
        let report = Report::new(&report_key, [5u8; 32], b"he-public-key".to_vec());
        let quote = qe.quote(&report).unwrap();
        let verified = service.verify(&quote).unwrap();
        assert_eq!(verified.measurement, [5u8; 32]);
        assert_eq!(verified.user_data, b"he-public-key");
    }

    #[test]
    fn forged_report_rejected_by_qe() {
        let (qe, _, _) = setup();
        let wrong_key = [8u8; 32];
        let report = Report::new(&wrong_key, [5u8; 32], vec![]);
        assert_eq!(qe.quote(&report), Err(TeeError::ReportMacInvalid));
    }

    #[test]
    fn tampered_user_data_rejected() {
        let (qe, service, report_key) = setup();
        let report = Report::new(&report_key, [5u8; 32], b"key".to_vec());
        let mut quote = qe.quote(&report).unwrap();
        quote.user_data = b"evil-key".to_vec();
        assert_eq!(service.verify(&quote), Err(TeeError::QuoteSignatureInvalid));
    }

    #[test]
    fn unknown_platform_rejected() {
        let (_, service, report_key) = setup();
        let rogue = QuotingEnclave::new([9u8; 32], report_key, 43);
        let report = Report::new(&report_key, [5u8; 32], vec![]);
        let quote = rogue.quote(&report).unwrap();
        assert_eq!(service.verify(&quote), Err(TeeError::UnknownPlatform));
    }

    #[test]
    fn injected_verify_fault_is_transient_then_clears() {
        use hesgx_chaos::FaultPlan;
        let (qe, mut service, report_key) = setup();
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::AttestationVerify, 0, FaultKind::Transient)
                .build(),
        );
        service.set_fault_hook(injector);
        let report = Report::new(&report_key, [5u8; 32], b"key".to_vec());
        let quote = qe.quote(&report).unwrap();
        let err = service.verify(&quote).unwrap_err();
        assert_eq!(err, TeeError::Interrupted(FaultSite::AttestationVerify));
        assert!(err.is_transient());
        // The retry goes through.
        assert!(service.verify(&quote).is_ok());
    }

    #[test]
    fn injected_corruption_mangles_the_quote() {
        use hesgx_chaos::FaultPlan;
        let (qe, mut service, report_key) = setup();
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::AttestationVerify, 0, FaultKind::Corruption)
                .build(),
        );
        service.set_fault_hook(injector);
        let report = Report::new(&report_key, [5u8; 32], vec![]);
        let quote = qe.quote(&report).unwrap();
        let err = service.verify(&quote).unwrap_err();
        assert_eq!(err, TeeError::QuoteSignatureInvalid);
        assert!(!err.is_transient());
    }

    #[test]
    fn measurement_pinning() {
        let (qe, service, report_key) = setup();
        let report = Report::new(&report_key, [5u8; 32], vec![]);
        let quote = qe.quote(&report).unwrap();
        assert!(service.verify_expecting(&quote, &[5u8; 32]).is_ok());
        assert!(matches!(
            service.verify_expecting(&quote, &[6u8; 32]),
            Err(TeeError::MeasurementMismatch { .. })
        ));
    }
}
