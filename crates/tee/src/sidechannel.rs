//! Side-channel observation log.
//!
//! The paper argues (§III-B, §IV-C) that enclave paging and host interaction
//! are *observable behavior patterns* an attacker can exploit, and that the
//! hybrid design shrinks this surface by keeping linear layers outside. This
//! module records exactly those observables — boundary crossings and paging
//! events — so tests and benchmarks can compare attack surfaces between
//! deployment strategies.

use serde::{Deserialize, Serialize};

/// One host-observable event emitted by an enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SideChannelEvent {
    /// An ECALL boundary crossing into the enclave.
    EcallEnter {
        /// Name of the entry point.
        name: String,
        /// Bytes marshalled in.
        input_bytes: usize,
    },
    /// Return from an ECALL.
    EcallExit {
        /// Name of the entry point.
        name: String,
        /// Bytes marshalled out.
        output_bytes: usize,
    },
    /// An OCALL out to the untrusted host.
    Ocall {
        /// Name of the host function.
        name: String,
    },
    /// EPC page faults observed while servicing a call.
    PageFaults {
        /// Number of faults.
        count: u64,
    },
}

/// Bounded log of observable events plus running counters.
#[derive(Debug, Default)]
pub struct SideChannelMonitor {
    events: Vec<SideChannelEvent>,
    ecalls: u64,
    ocalls: u64,
    page_faults: u64,
    capacity: usize,
}

impl SideChannelMonitor {
    /// Creates a monitor retaining at most `capacity` detailed events
    /// (counters are always exact).
    pub fn new(capacity: usize) -> Self {
        SideChannelMonitor {
            capacity,
            ..Default::default()
        }
    }

    /// Records an event.
    pub fn record(&mut self, event: SideChannelEvent) {
        match &event {
            SideChannelEvent::EcallEnter { .. } => self.ecalls += 1,
            SideChannelEvent::Ocall { .. } => self.ocalls += 1,
            SideChannelEvent::PageFaults { count } => self.page_faults += count,
            SideChannelEvent::EcallExit { .. } => {}
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        }
    }

    /// Detailed events retained (up to the capacity).
    pub fn events(&self) -> &[SideChannelEvent] {
        &self.events
    }

    /// Total ECALLs observed.
    pub fn ecall_count(&self) -> u64 {
        self.ecalls
    }

    /// Total OCALLs observed.
    pub fn ocall_count(&self) -> u64 {
        self.ocalls
    }

    /// Total page faults observed.
    pub fn page_fault_count(&self) -> u64 {
        self.page_faults
    }

    /// A scalar "exposure" score: weighted count of observable events. Used
    /// by the hybrid-vs-enclave-only comparison (more boundary crossings and
    /// faults ⇒ more signal for a controlled-channel attacker).
    pub fn exposure_score(&self) -> u64 {
        self.ecalls + self.ocalls + 4 * self.page_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_events() {
        let mut m = SideChannelMonitor::new(10);
        m.record(SideChannelEvent::EcallEnter {
            name: "f".into(),
            input_bytes: 8,
        });
        m.record(SideChannelEvent::EcallExit {
            name: "f".into(),
            output_bytes: 8,
        });
        m.record(SideChannelEvent::PageFaults { count: 5 });
        m.record(SideChannelEvent::Ocall { name: "g".into() });
        assert_eq!(m.ecall_count(), 1);
        assert_eq!(m.ocall_count(), 1);
        assert_eq!(m.page_fault_count(), 5);
        assert_eq!(m.exposure_score(), 1 + 1 + 20);
    }

    #[test]
    fn event_log_bounded_but_counters_exact() {
        let mut m = SideChannelMonitor::new(2);
        for _ in 0..100 {
            m.record(SideChannelEvent::Ocall { name: "x".into() });
        }
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.ocall_count(), 100);
    }
}
