//! The calibrated cost model and virtual clock.
//!
//! Real SGX makes in-enclave work slower through several distinct mechanisms:
//! EENTER/EEXIT transitions, data marshalling across the boundary, memory
//! encryption (MEE) on every cache miss, and EPC paging when the working set
//! exceeds the protected memory. The simulator executes all enclave work for
//! real and *charges* these mechanisms as explicit terms on a virtual clock:
//!
//! ```text
//! virtual_time = real_elapsed × in_enclave_factor
//!              + transitions × transition_ns
//!              + copied_bytes × per_byte_copy_ns
//!              + page_faults × page_swap_ns
//!              + jitter
//! ```
//!
//! The default constants are calibrated against the paper's measurements
//! (Table I: key generation 49.593 ms inside vs 20.201 ms outside → factor
//! ≈ 2.45; Table I also shows a larger standard deviation inside, reproduced
//! by the deterministic jitter term).

use hesgx_crypto::rng::ChaChaRng;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Tunable constants of the enclave cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Multiplier on real CPU time spent inside the enclave
    /// (memory-encryption-engine and cache effects). Paper Table I ratio.
    pub in_enclave_factor: f64,
    /// Cost of one ECALL or OCALL transition (EENTER + EEXIT), nanoseconds.
    pub transition_ns: u64,
    /// Cost of evicting + reloading one EPC page (seal, MAC, copy), ns.
    pub page_swap_ns: u64,
    /// Marshalling cost per byte copied across the enclave boundary, ns.
    pub per_byte_copy_ns: f64,
    /// Relative standard deviation of in-enclave timing jitter (Table I shows
    /// σ/µ ≈ 0.07 inside vs 0.04 outside).
    pub jitter_rel_std: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            in_enclave_factor: 2.45,
            transition_ns: 8_000,
            page_swap_ns: 12_000,
            per_byte_copy_ns: 0.5,
            jitter_rel_std: 0.07,
        }
    }
}

impl CostModel {
    /// A zero-overhead model: virtual time equals real time. Used for the
    /// paper's `FakeSGX` control groups (same code, outside the enclave).
    pub fn fake_sgx() -> Self {
        CostModel {
            in_enclave_factor: 1.0,
            transition_ns: 0,
            page_swap_ns: 0,
            per_byte_copy_ns: 0.0,
            jitter_rel_std: 0.0,
        }
    }
}

/// Per-call breakdown of charged virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Real CPU nanoseconds measured for the body.
    pub real_ns: u64,
    /// Extra nanoseconds from the in-enclave slowdown factor.
    pub slowdown_ns: u64,
    /// Nanoseconds charged for boundary transitions.
    pub transition_ns: u64,
    /// Nanoseconds charged for copying data across the boundary.
    pub copy_ns: u64,
    /// Nanoseconds charged for EPC paging.
    pub paging_ns: u64,
    /// Jitter term (can be negative conceptually; stored as signed).
    pub jitter_ns: i64,
}

impl CostBreakdown {
    /// Total virtual nanoseconds. Saturating: breakdowns folded over long
    /// runs (or adversarially large scripted charges) must clamp, never
    /// wrap — a cost ledger that overflows silently is worse than one that
    /// pins at `u64::MAX`.
    pub fn total_ns(&self) -> u64 {
        self.real_ns
            .saturating_add(self.slowdown_ns)
            .saturating_add(self.transition_ns)
            .saturating_add(self.copy_ns)
            .saturating_add(self.paging_ns)
            .saturating_add_signed(self.jitter_ns)
    }

    /// Total virtual time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns())
    }

    /// Component-wise saturating sum — the single fold primitive every
    /// cost-accounting path shares (see `hesgx_core::sgx_ops::sum_costs`).
    #[must_use]
    pub fn saturating_add(self, other: Self) -> Self {
        CostBreakdown {
            real_ns: self.real_ns.saturating_add(other.real_ns),
            slowdown_ns: self.slowdown_ns.saturating_add(other.slowdown_ns),
            transition_ns: self.transition_ns.saturating_add(other.transition_ns),
            copy_ns: self.copy_ns.saturating_add(other.copy_ns),
            paging_ns: self.paging_ns.saturating_add(other.paging_ns),
            jitter_ns: self.jitter_ns.saturating_add(other.jitter_ns),
        }
    }

    /// The same six terms as an observability [`hesgx_obs::SpanCost`].
    #[must_use]
    pub fn span_cost(&self) -> hesgx_obs::SpanCost {
        hesgx_obs::SpanCost {
            real_ns: self.real_ns,
            slowdown_ns: self.slowdown_ns,
            transition_ns: self.transition_ns,
            copy_ns: self.copy_ns,
            paging_ns: self.paging_ns,
            jitter_ns: self.jitter_ns,
        }
    }
}

/// Accumulates virtual time for one enclave.
#[derive(Debug)]
pub struct VirtualClock {
    model: CostModel,
    inner: Mutex<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    virtual_ns: u128,
    rng: ChaChaRng,
}

impl VirtualClock {
    /// Creates a clock with deterministic jitter derived from `seed`.
    pub fn new(model: CostModel, seed: u64) -> Self {
        VirtualClock {
            model,
            inner: Mutex::new(ClockInner {
                virtual_ns: 0,
                rng: ChaChaRng::from_seed(seed).fork("tee-vclock"),
            }),
        }
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Charges one enclave call and returns its breakdown.
    ///
    /// `real_ns` is the measured body time, `transitions` the number of
    /// boundary crossings (usually 2: enter + exit), `copied_bytes` the
    /// marshalled argument/result volume, and `page_faults` the EPC faults
    /// the call incurred.
    pub fn charge(
        &self,
        real_ns: u64,
        transitions: u64,
        copied_bytes: u64,
        page_faults: u64,
    ) -> CostBreakdown {
        let m = &self.model;
        let slowdown = (real_ns as f64 * (m.in_enclave_factor - 1.0)).max(0.0) as u64;
        let transition = transitions * m.transition_ns;
        let copy = (copied_bytes as f64 * m.per_byte_copy_ns) as u64;
        let paging = page_faults * m.page_swap_ns;
        let mut inner = self.inner.lock();
        let jitter = if m.jitter_rel_std > 0.0 {
            let base = (real_ns + slowdown + transition + copy + paging) as f64;
            (inner.rng.next_gaussian() * m.jitter_rel_std * base) as i64
        } else {
            0
        };
        let breakdown = CostBreakdown {
            real_ns,
            slowdown_ns: slowdown,
            transition_ns: transition,
            copy_ns: copy,
            paging_ns: paging,
            jitter_ns: jitter,
        };
        inner.virtual_ns += breakdown.total_ns() as u128;
        drop(inner);
        breakdown
    }

    /// Total virtual nanoseconds accumulated so far.
    pub fn elapsed_ns(&self) -> u128 {
        self.inner.lock().virtual_ns
    }

    /// Total virtual time accumulated so far.
    pub fn elapsed(&self) -> Duration {
        let ns = self.elapsed_ns();
        Duration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_paper_ratio() {
        let m = CostModel::default();
        assert!((m.in_enclave_factor - 49.593 / 20.201).abs() < 0.01);
    }

    #[test]
    fn fake_sgx_charges_nothing_extra() {
        let clock = VirtualClock::new(CostModel::fake_sgx(), 0);
        let b = clock.charge(1_000_000, 2, 4096, 10);
        assert_eq!(b.total_ns(), 1_000_000);
        assert_eq!(b.slowdown_ns, 0);
        assert_eq!(b.paging_ns, 0);
    }

    #[test]
    fn charge_accumulates() {
        let model = CostModel {
            jitter_rel_std: 0.0,
            ..CostModel::default()
        };
        let clock = VirtualClock::new(model, 1);
        let b1 = clock.charge(1000, 2, 0, 0);
        let b2 = clock.charge(1000, 2, 0, 0);
        assert_eq!(clock.elapsed_ns(), (b1.total_ns() + b2.total_ns()) as u128);
    }

    #[test]
    fn breakdown_terms() {
        let model = CostModel {
            jitter_rel_std: 0.0,
            ..CostModel::default()
        };
        let clock = VirtualClock::new(model.clone(), 2);
        let b = clock.charge(10_000, 2, 1000, 3);
        assert_eq!(b.real_ns, 10_000);
        assert_eq!(
            b.slowdown_ns,
            (10_000.0 * (model.in_enclave_factor - 1.0)) as u64
        );
        assert_eq!(b.transition_ns, 2 * model.transition_ns);
        assert_eq!(b.copy_ns, 500);
        assert_eq!(b.paging_ns, 3 * model.page_swap_ns);
    }

    #[test]
    fn near_max_breakdowns_saturate_instead_of_wrapping() {
        let near = CostBreakdown {
            real_ns: u64::MAX - 10,
            slowdown_ns: u64::MAX - 10,
            transition_ns: u64::MAX - 10,
            copy_ns: u64::MAX - 10,
            paging_ns: u64::MAX - 10,
            jitter_ns: i64::MAX - 10,
        };
        // total_ns over an already-huge base must clamp at u64::MAX …
        assert_eq!(near.total_ns(), u64::MAX);
        // … and folding two near-max breakdowns must clamp component-wise.
        let sum = near.saturating_add(near);
        assert_eq!(sum.real_ns, u64::MAX);
        assert_eq!(sum.paging_ns, u64::MAX);
        assert_eq!(sum.jitter_ns, i64::MAX);
        assert_eq!(sum.total_ns(), u64::MAX);
        // A dominant negative jitter clamps the total at zero, not wraps.
        let negative = CostBreakdown {
            real_ns: 5,
            jitter_ns: i64::MIN + 1,
            ..CostBreakdown::default()
        };
        assert_eq!(negative.total_ns(), 0);
    }

    #[test]
    fn span_cost_mirrors_all_terms() {
        let b = CostBreakdown {
            real_ns: 1,
            slowdown_ns: 2,
            transition_ns: 3,
            copy_ns: 4,
            paging_ns: 5,
            jitter_ns: -6,
        };
        let s = b.span_cost();
        assert_eq!(
            (
                s.real_ns,
                s.slowdown_ns,
                s.transition_ns,
                s.copy_ns,
                s.paging_ns,
                s.jitter_ns
            ),
            (1, 2, 3, 4, 5, -6)
        );
        assert_eq!(s.total_ns(), b.total_ns());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = VirtualClock::new(CostModel::default(), 7);
        let b = VirtualClock::new(CostModel::default(), 7);
        assert_eq!(a.charge(1_000_000, 2, 0, 0), b.charge(1_000_000, 2, 0, 0));
    }

    #[test]
    fn jitter_widens_inside_variance() {
        // The enclave model must add variance the fake model lacks — the
        // paper's Table I STD observation.
        let clock = VirtualClock::new(CostModel::default(), 3);
        let samples: Vec<u64> = (0..200)
            .map(|_| clock.charge(1_000_000, 2, 0, 0).total_ns())
            .collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 100, "jitter should vary per call");
    }
}
