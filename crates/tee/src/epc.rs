//! Enclave Page Cache model.
//!
//! SGX1 exposes ~93 MiB of usable protected memory; when an enclave's working
//! set exceeds it, pages are evicted (sealed to untrusted DRAM) and reloaded
//! on fault. The paper's §III-B names this paging as the core scaling problem
//! of enclave-only inference, and §IV-C motivates the hybrid split — keeping
//! model weights *outside* — by the paging and side-channel pressure it
//! avoids. This module makes those effects measurable.

use crate::error::{Result, TeeError};
use hesgx_chaos::{FaultHook, FaultSite};
use hesgx_obs::{counters, Recorder};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Page size in bytes (SGX uses 4 KiB EPC pages).
pub const PAGE_SIZE: usize = 4096;

/// Default usable EPC capacity (SGX1-era: 128 MiB reserved, ~93 MiB usable).
pub const DEFAULT_EPC_BYTES: usize = 93 * 1024 * 1024;

/// Identifier of a logical enclave memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u64);

/// Statistics accumulated by the page cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpcStats {
    /// Page faults (first touch or reload after eviction).
    pub faults: u64,
    /// Evictions (pages sealed out to untrusted memory).
    pub evictions: u64,
    /// Touches that hit resident pages.
    pub hits: u64,
}

#[derive(Debug)]
struct Region {
    pages: usize,
}

/// An LRU-managed enclave page cache.
#[derive(Debug)]
pub struct Epc {
    capacity_pages: usize,
    heap_pages: usize,
    allocated_pages: usize,
    /// Ordered map: any iteration over EPC state must be deterministic
    /// (replay contract; `unordered-iter` lint).
    regions: BTreeMap<RegionId, Region>,
    next_region: u64,
    /// Resident pages in LRU order (front = least recently used).
    lru: Vec<(RegionId, usize)>,
    resident: BTreeMap<(RegionId, usize), usize>, // -> index hint (rebuilt lazily)
    stats: EpcStats,
    hook: Option<Arc<dyn FaultHook>>,
    recorder: Recorder,
}

impl Epc {
    /// Creates a page cache with `capacity_bytes` of protected memory backing
    /// an enclave heap of `heap_bytes`.
    pub fn new(capacity_bytes: usize, heap_bytes: usize) -> Self {
        Epc {
            capacity_pages: capacity_bytes.div_ceil(PAGE_SIZE).max(1),
            heap_pages: heap_bytes.div_ceil(PAGE_SIZE),
            allocated_pages: 0,
            regions: BTreeMap::new(),
            next_region: 1,
            lru: Vec::new(),
            resident: BTreeMap::new(),
            stats: EpcStats::default(),
            hook: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Installs a fault hook consulted on page touches ([`FaultSite::EpcLoad`]
    /// for resident hits, [`FaultSite::EpcEvict`] on the fault path). Injected
    /// EPC faults model *pressure* from competing enclaves: touches still
    /// succeed, but pay extra faults and evictions.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.hook = Some(hook);
    }

    /// Installs an observability recorder. Paging activity is recorded as
    /// `epc.load` / `epc.evict` span entries (count only — the nanoseconds
    /// of paging are charged in the owning ECALL's `paging_ns` term) plus
    /// `epc.*` counters.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Allocates a logical region of `bytes` within the enclave heap.
    ///
    /// # Errors
    ///
    /// Fails with [`TeeError::HeapExhausted`] when the enclave heap cannot fit
    /// the region.
    pub fn alloc(&mut self, bytes: usize) -> Result<RegionId> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        if self.allocated_pages + pages > self.heap_pages {
            return Err(TeeError::HeapExhausted {
                requested: bytes,
                available: (self.heap_pages - self.allocated_pages) * PAGE_SIZE,
            });
        }
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.allocated_pages += pages;
        self.regions.insert(id, Region { pages });
        Ok(id)
    }

    /// Frees a region, dropping its resident pages.
    ///
    /// # Errors
    ///
    /// Fails when the region does not exist.
    pub fn free(&mut self, id: RegionId) -> Result<()> {
        let region = self
            .regions
            .remove(&id)
            .ok_or(TeeError::UnknownRegion(id.0))?;
        self.allocated_pages -= region.pages;
        self.lru.retain(|&(r, _)| r != id);
        self.resident.retain(|&(r, _), _| r != id);
        Ok(())
    }

    /// Touches all pages of `region`, simulating a full scan.
    /// Returns the number of page faults incurred.
    ///
    /// # Errors
    ///
    /// Fails when the region does not exist.
    pub fn touch_region(&mut self, id: RegionId) -> Result<u64> {
        let pages = self
            .regions
            .get(&id)
            .ok_or(TeeError::UnknownRegion(id.0))?
            .pages;
        let mut faults = 0;
        for p in 0..pages {
            if self.touch_page(id, p) {
                faults += 1;
            }
        }
        Ok(faults)
    }

    /// Touches `bytes` worth of pages starting at the region base.
    /// Returns the number of page faults incurred.
    ///
    /// # Errors
    ///
    /// Fails when the region does not exist.
    pub fn touch_bytes(&mut self, id: RegionId, bytes: usize) -> Result<u64> {
        let pages = self
            .regions
            .get(&id)
            .ok_or(TeeError::UnknownRegion(id.0))?
            .pages;
        let touched = bytes.div_ceil(PAGE_SIZE).min(pages).max(1);
        let mut faults = 0;
        for p in 0..touched {
            if self.touch_page(id, p) {
                faults += 1;
            }
        }
        Ok(faults)
    }

    /// Touches one page; returns `true` on fault.
    fn touch_page(&mut self, id: RegionId, page: usize) -> bool {
        let key = (id, page);
        if self.resident.contains_key(&key) {
            let pressured = self
                .hook
                .as_ref()
                .is_some_and(|h| h.inject(FaultSite::EpcLoad).is_some());
            if pressured {
                // Injected pressure: the page behaves as if a competing
                // enclave evicted it — drop residency and fall through to the
                // fault path so it must be reloaded.
                if let Some(pos) = self.lru.iter().position(|&k| k == key) {
                    self.lru.remove(pos);
                }
                self.resident.remove(&key);
                self.record_eviction();
            } else {
                // Move to MRU position.
                if let Some(pos) = self.lru.iter().position(|&k| k == key) {
                    let item = self.lru.remove(pos);
                    self.lru.push(item);
                }
                self.stats.hits += 1;
                self.recorder.incr(counters::EPC_HITS, 1);
                return false;
            }
        }
        // Fault: evict if full, then load.
        let _prof = hesgx_obs::prof::span("epc.load");
        self.stats.faults += 1;
        self.recorder.record_zero_attempt("epc.load");
        self.recorder.incr(counters::EPC_PAGE_FAULTS, 1);
        if self.recorder.trace_enabled() {
            // Inside an ECALL slice on the timeline: touches happen on the
            // calling thread, so instant order is deterministic.
            self.recorder
                .trace_instant("epc.load", &[("page", page.to_string())]);
        }
        let extra_eviction = self
            .hook
            .as_ref()
            .is_some_and(|h| h.inject(FaultSite::EpcEvict).is_some());
        if extra_eviction && !self.lru.is_empty() {
            // Injected pressure: one extra victim page beyond capacity needs.
            let victim = self.lru.remove(0);
            self.resident.remove(&victim);
            self.record_eviction();
        }
        while self.lru.len() >= self.capacity_pages {
            let victim = self.lru.remove(0);
            self.resident.remove(&victim);
            self.record_eviction();
        }
        self.lru.push(key);
        self.resident.insert(key, 0);
        true
    }

    /// Bumps the eviction stat and its observability mirror together.
    fn record_eviction(&mut self) {
        let _prof = hesgx_obs::prof::span("epc.evict");
        self.stats.evictions += 1;
        self.recorder.record_zero_attempt("epc.evict");
        self.recorder.incr(counters::EPC_EVICTIONS, 1);
        if self.recorder.trace_enabled() {
            self.recorder.trace_instant("epc.evict", &[]);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> EpcStats {
        self.stats
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.lru.len()
    }

    /// Total pages allocated across regions.
    pub fn allocated_pages(&self) -> usize {
        self.allocated_pages
    }

    /// EPC capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_within_heap() {
        let mut epc = Epc::new(16 * PAGE_SIZE, 8 * PAGE_SIZE);
        let r = epc.alloc(3 * PAGE_SIZE).unwrap();
        assert_eq!(epc.allocated_pages(), 3);
        epc.free(r).unwrap();
        assert_eq!(epc.allocated_pages(), 0);
    }

    #[test]
    fn heap_exhaustion() {
        let mut epc = Epc::new(16 * PAGE_SIZE, 4 * PAGE_SIZE);
        epc.alloc(3 * PAGE_SIZE).unwrap();
        assert!(matches!(
            epc.alloc(2 * PAGE_SIZE),
            Err(TeeError::HeapExhausted { .. })
        ));
    }

    #[test]
    fn cold_touch_faults_then_hits() {
        let mut epc = Epc::new(16 * PAGE_SIZE, 8 * PAGE_SIZE);
        let r = epc.alloc(4 * PAGE_SIZE).unwrap();
        assert_eq!(epc.touch_region(r).unwrap(), 4);
        assert_eq!(epc.touch_region(r).unwrap(), 0);
        assert_eq!(epc.stats().faults, 4);
        assert_eq!(epc.stats().hits, 4);
    }

    #[test]
    fn working_set_larger_than_epc_thrashes() {
        // 4-page EPC, two 3-page regions: alternating scans must fault forever.
        let mut epc = Epc::new(4 * PAGE_SIZE, 8 * PAGE_SIZE);
        let a = epc.alloc(3 * PAGE_SIZE).unwrap();
        let b = epc.alloc(3 * PAGE_SIZE).unwrap();
        epc.touch_region(a).unwrap();
        epc.touch_region(b).unwrap();
        let faults_a = epc.touch_region(a).unwrap();
        assert!(faults_a > 0, "thrashing working set must keep faulting");
        assert!(epc.stats().evictions > 0);
    }

    #[test]
    fn small_working_set_no_thrash() {
        let mut epc = Epc::new(8 * PAGE_SIZE, 8 * PAGE_SIZE);
        let a = epc.alloc(2 * PAGE_SIZE).unwrap();
        let b = epc.alloc(2 * PAGE_SIZE).unwrap();
        epc.touch_region(a).unwrap();
        epc.touch_region(b).unwrap();
        assert_eq!(epc.touch_region(a).unwrap(), 0);
        assert_eq!(epc.touch_region(b).unwrap(), 0);
        assert_eq!(epc.stats().evictions, 0);
    }

    #[test]
    fn unknown_region_rejected() {
        let mut epc = Epc::new(8 * PAGE_SIZE, 8 * PAGE_SIZE);
        assert_eq!(
            epc.touch_region(RegionId(42)),
            Err(TeeError::UnknownRegion(42))
        );
        assert_eq!(epc.free(RegionId(42)), Err(TeeError::UnknownRegion(42)));
    }

    #[test]
    fn load_fault_forces_reload_of_resident_page() {
        use hesgx_chaos::{FaultKind, FaultPlan};
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::EpcLoad, 0, FaultKind::Pressure)
                .build(),
        );
        let mut epc = Epc::new(16 * PAGE_SIZE, 8 * PAGE_SIZE);
        epc.set_fault_hook(injector);
        let r = epc.alloc(PAGE_SIZE).unwrap();
        assert_eq!(epc.touch_region(r).unwrap(), 1); // cold fault
                                                     // Resident, but the injected pressure evicts it mid-touch: faults
                                                     // again instead of hitting.
        assert_eq!(epc.touch_region(r).unwrap(), 1);
        assert_eq!(epc.stats().evictions, 1);
        // Subsequent touches hit normally (script fired once).
        assert_eq!(epc.touch_region(r).unwrap(), 0);
    }

    #[test]
    fn evict_fault_drops_an_extra_victim() {
        use hesgx_chaos::{FaultKind, FaultPlan};
        let injector = Arc::new(
            FaultPlan::new(1)
                .script(FaultSite::EpcEvict, 1, FaultKind::Pressure)
                .build(),
        );
        let mut epc = Epc::new(16 * PAGE_SIZE, 8 * PAGE_SIZE);
        epc.set_fault_hook(injector);
        let a = epc.alloc(PAGE_SIZE).unwrap();
        let b = epc.alloc(PAGE_SIZE).unwrap();
        epc.touch_region(a).unwrap(); // cold fault, occurrence 0: no injection
        epc.touch_region(b).unwrap(); // cold fault, occurrence 1: evicts `a`
        assert_eq!(epc.stats().evictions, 1);
        // `a` was the extra victim, so touching it faults again.
        assert_eq!(epc.touch_region(a).unwrap(), 1);
    }

    #[test]
    fn recorder_mirrors_epc_stats() {
        let rec = Recorder::enabled();
        let mut epc = Epc::new(2 * PAGE_SIZE, 8 * PAGE_SIZE);
        epc.set_recorder(rec.clone());
        let r = epc.alloc(3 * PAGE_SIZE).unwrap();
        epc.touch_region(r).unwrap(); // 3 cold faults, 1 capacity eviction
        epc.touch_region(r).unwrap(); // keeps thrashing within a 2-page EPC
        let stats = epc.stats();
        assert_eq!(rec.counter(counters::EPC_PAGE_FAULTS), stats.faults);
        assert_eq!(rec.counter(counters::EPC_EVICTIONS), stats.evictions);
        assert_eq!(rec.counter(counters::EPC_HITS), stats.hits);
        assert_eq!(rec.span("epc.load").map(|s| s.entries), Some(stats.faults));
        assert_eq!(
            rec.span("epc.evict").map(|s| s.entries),
            Some(stats.evictions)
        );
    }

    #[test]
    fn touch_bytes_partial() {
        let mut epc = Epc::new(16 * PAGE_SIZE, 8 * PAGE_SIZE);
        let r = epc.alloc(8 * PAGE_SIZE).unwrap();
        assert_eq!(epc.touch_bytes(r, PAGE_SIZE + 1).unwrap(), 2);
        assert_eq!(epc.touch_bytes(r, PAGE_SIZE).unwrap(), 0);
    }
}
