//! Property tests of the histogram and exporter invariants (ISSUE 5):
//! bucket counts always sum to the entry count, bucket-derived percentiles
//! are monotone and bucket-aligned, and equal recorder contents render to
//! byte-identical snapshot / Chrome-trace / Prometheus outputs regardless
//! of which handle recorded them.

use hesgx_obs::{bucket_index, bucket_upper, Histogram, Recorder, SpanCost, TracePhase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_counts_sum_to_entry_count(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let bucket_total: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        let nonzero_total: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(nonzero_total, values.len() as u64);
    }

    #[test]
    fn every_value_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper(i));
        if i > 0 {
            prop_assert!(v > bucket_upper(i - 1));
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bucket_aligned(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let (p50, p95, p99) = (h.percentile(50), h.percentile(95), h.percentile(99));
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        for p in [p50, p95, p99] {
            prop_assert_eq!(p, bucket_upper(bucket_index(p)), "{} is not a bucket bound", p);
        }
        // The reported quantile is never below the true minimum's bucket,
        // never above the true maximum's bucket.
        let lo = bucket_upper(bucket_index(*values.iter().min().unwrap()));
        let hi = bucket_upper(bucket_index(*values.iter().max().unwrap()));
        prop_assert!(p50 >= lo && p99 <= hi);
    }

    #[test]
    fn percentile_matches_exact_rank_walk(values in proptest::collection::vec(0u64..100_000, 1..100), p in 1u8..100) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        // Reference: sort the raw values, take the ceil-rank element, and
        // round it up to its bucket bound — must agree with the histogram.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = (sorted.len() as u128 * u128::from(p)).div_ceil(100).max(1) as usize;
        let expected = bucket_upper(bucket_index(sorted[rank - 1]));
        prop_assert_eq!(h.percentile(p), expected);
    }

    #[test]
    fn equal_contents_render_identical_bytes(
        names in proptest::collection::vec(0usize..6, 1..40),
        values in proptest::collection::vec(any::<u64>(), 1..40),
        advances in proptest::collection::vec(0u64..1_000_000, 1..40),
    ) {
        const LABELS: [&str; 6] = [
            "infer.layer[1].ecall",
            "ecall.bytes",
            "epc.load",
            "recovery.depth",
            "noise.budget.layer[3].pre",
            "par.tasks",
        ];
        let build = || {
            let r = Recorder::with_timeline();
            for ((&n, &v), &adv) in names.iter().zip(&values).zip(advances.iter().cycle()) {
                let label = LABELS[n % LABELS.len()];
                r.incr(label, v % 17);
                r.observe(label, v);
                r.gauge(label, v % 64);
                r.record_span(label, SpanCost {
                    transition_ns: v % 1000,
                    copy_ns: v % 777,
                    paging_ns: v % 321,
                    ..SpanCost::default()
                });
                r.trace_begin(label, &[("v", (v % 97).to_string())]);
                r.trace_advance(adv);
                r.trace_instant("epc.load", &[]);
                r.trace_end(label);
            }
            r
        };
        let (a, b) = (build(), build());
        prop_assert_eq!(a.snapshot_json(), b.snapshot_json());
        prop_assert_eq!(a.export_chrome_trace(), b.export_chrome_trace());
        prop_assert_eq!(a.export_prometheus(), b.export_prometheus());
    }

    #[test]
    fn trace_timestamps_strictly_increase(advances in proptest::collection::vec(0u64..1_000_000, 1..50)) {
        let r = Recorder::with_timeline();
        for (i, &adv) in advances.iter().enumerate() {
            r.trace_begin("span", &[("i", i.to_string())]);
            r.trace_advance(adv);
            r.trace_end("span");
        }
        let events = r.trace_events();
        prop_assert_eq!(events.len(), advances.len() * 2);
        for w in events.windows(2) {
            prop_assert!(w[0].ts_ns < w[1].ts_ns);
        }
        // Begin/end alternate and nest correctly for a flat span sequence.
        for (i, e) in events.iter().enumerate() {
            let expected = if i % 2 == 0 { TracePhase::Begin } else { TracePhase::End };
            prop_assert_eq!(e.phase, expected);
        }
    }
}
