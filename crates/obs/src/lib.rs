//! `hesgx-obs` — deterministic, dependency-free metrics and tracing.
//!
//! The workspace charges every enclave boundary crossing through a *virtual
//! clock* ([`hesgx-tee`]'s `CostBreakdown`), which is what makes the paper's
//! Fig. 8 decomposition reproducible. This crate makes those charges — and
//! the recovery / paging / parallelism machinery around them — *auditable*:
//! a [`Recorder`] collects hierarchical spans, counters, gauges, log2
//! histograms, and (when requested) an ordered per-request trace timeline,
//! and renders **byte-stable** outputs so the same seed produces the same
//! metrics file on every run and at every thread-pool size.
//!
//! # Span taxonomy
//!
//! | span | recorded by | cost carried |
//! |------|-------------|--------------|
//! | `session.provision` | `hesgx-core` pipeline | key ceremony + sealing |
//! | `infer.layer[i].he` | `hesgx-core` pipeline | wall time only (outside) |
//! | `infer.layer[i].ecall` | `hesgx-core` pipeline | full virtual-clock terms |
//! | `ecall.<name>` | `hesgx-tee` enclave | full virtual-clock terms |
//! | `recovery.retry` | `hesgx-core` recovery | per-attempt cost (zero-cost attempts included) |
//! | `epc.load` / `epc.evict` | `hesgx-tee` EPC | count only (ns live in the owning ecall's `paging_ns`) |
//!
//! The same names double as trace-event names on the timeline (DESIGN.md
//! §13), with instants for EPC loads/evictions, retry attempts, degraded
//! fallbacks, and noise-refresh decisions.
//!
//! # Determinism rules
//!
//! A [`SpanCost`] carries all six virtual-clock terms, but only the *modeled*
//! terms — `transition_ns`, `copy_ns`, `paging_ns` — plus entry counts,
//! counters, gauges, and histograms are encoded into
//! [`Recorder::snapshot_json`] and [`Recorder::export_prometheus`]. The
//! remaining terms (`real_ns`, `slowdown_ns`, `jitter_ns`) derive from
//! wall-clock measurements and are therefore machine- and run-dependent;
//! they stay available in memory (for the ns-for-ns reconciliation against
//! `total_enclave_cost`) but never reach an exported byte. Trace timestamps
//! live on a dedicated virtual trace clock ([`Recorder::trace_advance`]).
//! Snapshot maps are `BTreeMap`s, so key order is sorted and every encoding
//! is byte-stable.
//!
//! # Zero cost when off
//!
//! The default [`Recorder`] is disabled: it holds no allocation and every
//! recording method is a single `Option` check. Hot paths thread it by value
//! (it is `Clone`) and pay nothing unless observability was requested.
//! Timeline recording is a second opt-in ([`Recorder::with_timeline`]) on
//! top of the enabled state, so aggregate-only users pay nothing for event
//! storage either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
pub mod prof;
mod trace;

pub use hist::{bucket_index, bucket_upper, Histogram, BUCKETS};
pub use prof::{DriftEntry, DriftReport, Hotspot, Profiler};
pub use trace::{TraceEvent, TracePhase};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Canonical counter names, so call sites and reports agree on spelling.
pub mod counters {
    /// ECALLs executed (one per enclave boundary round trip).
    pub const ECALLS: &str = "ecall.calls";
    /// World-switch transitions charged (2 per ECALL + 2 per nested OCALL).
    pub const ECALL_TRANSITIONS: &str = "ecall.transitions";
    /// Bytes marshalled across the boundary (inputs + outputs).
    pub const BYTES_MARSHALLED: &str = "ecall.bytes_marshalled";
    /// EPC page faults (demand loads of non-resident pages).
    pub const EPC_PAGE_FAULTS: &str = "epc.page_faults";
    /// EPC page evictions (capacity pressure).
    pub const EPC_EVICTIONS: &str = "epc.evictions";
    /// EPC resident-page hits.
    pub const EPC_HITS: &str = "epc.hits";
    /// Attempts started under `retry_with_cost` (first tries included).
    pub const RECOVERY_ATTEMPTS: &str = "recovery.attempts";
    /// Retries spent (attempts beyond the first).
    pub const RECOVERY_RETRIES: &str = "recovery.retries";
    /// Session re-provisions after sealed-state loss.
    pub const REPROVISIONS: &str = "recovery.reprovisions";
    /// Requests served exactly (hybrid path).
    pub const SERVED_EXACT: &str = "served.exact";
    /// Requests served degraded (pure-HE fallback).
    pub const SERVED_DEGRADED: &str = "served.degraded";
    /// Faults the chaos injector actually delivered.
    pub const FAULTS_INJECTED: &str = "faults.injected";
    /// Work items submitted to the parallel executor.
    pub const PAR_TASKS: &str = "par.tasks";
    /// Attestation quote verifications performed.
    pub const ATTESTATION_VERIFIES: &str = "attestation.verifies";
    /// Noise-budget probes executed inside the enclave.
    pub const NOISE_PROBES: &str = "noise.probes";
    /// Noise refreshes actually taken (Always mode or Auto below threshold).
    pub const NOISE_REFRESHES: &str = "noise.refreshes";
    /// Auto-mode refreshes skipped because the budget was above threshold.
    pub const NOISE_REFRESH_SKIPS: &str = "noise.refresh_skips";
    /// Transciphered-ingress payloads opened and re-encrypted under FV.
    pub const TRANSCIPHERS: &str = "ingress.transciphers";
    /// Client upload bytes accepted at ingress (stream payloads or FV
    /// ciphertext maps, whichever the request shipped).
    pub const INGRESS_UPLOAD_BYTES: &str = "ingress.upload_bytes";
}

/// Virtual-clock cost attached to a span entry.
///
/// Mirrors the six terms of `hesgx-tee`'s `CostBreakdown` without depending
/// on it (this crate sits below the rest of the workspace). All arithmetic
/// saturates — metrics must never panic the pipeline they observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCost {
    /// Measured wall/CPU nanoseconds (machine-dependent; excluded from snapshots).
    pub real_ns: u64,
    /// In-enclave slowdown term (derived from `real_ns`; excluded from snapshots).
    pub slowdown_ns: u64,
    /// Modeled world-switch transition nanoseconds (deterministic).
    pub transition_ns: u64,
    /// Modeled marshalling-copy nanoseconds (deterministic).
    pub copy_ns: u64,
    /// Modeled EPC paging nanoseconds (deterministic).
    pub paging_ns: u64,
    /// Signed jitter term (derived from `real_ns`; excluded from snapshots).
    pub jitter_ns: i64,
}

impl SpanCost {
    /// Component-wise saturating sum.
    #[must_use]
    pub fn saturating_add(self, other: Self) -> Self {
        Self {
            real_ns: self.real_ns.saturating_add(other.real_ns),
            slowdown_ns: self.slowdown_ns.saturating_add(other.slowdown_ns),
            transition_ns: self.transition_ns.saturating_add(other.transition_ns),
            copy_ns: self.copy_ns.saturating_add(other.copy_ns),
            paging_ns: self.paging_ns.saturating_add(other.paging_ns),
            jitter_ns: self.jitter_ns.saturating_add(other.jitter_ns),
        }
    }

    /// All six terms combined (saturating; jitter clamps at zero).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.real_ns
            .saturating_add(self.slowdown_ns)
            .saturating_add(self.transition_ns)
            .saturating_add(self.copy_ns)
            .saturating_add(self.paging_ns)
            .saturating_add_signed(self.jitter_ns)
    }

    /// The deterministic (modeled) terms only: transitions + copies + paging.
    /// This is what the byte-stable snapshot encodes.
    #[must_use]
    pub fn model_ns(&self) -> u64 {
        self.transition_ns
            .saturating_add(self.copy_ns)
            .saturating_add(self.paging_ns)
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of entries recorded under this path.
    pub entries: u64,
    /// Saturating sum of every entry's cost.
    pub cost: SpanCost,
}

#[derive(Default)]
pub(crate) struct State {
    pub(crate) spans: BTreeMap<String, SpanStats>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, Vec<u64>>,
    pub(crate) hists: BTreeMap<String, Histogram>,
    pub(crate) trace: Option<trace::TraceState>,
}

/// A shared handle onto a metrics sink. Cheap to clone; `Default` is the
/// disabled recorder, whose every method is a no-op behind one `Option`
/// check.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<State>>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("timeline", &self.trace_enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder (same as `Recorder::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder with empty state (aggregates only, no timeline).
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(State::default()))),
        }
    }

    /// A live recorder that additionally keeps the ordered trace timeline.
    #[must_use]
    pub fn with_timeline() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(State {
                trace: Some(trace::TraceState::default()),
                ..State::default()
            }))),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle keeps a trace timeline (implies [`Self::is_enabled`]).
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.lock().is_some_and(|state| state.trace.is_some())
    }

    fn lock(&self) -> Option<MutexGuard<'_, State>> {
        // A poisoned metrics mutex must never take the pipeline down with
        // it; the state is plain counters, so the data stays usable.
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Records one entry under `path`, accumulating `cost`.
    pub fn record_span(&self, path: &str, cost: SpanCost) {
        if let Some(mut state) = self.lock() {
            let stats = state.spans.entry(path.to_owned()).or_default();
            stats.entries = stats.entries.saturating_add(1);
            stats.cost = stats.cost.saturating_add(cost);
        }
    }

    /// Records an entry under `path` that crossed no boundary and was
    /// charged nothing — e.g. a retry attempt dropped before its ECALL.
    /// Keeps entry counts reconcilable with fault reports even when the
    /// cost books legitimately show zero.
    pub fn record_zero_attempt(&self, path: &str) {
        self.record_span(path, SpanCost::default());
    }

    /// Adds `by` to the named counter (saturating).
    pub fn incr(&self, counter: &str, by: u64) {
        if let Some(mut state) = self.lock() {
            let slot = state.counters.entry(counter.to_owned()).or_default();
            *slot = slot.saturating_add(by);
        }
    }

    /// Appends one sample to the named gauge series (trajectory order is
    /// kept; Prometheus exports the latest value, the snapshot the series).
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(mut state) = self.lock() {
            state.gauges.entry(name.to_owned()).or_default().push(value);
        }
    }

    /// Records one observation into the named log2-bucket histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(mut state) = self.lock() {
            state
                .hists
                .entry(name.to_owned())
                .or_default()
                .record(value);
        }
    }

    /// Opens a duration slice on the timeline (no-op without a timeline).
    pub fn trace_begin(&self, name: &str, args: &[(&str, String)]) {
        if let Some(mut state) = self.lock() {
            if let Some(trace) = state.trace.as_mut() {
                trace.push(TracePhase::Begin, name, args);
            }
        }
    }

    /// Closes the innermost open slice of the same name on the timeline.
    pub fn trace_end(&self, name: &str) {
        if let Some(mut state) = self.lock() {
            if let Some(trace) = state.trace.as_mut() {
                trace.push(TracePhase::End, name, &[]);
            }
        }
    }

    /// Drops a zero-width marker on the timeline.
    pub fn trace_instant(&self, name: &str, args: &[(&str, String)]) {
        if let Some(mut state) = self.lock() {
            if let Some(trace) = state.trace.as_mut() {
                trace.push(TracePhase::Instant, name, args);
            }
        }
    }

    /// Advances the virtual trace clock by `ns` *modeled* nanoseconds —
    /// called by the instrumented code with deterministic cost terms only
    /// ([`SpanCost::model_ns`]), never with wall-clock measurements.
    pub fn trace_advance(&self, ns: u64) {
        if let Some(mut state) = self.lock() {
            if let Some(trace) = state.trace.as_mut() {
                trace.vnow = trace.vnow.saturating_add(ns);
            }
        }
    }

    /// A copy of the recorded timeline, in order (empty without a timeline).
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.lock()
            .and_then(|state| state.trace.as_ref().map(|t| t.events.clone()))
            .unwrap_or_default()
    }

    /// Events discarded after the timeline hit its capacity cap.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.lock()
            .and_then(|state| state.trace.as_ref().map(|t| t.dropped))
            .unwrap_or(0)
    }

    /// Current statistics of one span path, if any entries were recorded.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<SpanStats> {
        self.lock().and_then(|state| state.spans.get(path).copied())
    }

    /// Current value of a counter (0 when absent or disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock()
            .and_then(|state| state.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// The recorded series of a gauge (empty when absent or disabled).
    #[must_use]
    pub fn gauge_series(&self, name: &str) -> Vec<u64> {
        self.lock()
            .and_then(|state| state.gauges.get(name).cloned())
            .unwrap_or_default()
    }

    /// A copy of the named histogram, if any observations were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().and_then(|state| state.hists.get(name).cloned())
    }

    /// All spans whose path starts with `prefix`, in sorted order.
    #[must_use]
    pub fn spans_with_prefix(&self, prefix: &str) -> Vec<(String, SpanStats)> {
        match self.lock() {
            Some(state) => state
                .spans
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Saturating sum of the full (six-term) costs of every span matching
    /// `prefix` — the in-memory side of the reconciliation invariant.
    #[must_use]
    pub fn sum_spans(&self, prefix: &str) -> SpanCost {
        self.spans_with_prefix(prefix)
            .into_iter()
            .fold(SpanCost::default(), |acc, (_, s)| {
                acc.saturating_add(s.cost)
            })
    }

    /// Clears all aggregates and timeline events (the handle stays enabled,
    /// and a timeline recorder stays a timeline recorder; the trace clock
    /// restarts at zero).
    pub fn reset(&self) {
        if let Some(mut state) = self.lock() {
            state.spans.clear();
            state.counters.clear();
            state.gauges.clear();
            state.hists.clear();
            if let Some(trace) = state.trace.as_mut() {
                *trace = trace::TraceState::default();
            }
        }
    }

    /// Byte-stable JSON snapshot: sorted keys, deterministic terms only
    /// (`transition_ns`, `copy_ns`, `paging_ns`, entry counts, counters,
    /// gauges, histogram buckets with bucket-derived percentiles).
    /// Wall-derived terms never reach the file — see the crate docs.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let state = self.lock();
        let empty = State::default();
        let state: &State = state.as_deref().unwrap_or(&empty);
        let mut out = String::from("{\"counters\":{");
        push_joined(&mut out, state.counters.iter(), |out, (name, value)| {
            out.push_str(&format!("{}:{value}", json_string(name)));
        });
        out.push_str("},\"gauges\":{");
        push_joined(&mut out, state.gauges.iter(), |out, (name, series)| {
            out.push_str(&format!("{}:[", json_string(name)));
            push_joined(out, series.iter(), |out, v| out.push_str(&v.to_string()));
            out.push(']');
        });
        out.push_str("},\"hists\":{");
        push_joined(&mut out, state.hists.iter(), |out, (name, hist)| {
            out.push_str(&format!("{}:{{\"buckets\":[", json_string(name)));
            push_joined(out, hist.nonzero_buckets().into_iter(), |out, (i, n)| {
                out.push_str(&format!("[{i},{n}]"));
            });
            out.push_str(&format!(
                "],\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"sum\":{}}}",
                hist.count(),
                hist.percentile(50),
                hist.percentile(95),
                hist.percentile(99),
                hist.sum()
            ));
        });
        out.push_str("},\"spans\":{");
        push_joined(&mut out, state.spans.iter(), |out, (path, stats)| {
            out.push_str(&format!(
                "{}:{{\"copy_ns\":{},\"entries\":{},\"paging_ns\":{},\"transition_ns\":{}}}",
                json_string(path),
                stats.cost.copy_ns,
                stats.entries,
                stats.cost.paging_ns,
                stats.cost.transition_ns
            ));
        });
        out.push_str("}}");
        out
    }

    /// Byte-stable Chrome trace-event JSON of the timeline, loadable in
    /// Perfetto or `about://tracing`. Empty `traceEvents` without a
    /// timeline — the exporter never fails.
    #[must_use]
    pub fn export_chrome_trace(&self) -> String {
        let events = self.trace_events();
        export::chrome_trace(&events)
    }

    /// Byte-stable Prometheus text exposition of the aggregate state
    /// (counters, span entries + modeled ns, gauges, histograms).
    #[must_use]
    pub fn export_prometheus(&self) -> String {
        let state = self.lock();
        let empty = State::default();
        export::prometheus(state.as_deref().unwrap_or(&empty))
    }
}

/// Appends `render(item)` for each item, comma-separated.
fn push_joined<I, T>(out: &mut String, items: I, mut render: impl FnMut(&mut String, T))
where
    I: Iterator<Item = T>,
{
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        render(out, item);
    }
}

/// Minimal JSON string encoding (span paths and counter names are ASCII
/// identifiers, but quoting defensively costs nothing).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMPTY_SNAPSHOT: &str = "{\"counters\":{},\"gauges\":{},\"hists\":{},\"spans\":{}}";

    fn cost(real: u64, transition: u64, copy: u64, paging: u64, jitter: i64) -> SpanCost {
        SpanCost {
            real_ns: real,
            slowdown_ns: 0,
            transition_ns: transition,
            copy_ns: copy,
            paging_ns: paging,
            jitter_ns: jitter,
        }
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        r.record_span("a", cost(1, 2, 3, 4, 5));
        r.incr(counters::ECALLS, 7);
        r.gauge("g", 1);
        r.observe("h", 1);
        r.trace_begin("t", &[]);
        r.trace_end("t");
        assert!(!r.is_enabled());
        assert!(!r.trace_enabled());
        assert_eq!(r.span("a"), None);
        assert_eq!(r.counter(counters::ECALLS), 0);
        assert_eq!(r.gauge_series("g"), Vec::<u64>::new());
        assert_eq!(r.histogram("h"), None);
        assert!(r.trace_events().is_empty());
        assert_eq!(r.snapshot_json(), EMPTY_SNAPSHOT);
        assert_eq!(
            r.export_chrome_trace(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
        assert_eq!(r.export_prometheus(), "");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn enabled_without_timeline_drops_trace_events() {
        let r = Recorder::enabled();
        r.trace_begin("x", &[]);
        r.trace_instant("y", &[]);
        assert!(r.is_enabled());
        assert!(!r.trace_enabled());
        assert!(r.trace_events().is_empty());
    }

    #[test]
    fn spans_accumulate_and_count_entries() {
        let r = Recorder::enabled();
        r.record_span("infer.layer[1].ecall", cost(10, 20, 30, 40, -5));
        r.record_span("infer.layer[1].ecall", cost(1, 2, 3, 4, 5));
        let s = r.span("infer.layer[1].ecall").expect("span recorded");
        assert_eq!(s.entries, 2);
        assert_eq!(s.cost.real_ns, 11);
        assert_eq!(s.cost.transition_ns, 22);
        assert_eq!(s.cost.copy_ns, 33);
        assert_eq!(s.cost.paging_ns, 44);
        assert_eq!(s.cost.jitter_ns, 0);
    }

    #[test]
    fn zero_attempts_count_entries_without_cost() {
        let r = Recorder::enabled();
        r.record_zero_attempt("recovery.retry");
        r.record_zero_attempt("recovery.retry");
        let s = r.span("recovery.retry").expect("span recorded");
        assert_eq!(s.entries, 2);
        assert_eq!(s.cost, SpanCost::default());
    }

    #[test]
    fn counters_saturate() {
        let r = Recorder::enabled();
        r.incr("c", u64::MAX - 1);
        r.incr("c", 5);
        assert_eq!(r.counter("c"), u64::MAX);
    }

    #[test]
    fn gauges_keep_trajectory_order() {
        let r = Recorder::enabled();
        r.gauge("noise.budget.layer[1].pre", 37);
        r.gauge("noise.budget.layer[1].pre", 12);
        r.gauge("noise.budget.layer[1].pre", 36);
        assert_eq!(
            r.gauge_series("noise.budget.layer[1].pre"),
            vec![37, 12, 36]
        );
    }

    #[test]
    fn histograms_observe_and_expose_percentiles() {
        let r = Recorder::enabled();
        for v in [1u64, 2, 1000, 1000, 1 << 30] {
            r.observe("ecall.bytes", v);
        }
        let h = r.histogram("ecall.bytes").expect("observed");
        assert_eq!(h.count(), 5);
        assert!(h.percentile(50) <= h.percentile(95));
        assert!(h.percentile(95) <= h.percentile(99));
    }

    #[test]
    fn span_cost_arithmetic_saturates() {
        let near = SpanCost {
            real_ns: u64::MAX - 1,
            slowdown_ns: u64::MAX - 1,
            transition_ns: u64::MAX - 1,
            copy_ns: u64::MAX - 1,
            paging_ns: u64::MAX - 1,
            jitter_ns: i64::MAX - 1,
        };
        let sum = near.saturating_add(near);
        assert_eq!(sum.transition_ns, u64::MAX);
        assert_eq!(sum.jitter_ns, i64::MAX);
        assert_eq!(sum.total_ns(), u64::MAX);
        assert_eq!(near.model_ns(), u64::MAX);
        let negative = SpanCost {
            jitter_ns: -10,
            ..SpanCost::default()
        };
        assert_eq!(negative.total_ns(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_insertion_order_independent() {
        let a = Recorder::enabled();
        a.record_span("b.span", cost(9, 1, 2, 3, 4));
        a.record_span("a.span", cost(9, 4, 5, 6, -4));
        a.incr("z.counter", 1);
        a.incr("a.counter", 2);
        a.gauge("g.series", 7);
        a.gauge("g.series", 8);
        a.observe("h.values", 3);

        let b = Recorder::enabled();
        b.incr("a.counter", 2);
        b.incr("z.counter", 1);
        b.observe("h.values", 3);
        b.gauge("g.series", 7);
        b.gauge("g.series", 8);
        b.record_span("a.span", cost(1234, 4, 5, 6, 99));
        b.record_span("b.span", cost(0, 1, 2, 3, -7));

        // Same deterministic terms, wildly different wall terms: identical bytes.
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        assert_eq!(
            a.snapshot_json(),
            "{\"counters\":{\"a.counter\":2,\"z.counter\":1},\
             \"gauges\":{\"g.series\":[7,8]},\
             \"hists\":{\"h.values\":{\"buckets\":[[2,1]],\"count\":1,\"p50\":3,\"p95\":3,\"p99\":3,\"sum\":3}},\
             \"spans\":{\
             \"a.span\":{\"copy_ns\":5,\"entries\":1,\"paging_ns\":6,\"transition_ns\":4},\
             \"b.span\":{\"copy_ns\":2,\"entries\":1,\"paging_ns\":3,\"transition_ns\":1}}}"
        );
    }

    #[test]
    fn timeline_records_ordered_events_on_the_trace_clock() {
        let r = Recorder::with_timeline();
        assert!(r.trace_enabled());
        r.trace_begin("infer.layer[1].ecall", &[("layer", "1".to_owned())]);
        r.trace_instant("epc.load", &[]);
        r.trace_advance(10_000);
        r.trace_end("infer.layer[1].ecall");
        let events = r.trace_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, TracePhase::Begin);
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[1].phase, TracePhase::Instant);
        assert_eq!(events[1].ts_ns, 1);
        assert_eq!(events[2].phase, TracePhase::End);
        assert_eq!(events[2].ts_ns, 10_002);
        assert_eq!(r.trace_dropped(), 0);
        // Timestamps strictly increase.
        assert!(events.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }

    #[test]
    fn exporters_are_deterministic_for_equal_state() {
        let build = || {
            let r = Recorder::with_timeline();
            r.trace_begin("session.request", &[("trace_id", "req-7-0".to_owned())]);
            r.trace_advance(500);
            r.trace_end("session.request");
            r.incr(counters::ECALLS, 3);
            r.record_span("ecall.x", cost(9, 10, 20, 30, 1));
            r.gauge("noise.budget.layer[3].pre", 14);
            r.observe("recovery.depth", 0);
            r
        };
        let (a, b) = (build(), build());
        assert_eq!(a.export_chrome_trace(), b.export_chrome_trace());
        assert_eq!(a.export_prometheus(), b.export_prometheus());
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        let prom = a.export_prometheus();
        assert!(prom.contains("hesgx_counter{name=\"ecall.calls\"} 3\n"));
        assert!(prom.contains("hesgx_span_model_ns{span=\"ecall.x\"} 60\n"));
        assert!(prom.contains("hesgx_gauge{name=\"noise.budget.layer[3].pre\"} 14\n"));
        assert!(prom.contains("hesgx_hist_count{name=\"recovery.depth\"} 1\n"));
    }

    #[test]
    fn recorder_survives_a_poisoned_mutex() {
        // Regression test: a panic while holding the state mutex used to be
        // able to poison it; every later recording call must keep working
        // instead of turning into a second panic.
        let r = Recorder::enabled();
        r.incr("before", 1);
        let poisoner = r.clone();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner
                .inner
                .as_ref()
                .expect("enabled recorder has state")
                .lock()
                .unwrap();
            panic!("poison the metrics mutex");
        }));
        assert!(panicked.is_err(), "the panic must have fired");
        r.incr("after", 1);
        r.record_span("s", SpanCost::default());
        r.gauge("g", 2);
        r.observe("h", 3);
        assert_eq!(r.counter("before"), 1);
        assert_eq!(r.counter("after"), 1);
        assert_eq!(r.span("s").map(|s| s.entries), Some(1));
        assert!(r.snapshot_json().contains("\"after\":1"));
        assert!(!r.export_prometheus().is_empty());
    }

    #[test]
    fn prefix_queries_and_sums() {
        let r = Recorder::enabled();
        r.record_span("infer.layer[0].he", cost(5, 0, 0, 0, 0));
        r.record_span("infer.layer[1].ecall", cost(1, 10, 20, 30, 2));
        r.record_span("infer.layer[2].ecall", cost(2, 100, 200, 300, -2));
        r.record_span("session.provision", cost(3, 7, 7, 7, 7));
        let ecalls: Vec<_> = r
            .spans_with_prefix("infer.")
            .into_iter()
            .filter(|(k, _)| k.ends_with(".ecall"))
            .collect();
        assert_eq!(ecalls.len(), 2);
        let sum = r.sum_spans("infer.");
        assert_eq!(sum.transition_ns, 110);
        assert_eq!(sum.copy_ns, 220);
        assert_eq!(sum.paging_ns, 330);
        assert_eq!(sum.real_ns, 8);
        assert_eq!(sum.jitter_ns, 0);
    }

    #[test]
    fn reset_clears_but_stays_enabled() {
        let r = Recorder::with_timeline();
        r.record_span("s", cost(1, 1, 1, 1, 1));
        r.incr("c", 1);
        r.gauge("g", 1);
        r.observe("h", 1);
        r.trace_begin("t", &[]);
        r.reset();
        assert!(r.is_enabled());
        assert!(r.trace_enabled(), "reset keeps the timeline mode");
        assert_eq!(r.span("s"), None);
        assert_eq!(r.counter("c"), 0);
        assert!(r.gauge_series("g").is_empty());
        assert_eq!(r.histogram("h"), None);
        assert!(r.trace_events().is_empty());
        assert_eq!(r.snapshot_json(), EMPTY_SNAPSHOT);
        // The trace clock restarted at zero.
        r.trace_begin("t2", &[]);
        assert_eq!(r.trace_events()[0].ts_ns, 0);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::enabled();
        let clone = r.clone();
        clone.incr("shared", 3);
        assert_eq!(r.counter("shared"), 3);
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\n"), "\"x\\n\"");
    }
}
