//! `hesgx-obs` — deterministic, dependency-free metrics and tracing.
//!
//! The workspace charges every enclave boundary crossing through a *virtual
//! clock* ([`hesgx-tee`]'s `CostBreakdown`), which is what makes the paper's
//! Fig. 8 decomposition reproducible. This crate makes those charges — and
//! the recovery / paging / parallelism machinery around them — *auditable*:
//! a [`Recorder`] collects hierarchical spans and counters, and renders a
//! **byte-stable** JSON snapshot so the same seed produces the same metrics
//! file on every run and at every thread-pool size.
//!
//! # Span taxonomy
//!
//! | span | recorded by | cost carried |
//! |------|-------------|--------------|
//! | `session.provision` | `hesgx-core` pipeline | key ceremony + sealing |
//! | `infer.layer[i].he` | `hesgx-core` pipeline | wall time only (outside) |
//! | `infer.layer[i].ecall` | `hesgx-core` pipeline | full virtual-clock terms |
//! | `ecall.<name>` | `hesgx-tee` enclave | full virtual-clock terms |
//! | `recovery.retry` | `hesgx-core` recovery | per-attempt cost (zero-cost attempts included) |
//! | `epc.load` / `epc.evict` | `hesgx-tee` EPC | count only (ns live in the owning ecall's `paging_ns`) |
//!
//! # Determinism rules
//!
//! A [`SpanCost`] carries all six virtual-clock terms, but only the *modeled*
//! terms — `transition_ns`, `copy_ns`, `paging_ns` — plus entry counts and
//! counters are encoded into [`Recorder::snapshot_json`]. The remaining
//! terms (`real_ns`, `slowdown_ns`, `jitter_ns`) derive from wall-clock
//! measurements and are therefore machine- and run-dependent; they stay
//! available in memory (for the ns-for-ns reconciliation against
//! `total_enclave_cost`) but never reach the snapshot file. Snapshot maps
//! are `BTreeMap`s, so key order is sorted and the encoding is byte-stable.
//!
//! # Zero cost when off
//!
//! The default [`Recorder`] is disabled: it holds no allocation and every
//! recording method is a single `Option` check. Hot paths thread it by value
//! (it is `Clone`) and pay nothing unless observability was requested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Canonical counter names, so call sites and reports agree on spelling.
pub mod counters {
    /// ECALLs executed (one per enclave boundary round trip).
    pub const ECALLS: &str = "ecall.calls";
    /// World-switch transitions charged (2 per ECALL + 2 per nested OCALL).
    pub const ECALL_TRANSITIONS: &str = "ecall.transitions";
    /// Bytes marshalled across the boundary (inputs + outputs).
    pub const BYTES_MARSHALLED: &str = "ecall.bytes_marshalled";
    /// EPC page faults (demand loads of non-resident pages).
    pub const EPC_PAGE_FAULTS: &str = "epc.page_faults";
    /// EPC page evictions (capacity pressure).
    pub const EPC_EVICTIONS: &str = "epc.evictions";
    /// EPC resident-page hits.
    pub const EPC_HITS: &str = "epc.hits";
    /// Attempts started under `retry_with_cost` (first tries included).
    pub const RECOVERY_ATTEMPTS: &str = "recovery.attempts";
    /// Retries spent (attempts beyond the first).
    pub const RECOVERY_RETRIES: &str = "recovery.retries";
    /// Session re-provisions after sealed-state loss.
    pub const REPROVISIONS: &str = "recovery.reprovisions";
    /// Requests served exactly (hybrid path).
    pub const SERVED_EXACT: &str = "served.exact";
    /// Requests served degraded (pure-HE fallback).
    pub const SERVED_DEGRADED: &str = "served.degraded";
    /// Faults the chaos injector actually delivered.
    pub const FAULTS_INJECTED: &str = "faults.injected";
    /// Work items submitted to the parallel executor.
    pub const PAR_TASKS: &str = "par.tasks";
    /// Attestation quote verifications performed.
    pub const ATTESTATION_VERIFIES: &str = "attestation.verifies";
}

/// Virtual-clock cost attached to a span entry.
///
/// Mirrors the six terms of `hesgx-tee`'s `CostBreakdown` without depending
/// on it (this crate sits below the rest of the workspace). All arithmetic
/// saturates — metrics must never panic the pipeline they observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCost {
    /// Measured wall/CPU nanoseconds (machine-dependent; excluded from snapshots).
    pub real_ns: u64,
    /// In-enclave slowdown term (derived from `real_ns`; excluded from snapshots).
    pub slowdown_ns: u64,
    /// Modeled world-switch transition nanoseconds (deterministic).
    pub transition_ns: u64,
    /// Modeled marshalling-copy nanoseconds (deterministic).
    pub copy_ns: u64,
    /// Modeled EPC paging nanoseconds (deterministic).
    pub paging_ns: u64,
    /// Signed jitter term (derived from `real_ns`; excluded from snapshots).
    pub jitter_ns: i64,
}

impl SpanCost {
    /// Component-wise saturating sum.
    #[must_use]
    pub fn saturating_add(self, other: Self) -> Self {
        Self {
            real_ns: self.real_ns.saturating_add(other.real_ns),
            slowdown_ns: self.slowdown_ns.saturating_add(other.slowdown_ns),
            transition_ns: self.transition_ns.saturating_add(other.transition_ns),
            copy_ns: self.copy_ns.saturating_add(other.copy_ns),
            paging_ns: self.paging_ns.saturating_add(other.paging_ns),
            jitter_ns: self.jitter_ns.saturating_add(other.jitter_ns),
        }
    }

    /// All six terms combined (saturating; jitter clamps at zero).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.real_ns
            .saturating_add(self.slowdown_ns)
            .saturating_add(self.transition_ns)
            .saturating_add(self.copy_ns)
            .saturating_add(self.paging_ns)
            .saturating_add_signed(self.jitter_ns)
    }

    /// The deterministic (modeled) terms only: transitions + copies + paging.
    /// This is what the byte-stable snapshot encodes.
    #[must_use]
    pub fn model_ns(&self) -> u64 {
        self.transition_ns
            .saturating_add(self.copy_ns)
            .saturating_add(self.paging_ns)
    }
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of entries recorded under this path.
    pub entries: u64,
    /// Saturating sum of every entry's cost.
    pub cost: SpanCost,
}

#[derive(Default)]
struct State {
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
}

/// A shared handle onto a metrics sink. Cheap to clone; `Default` is the
/// disabled recorder, whose every method is a no-op behind one `Option`
/// check.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<State>>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder (same as `Recorder::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder with empty state.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(State::default()))),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, State>> {
        // A poisoned metrics mutex must never take the pipeline down with
        // it; the state is plain counters, so the data stays usable.
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Records one entry under `path`, accumulating `cost`.
    pub fn record_span(&self, path: &str, cost: SpanCost) {
        if let Some(mut state) = self.lock() {
            let stats = state.spans.entry(path.to_owned()).or_default();
            stats.entries = stats.entries.saturating_add(1);
            stats.cost = stats.cost.saturating_add(cost);
        }
    }

    /// Records an entry under `path` that crossed no boundary and was
    /// charged nothing — e.g. a retry attempt dropped before its ECALL.
    /// Keeps entry counts reconcilable with fault reports even when the
    /// cost books legitimately show zero.
    pub fn record_zero_attempt(&self, path: &str) {
        self.record_span(path, SpanCost::default());
    }

    /// Adds `by` to the named counter (saturating).
    pub fn incr(&self, counter: &str, by: u64) {
        if let Some(mut state) = self.lock() {
            let slot = state.counters.entry(counter.to_owned()).or_default();
            *slot = slot.saturating_add(by);
        }
    }

    /// Current statistics of one span path, if any entries were recorded.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<SpanStats> {
        self.lock().and_then(|state| state.spans.get(path).copied())
    }

    /// Current value of a counter (0 when absent or disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock()
            .and_then(|state| state.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// All spans whose path starts with `prefix`, in sorted order.
    #[must_use]
    pub fn spans_with_prefix(&self, prefix: &str) -> Vec<(String, SpanStats)> {
        match self.lock() {
            Some(state) => state
                .spans
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Saturating sum of the full (six-term) costs of every span matching
    /// `prefix` — the in-memory side of the reconciliation invariant.
    #[must_use]
    pub fn sum_spans(&self, prefix: &str) -> SpanCost {
        self.spans_with_prefix(prefix)
            .into_iter()
            .fold(SpanCost::default(), |acc, (_, s)| {
                acc.saturating_add(s.cost)
            })
    }

    /// Clears all spans and counters (the handle stays enabled).
    pub fn reset(&self) {
        if let Some(mut state) = self.lock() {
            state.spans.clear();
            state.counters.clear();
        }
    }

    /// Byte-stable JSON snapshot: sorted keys, deterministic terms only
    /// (`transition_ns`, `copy_ns`, `paging_ns`, entry counts, counters).
    /// Wall-derived terms never reach the file — see the crate docs.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        if let Some(state) = self.lock() {
            let mut first = true;
            for (name, value) in &state.counters {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{}:{value}", json_string(name)));
            }
            out.push_str("},\"spans\":{");
            let mut first = true;
            for (path, stats) in &state.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{}:{{\"copy_ns\":{},\"entries\":{},\"paging_ns\":{},\"transition_ns\":{}}}",
                    json_string(path),
                    stats.cost.copy_ns,
                    stats.entries,
                    stats.cost.paging_ns,
                    stats.cost.transition_ns
                ));
            }
        } else {
            out.push_str("},\"spans\":{");
        }
        out.push_str("}}");
        out
    }
}

/// Minimal JSON string encoding (span paths and counter names are ASCII
/// identifiers, but quoting defensively costs nothing).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(real: u64, transition: u64, copy: u64, paging: u64, jitter: i64) -> SpanCost {
        SpanCost {
            real_ns: real,
            slowdown_ns: 0,
            transition_ns: transition,
            copy_ns: copy,
            paging_ns: paging,
            jitter_ns: jitter,
        }
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        r.record_span("a", cost(1, 2, 3, 4, 5));
        r.incr(counters::ECALLS, 7);
        assert!(!r.is_enabled());
        assert_eq!(r.span("a"), None);
        assert_eq!(r.counter(counters::ECALLS), 0);
        assert_eq!(r.snapshot_json(), "{\"counters\":{},\"spans\":{}}");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn spans_accumulate_and_count_entries() {
        let r = Recorder::enabled();
        r.record_span("infer.layer[1].ecall", cost(10, 20, 30, 40, -5));
        r.record_span("infer.layer[1].ecall", cost(1, 2, 3, 4, 5));
        let s = r.span("infer.layer[1].ecall").expect("span recorded");
        assert_eq!(s.entries, 2);
        assert_eq!(s.cost.real_ns, 11);
        assert_eq!(s.cost.transition_ns, 22);
        assert_eq!(s.cost.copy_ns, 33);
        assert_eq!(s.cost.paging_ns, 44);
        assert_eq!(s.cost.jitter_ns, 0);
    }

    #[test]
    fn zero_attempts_count_entries_without_cost() {
        let r = Recorder::enabled();
        r.record_zero_attempt("recovery.retry");
        r.record_zero_attempt("recovery.retry");
        let s = r.span("recovery.retry").expect("span recorded");
        assert_eq!(s.entries, 2);
        assert_eq!(s.cost, SpanCost::default());
    }

    #[test]
    fn counters_saturate() {
        let r = Recorder::enabled();
        r.incr("c", u64::MAX - 1);
        r.incr("c", 5);
        assert_eq!(r.counter("c"), u64::MAX);
    }

    #[test]
    fn span_cost_arithmetic_saturates() {
        let near = SpanCost {
            real_ns: u64::MAX - 1,
            slowdown_ns: u64::MAX - 1,
            transition_ns: u64::MAX - 1,
            copy_ns: u64::MAX - 1,
            paging_ns: u64::MAX - 1,
            jitter_ns: i64::MAX - 1,
        };
        let sum = near.saturating_add(near);
        assert_eq!(sum.transition_ns, u64::MAX);
        assert_eq!(sum.jitter_ns, i64::MAX);
        assert_eq!(sum.total_ns(), u64::MAX);
        assert_eq!(near.model_ns(), u64::MAX);
        let negative = SpanCost {
            jitter_ns: -10,
            ..SpanCost::default()
        };
        assert_eq!(negative.total_ns(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_insertion_order_independent() {
        let a = Recorder::enabled();
        a.record_span("b.span", cost(9, 1, 2, 3, 4));
        a.record_span("a.span", cost(9, 4, 5, 6, -4));
        a.incr("z.counter", 1);
        a.incr("a.counter", 2);

        let b = Recorder::enabled();
        b.incr("a.counter", 2);
        b.incr("z.counter", 1);
        b.record_span("a.span", cost(1234, 4, 5, 6, 99));
        b.record_span("b.span", cost(0, 1, 2, 3, -7));

        // Same deterministic terms, wildly different wall terms: identical bytes.
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        assert_eq!(
            a.snapshot_json(),
            "{\"counters\":{\"a.counter\":2,\"z.counter\":1},\"spans\":{\
             \"a.span\":{\"copy_ns\":5,\"entries\":1,\"paging_ns\":6,\"transition_ns\":4},\
             \"b.span\":{\"copy_ns\":2,\"entries\":1,\"paging_ns\":3,\"transition_ns\":1}}}"
        );
    }

    #[test]
    fn prefix_queries_and_sums() {
        let r = Recorder::enabled();
        r.record_span("infer.layer[0].he", cost(5, 0, 0, 0, 0));
        r.record_span("infer.layer[1].ecall", cost(1, 10, 20, 30, 2));
        r.record_span("infer.layer[2].ecall", cost(2, 100, 200, 300, -2));
        r.record_span("session.provision", cost(3, 7, 7, 7, 7));
        let ecalls: Vec<_> = r
            .spans_with_prefix("infer.")
            .into_iter()
            .filter(|(k, _)| k.ends_with(".ecall"))
            .collect();
        assert_eq!(ecalls.len(), 2);
        let sum = r.sum_spans("infer.");
        assert_eq!(sum.transition_ns, 110);
        assert_eq!(sum.copy_ns, 220);
        assert_eq!(sum.paging_ns, 330);
        assert_eq!(sum.real_ns, 8);
        assert_eq!(sum.jitter_ns, 0);
    }

    #[test]
    fn reset_clears_but_stays_enabled() {
        let r = Recorder::enabled();
        r.record_span("s", cost(1, 1, 1, 1, 1));
        r.incr("c", 1);
        r.reset();
        assert!(r.is_enabled());
        assert_eq!(r.span("s"), None);
        assert_eq!(r.counter("c"), 0);
        assert_eq!(r.snapshot_json(), "{\"counters\":{},\"spans\":{}}");
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::enabled();
        let clone = r.clone();
        clone.incr("shared", 3);
        assert_eq!(r.counter("shared"), 3);
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\n"), "\"x\\n\"");
    }
}
