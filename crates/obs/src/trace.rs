//! Per-request trace timelines on the *virtual trace clock*.
//!
//! A timeline-enabled [`crate::Recorder`] keeps an ordered stream of
//! begin/end/instant events. Timestamps come from a dedicated monotonic
//! counter (`vnow`) that advances by one logical nanosecond per recorded
//! event plus the *modeled* virtual-clock nanoseconds the instrumented code
//! reports via [`crate::Recorder::trace_advance`]. Wall-clock time never
//! touches a timestamp, so the same seed yields a byte-identical timeline
//! at every worker-pool size — the timeline is an execution transcript, not
//! a measurement.
//!
//! Events are only ever recorded from serial contexts (the session request
//! path, pipeline stages, the ECALL dispatcher, EPC touches inside an ECALL
//! body, the retry loop); worker threads touch counters only. That is what
//! makes the event *order* deterministic, not just the aggregate totals.

/// The Chrome trace-event phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Opens a duration slice (`ph: "B"`).
    Begin,
    /// Closes the innermost open slice (`ph: "E"`).
    End,
    /// A zero-width marker (`ph: "i"`).
    Instant,
}

/// One recorded timeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Event name (span-taxonomy style, e.g. `ecall.ecall_activation`).
    pub name: String,
    /// Virtual trace-clock timestamp in logical nanoseconds.
    pub ts_ns: u64,
    /// Key/value annotations (deterministic content only).
    pub args: Vec<(String, String)>,
}

/// Hard cap on stored events: beyond it the timeline stops growing and
/// counts drops instead — observability must never balloon a long-running
/// session's memory.
pub(crate) const MAX_TRACE_EVENTS: usize = 1 << 20;

/// Timeline storage inside the recorder state.
#[derive(Debug, Default)]
pub(crate) struct TraceState {
    /// The virtual trace clock, in logical nanoseconds.
    pub vnow: u64,
    /// Recorded events in order.
    pub events: Vec<TraceEvent>,
    /// Events discarded after [`MAX_TRACE_EVENTS`] was reached.
    pub dropped: u64,
}

impl TraceState {
    /// Records one event at the current clock, then ticks the clock by one
    /// logical nanosecond so consecutive events carry distinct, strictly
    /// ordered timestamps. The tick happens even for dropped events, so a
    /// capped timeline still advances deterministically.
    pub fn push(&mut self, phase: TracePhase, name: &str, args: &[(&str, String)]) {
        if self.events.len() >= MAX_TRACE_EVENTS {
            self.dropped = self.dropped.saturating_add(1);
        } else {
            self.events.push(TraceEvent {
                phase,
                name: name.to_owned(),
                ts_ns: self.vnow,
                args: args
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.clone()))
                    .collect(),
            });
        }
        self.vnow = self.vnow.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_ticks_the_clock_and_orders_events() {
        let mut t = TraceState::default();
        t.push(TracePhase::Begin, "a", &[]);
        t.vnow = t.vnow.saturating_add(100);
        t.push(TracePhase::End, "a", &[]);
        assert_eq!(t.events[0].ts_ns, 0);
        assert_eq!(t.events[1].ts_ns, 101);
        assert!(t.events[0].ts_ns < t.events[1].ts_ns);
    }

    #[test]
    fn args_are_copied_in_order() {
        let mut t = TraceState::default();
        t.push(
            TracePhase::Instant,
            "x",
            &[("k", "v".to_owned()), ("n", "3".to_owned())],
        );
        assert_eq!(
            t.events[0].args,
            vec![
                ("k".to_owned(), "v".to_owned()),
                ("n".to_owned(), "3".to_owned())
            ]
        );
    }
}
