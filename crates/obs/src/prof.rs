//! Wall-clock profiling: stack-attributed hotspot profiles that coexist
//! with the deterministic tracing layer without ever contaminating it.
//!
//! The [`crate::Recorder`] answers "what did the *virtual clock* charge" —
//! a pure function of `(inputs, seed, config)`. This module answers the
//! question the virtual clock cannot: **where do real nanoseconds go?** A
//! [`Profiler`] is a clonable handle (zero-cost when disabled, like
//! `Recorder`) that scoped guards feed into a call-path tree: per node the
//! call count, total wall nanoseconds, and bytes attributed by the code
//! under profile.
//!
//! # Ambient installation
//!
//! Hot paths (BFV NTT kernels, henn layer ops) sit far below the layers
//! that own handles, so the profiler is *installed* per thread rather than
//! threaded through every signature: [`Profiler::install`] makes a handle
//! the thread's current profiler, and the free function [`span`] opens a
//! scope against whatever is installed — a single thread-local read and
//! branch when nothing is (the disabled fast path). Parallel executors
//! re-root their workers with [`Profiler::worker_scope`], so work-stolen
//! kernel time attributes to `par.worker[w]` per-worker subtrees instead
//! of racing the caller's stack.
//!
//! # The determinism contract
//!
//! Wall time NEVER reaches a replay-stable artifact. The profiler exports
//! two faces:
//!
//! * **wall face** — [`Profiler::export_collapsed`] (flamegraph collapsed
//!   stacks, loadable in speedscope/inferno), [`Profiler::hotspots`] /
//!   [`Profiler::hotspot_table`] (sorted self-time table), and
//!   [`Profiler::drift_report`] (measured-vs-modeled join). All carry
//!   nanoseconds; none may be byte-diffed across runs.
//! * **deterministic face** — [`Profiler::deterministic_json`]: tree
//!   shape, call counts, and bytes only. Per-worker roots are merged into
//!   a single `par.worker` node (work stealing makes the per-worker split
//!   scheduling-dependent, but the *sum* over workers is a pure function
//!   of the submitted work), so the encoding is byte-identical across runs
//!   and across HE pool sizes.
//!
//! This file is the one sanctioned consumer of `std::time::Instant`
//! outside `hesgx_tee::wall` and the bench crate: the `wall-clock` lint
//! rule carries a scoped exemption for `crates/obs/src/prof.rs` (this
//! crate sits below `hesgx-tee`, so it cannot route through the
//! `WallTimer` shim without a dependency cycle; the exemption is the
//! same audit boundary, one file lower).

use crate::{json_string, Recorder};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One node of the call-path tree.
#[derive(Debug, Clone)]
struct Node {
    /// Frame name (one path segment; sanitized — no `;` or spaces).
    name: String,
    /// Children, ordered by name so every walk is deterministic.
    children: BTreeMap<String, usize>,
    /// Completed scope entries.
    calls: u64,
    /// Total wall nanoseconds across entries (children included).
    wall_ns: u64,
    /// Bytes attributed via [`add_bytes`] while this frame was current.
    bytes: u64,
}

/// The shared call-path tree. Node 0 is the synthetic root.
#[derive(Debug)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new() -> Self {
        Tree {
            nodes: vec![Node {
                name: String::new(),
                children: BTreeMap::new(),
                calls: 0,
                wall_ns: 0,
                bytes: 0,
            }],
        }
    }

    /// Finds or creates the child of `parent` named `name` (sanitized).
    fn child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent].children.get(name) {
            return idx;
        }
        let clean = sanitize(name);
        if let Some(&idx) = self.nodes[parent].children.get(&clean) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: clean.clone(),
            children: BTreeMap::new(),
            calls: 0,
            wall_ns: 0,
            bytes: 0,
        });
        self.nodes[parent].children.insert(clean, idx);
        idx
    }

    /// Wall nanoseconds directly attributable to `idx` (total minus the
    /// children's totals, floored at zero).
    fn self_ns(&self, idx: usize) -> u64 {
        let child_total: u64 = self.nodes[idx]
            .children
            .values()
            .map(|&c| self.nodes[c].wall_ns)
            .fold(0u64, u64::saturating_add);
        self.nodes[idx].wall_ns.saturating_sub(child_total)
    }

    /// Depth-first walk in child-name order, calling `f(path, idx)` for
    /// every node below the root. Paths join frames with `;` (the
    /// collapsed-stack separator).
    fn walk<F: FnMut(&str, usize)>(&self, f: &mut F) {
        let mut stack: Vec<(usize, String)> = self.nodes[0]
            .children
            .values()
            .rev()
            .map(|&c| (c, self.nodes[c].name.clone()))
            .collect();
        while let Some((idx, path)) = stack.pop() {
            f(&path, idx);
            for &c in self.nodes[idx].children.values().rev() {
                stack.push((c, format!("{path};{}", self.nodes[c].name)));
            }
        }
    }
}

/// Frame names must survive the collapsed-stack format, where `;` splits
/// frames and the last space splits the value off the path.
fn sanitize(name: &str) -> String {
    name.replace([';', ' '], "_")
}

#[derive(Debug)]
struct Shared {
    tree: Mutex<Tree>,
}

impl Shared {
    /// Poison-safe lock: a panicked scope must not kill profiling.
    fn lock(&self) -> MutexGuard<'_, Tree> {
        self.tree.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Per-thread profiling context: the installed handle plus the open-scope
/// stack whose top is the attribution target for new spans and bytes.
struct ThreadCtx {
    shared: Arc<Shared>,
    stack: Vec<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// A clonable wall-clock profiler handle.
///
/// Disabled by default and zero-cost in that state: every operation is a
/// single `Option` check. See the module docs for the two export faces and
/// the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Shared>>,
}

impl Profiler {
    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// An enabled handle with an empty call-path tree.
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Arc::new(Shared {
                tree: Mutex::new(Tree::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs this profiler as the current thread's ambient profiler and
    /// returns a guard that restores the previous one on drop. A disabled
    /// handle installs nothing (and does *not* clear an already-installed
    /// ambient profiler — layers compose instead of fighting).
    #[must_use = "dropping the guard immediately uninstalls the profiler"]
    pub fn install(&self) -> InstallGuard {
        match &self.inner {
            None => InstallGuard {
                prev: None,
                swapped: false,
            },
            Some(shared) => {
                let prev = CURRENT.replace(Some(ThreadCtx {
                    shared: Arc::clone(shared),
                    stack: vec![0],
                }));
                InstallGuard {
                    prev,
                    swapped: true,
                }
            }
        }
    }

    /// The current thread's ambient profiler (disabled if none installed).
    /// Parallel executors capture this on the submitting thread and re-root
    /// their workers with [`Profiler::worker_scope`].
    pub fn current() -> Profiler {
        CURRENT.with_borrow(|cur| Profiler {
            inner: cur.as_ref().map(|ctx| Arc::clone(&ctx.shared)),
        })
    }

    /// Re-roots the current thread at a fresh `par.worker[w]` top-level
    /// frame until the guard drops, restoring whatever context the thread
    /// had before. Worker roots accumulate wall time (per-worker busy
    /// attribution in the wall face) but never call counts — the
    /// deterministic face merges all workers into one `par.worker` node,
    /// whose children's counts sum identically at every pool size.
    #[must_use = "dropping the guard immediately ends the worker scope"]
    pub fn worker_scope(&self, worker: usize) -> WorkerGuard {
        match &self.inner {
            None => WorkerGuard {
                active: None,
                prev: None,
                swapped: false,
            },
            Some(shared) => {
                let root = shared.lock().child(0, &format!("par.worker[{worker}]"));
                let prev = CURRENT.replace(Some(ThreadCtx {
                    shared: Arc::clone(shared),
                    stack: vec![root],
                }));
                WorkerGuard {
                    active: Some((Arc::clone(shared), root, Instant::now())),
                    prev,
                    swapped: true,
                }
            }
        }
    }

    /// Discards every recorded node, keeping the handle installed-able.
    pub fn reset(&self) {
        if let Some(shared) = &self.inner {
            *shared.lock() = Tree::new();
        }
    }

    /// Collapsed-stack flamegraph text: one `path;to;frame <self_ns>` line
    /// per node with nonzero self time, sorted by path. Loadable in
    /// speedscope or `inferno-flamegraph`. Wall face — never byte-diff it.
    pub fn export_collapsed(&self) -> String {
        let Some(shared) = &self.inner else {
            return String::new();
        };
        let tree = shared.lock();
        let mut lines: Vec<String> = Vec::new();
        tree.walk(&mut |path, idx| {
            let self_ns = tree.self_ns(idx);
            if self_ns > 0 {
                lines.push(format!("{path} {self_ns}"));
            }
        });
        lines.sort_unstable();
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Every profiled call path with its wall statistics, sorted hottest
    /// (largest self time) first, ties by path. Wall face.
    pub fn hotspots(&self) -> Vec<Hotspot> {
        let Some(shared) = &self.inner else {
            return Vec::new();
        };
        let tree = shared.lock();
        let mut out = Vec::new();
        tree.walk(&mut |path, idx| {
            let node = &tree.nodes[idx];
            out.push(Hotspot {
                path: path.to_string(),
                self_ns: tree.self_ns(idx),
                total_ns: node.wall_ns,
                calls: node.calls,
                bytes: node.bytes,
            });
        });
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        out
    }

    /// Renders the top `limit` hotspots as an aligned text table. Wall face.
    pub fn hotspot_table(&self, limit: usize) -> String {
        let hotspots = self.hotspots();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>14} {:>14} {:>10} {:>12}  stack",
            "self (ns)", "total (ns)", "calls", "bytes"
        );
        for h in hotspots.iter().take(limit) {
            let _ = writeln!(
                out,
                "{:>14} {:>14} {:>10} {:>12}  {}",
                h.self_ns, h.total_ns, h.calls, h.bytes, h.path
            );
        }
        out
    }

    /// The replay-stable face: tree shape, call counts, and bytes — no
    /// nanoseconds. `par.worker[w]` roots are merged into one `par.worker`
    /// node before encoding, so the output is byte-identical across runs
    /// and across pool sizes (CI diffs it run-twice).
    pub fn deterministic_json(&self) -> String {
        let mut merged: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        if let Some(shared) = &self.inner {
            let tree = shared.lock();
            tree.walk(&mut |path, idx| {
                let node = &tree.nodes[idx];
                let entry = merged.entry(normalize_path(path)).or_insert((0, 0));
                entry.0 += node.calls;
                entry.1 += node.bytes;
            });
        }
        let mut out = String::from("{\"profile\":[");
        for (i, (path, (calls, bytes))) in merged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"calls\":{calls},\"bytes\":{bytes}}}",
                json_string(path)
            );
        }
        out.push_str("]}");
        out
    }

    /// The full wall-face tree as JSON: per path the calls, bytes, total
    /// and self nanoseconds. Informative and machine-dependent — never
    /// byte-diff it.
    pub fn wall_json(&self) -> String {
        let mut out = String::from("{\"profile_wall\":[");
        if let Some(shared) = &self.inner {
            let tree = shared.lock();
            let mut first = true;
            tree.walk(&mut |path, idx| {
                if !first {
                    out.push(',');
                }
                first = false;
                let node = &tree.nodes[idx];
                let _ = write!(
                    out,
                    "{{\"path\":{},\"calls\":{},\"bytes\":{},\"total_ns\":{},\"self_ns\":{}}}",
                    json_string(path),
                    node.calls,
                    node.bytes,
                    node.wall_ns,
                    tree.self_ns(idx)
                );
            });
        }
        out.push_str("]}");
        out
    }

    /// Sums calls and wall nanoseconds per frame *name* across every path
    /// it appears at — the join key for [`Profiler::drift_report`].
    fn totals_by_name(&self) -> BTreeMap<String, (u64, u64)> {
        let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        if let Some(shared) = &self.inner {
            let tree = shared.lock();
            for node in tree.nodes.iter().skip(1) {
                let entry = totals.entry(node.name.clone()).or_insert((0, 0));
                entry.0 += node.calls;
                entry.1 = entry.1.saturating_add(node.wall_ns);
            }
        }
        totals
    }

    /// Joins measured wall nanoseconds against the modeled virtual-clock
    /// cost, per stage: every recorder span whose name also appears as a
    /// profiled frame becomes a [`DriftEntry`] comparing the profiler's
    /// wall total against the span's `SpanCost::total_ns()`. Systematic
    /// model-vs-reality divergence becomes one diffable number per stage
    /// plus a [`DriftReport::top_ratio_permille`] headline the profile
    /// experiment holds inside a checked-in budget band. Wall face.
    pub fn drift_report(&self, recorder: &Recorder) -> DriftReport {
        let measured = self.totals_by_name();
        let mut entries = Vec::new();
        for (name, stats) in recorder.spans_with_prefix("") {
            let Some(&(calls, wall_ns)) = measured.get(&name) else {
                continue;
            };
            entries.push(DriftEntry {
                stage: name,
                calls,
                measured_ns: wall_ns,
                modeled_ns: stats.cost.total_ns(),
            });
        }
        DriftReport { entries }
    }
}

/// Merges the scheduling-dependent `par.worker[w]` roots into one
/// `par.worker` frame; everything else passes through.
fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for (i, frame) in path.split(';').enumerate() {
        if i > 0 {
            out.push(';');
        }
        if frame.starts_with("par.worker[") && frame.ends_with(']') {
            out.push_str("par.worker");
        } else {
            out.push_str(frame);
        }
    }
    out
}

/// One row of [`Profiler::hotspots`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// Full call path, frames joined by `;`.
    pub path: String,
    /// Wall nanoseconds attributable to this frame alone.
    pub self_ns: u64,
    /// Wall nanoseconds including children.
    pub total_ns: u64,
    /// Completed scope entries.
    pub calls: u64,
    /// Bytes attributed while this frame was current.
    pub bytes: u64,
}

/// One joined stage of a [`DriftReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftEntry {
    /// The stage / span name both layers recorded.
    pub stage: String,
    /// Profiled scope entries for the stage.
    pub calls: u64,
    /// Measured wall nanoseconds (profiler).
    pub measured_ns: u64,
    /// Modeled virtual-clock nanoseconds (`SpanCost::total_ns()`).
    pub modeled_ns: u64,
}

impl DriftEntry {
    /// measured/modeled ratio in permille (0 when the model charged
    /// nothing — flagged, not divided).
    pub fn ratio_permille(&self) -> u64 {
        if self.modeled_ns == 0 {
            return 0;
        }
        ((u128::from(self.measured_ns) * 1000) / u128::from(self.modeled_ns)) as u64
    }
}

/// The measured-vs-modeled join of [`Profiler::drift_report`].
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// Joined stages, recorder span order (sorted by name).
    pub entries: Vec<DriftEntry>,
}

impl DriftReport {
    /// Top-level measured/modeled ratio in permille, over every joined
    /// stage with a nonzero modeled cost. 1000 means the model predicts
    /// wall time exactly; the profile experiment asserts this stays inside
    /// a generous checked-in band so the cost model cannot silently rot.
    pub fn top_ratio_permille(&self) -> u64 {
        let (mut measured, mut modeled) = (0u128, 0u128);
        for e in &self.entries {
            if e.modeled_ns > 0 {
                measured += u128::from(e.measured_ns);
                modeled += u128::from(e.modeled_ns);
            }
        }
        if modeled == 0 {
            return 0;
        }
        ((measured * 1000) / modeled) as u64
    }

    /// Renders the per-stage join as an aligned text table. Wall face.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10} {:>14} {:>14} {:>8}  stage",
            "calls", "measured(ns)", "modeled(ns)", "m/m ‰"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:>10} {:>14} {:>14} {:>8}  {}",
                e.calls,
                e.measured_ns,
                e.modeled_ns,
                e.ratio_permille(),
                e.stage
            );
        }
        let _ = writeln!(
            out,
            "top-level measured/modeled ratio: {} permille",
            self.top_ratio_permille()
        );
        out
    }

    /// JSON encoding of the join (wall face — carries nanoseconds).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"drift\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"calls\":{},\"measured_ns\":{},\"modeled_ns\":{},\"ratio_permille\":{}}}",
                json_string(&e.stage),
                e.calls,
                e.measured_ns,
                e.modeled_ns,
                e.ratio_permille()
            );
        }
        let _ = write!(
            out,
            "],\"top_ratio_permille\":{}}}",
            self.top_ratio_permille()
        );
        out
    }
}

/// Opens a scope named `name` against the current thread's installed
/// profiler; a no-op guard when none is installed. The scope closes (and
/// records its wall time) when the guard drops. Guards nest strictly —
/// drop order is enforced by scope structure at every instrumented site.
#[must_use = "dropping the guard immediately closes the span"]
pub fn span(name: &str) -> SpanGuard {
    CURRENT.with_borrow_mut(|cur| match cur {
        None => SpanGuard { active: None },
        Some(ctx) => {
            let parent = ctx.stack.last().copied().unwrap_or(0);
            let node = ctx.shared.lock().child(parent, name);
            ctx.stack.push(node);
            SpanGuard {
                active: Some((Arc::clone(&ctx.shared), node, Instant::now())),
            }
        }
    })
}

/// [`span`] with a `prefix.name` frame, formatting only when a profiler is
/// installed (the dispatcher hot path pays no allocation when disabled).
#[must_use = "dropping the guard immediately closes the span"]
pub fn span2(prefix: &str, name: &str) -> SpanGuard {
    if CURRENT.with_borrow(Option::is_none) {
        return SpanGuard { active: None };
    }
    span(&format!("{prefix}.{name}"))
}

/// Attributes `bytes` to the innermost open scope on this thread (no-op
/// when no profiler is installed or no scope is open).
pub fn add_bytes(bytes: u64) {
    CURRENT.with_borrow(|cur| {
        if let Some(ctx) = cur {
            if let Some(&node) = ctx.stack.last() {
                let mut tree = ctx.shared.lock();
                tree.nodes[node].bytes = tree.nodes[node].bytes.saturating_add(bytes);
            }
        }
    });
}

/// Scope guard returned by [`span`] / [`span2`].
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Arc<Shared>, usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((shared, node, start)) = self.active.take() else {
            return;
        };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        {
            let mut tree = shared.lock();
            tree.nodes[node].calls += 1;
            tree.nodes[node].wall_ns = tree.nodes[node].wall_ns.saturating_add(elapsed);
        }
        CURRENT.with_borrow_mut(|cur| {
            if let Some(ctx) = cur {
                if Arc::ptr_eq(&ctx.shared, &shared) && ctx.stack.last() == Some(&node) {
                    ctx.stack.pop();
                }
            }
        });
    }
}

/// Guard returned by [`Profiler::install`]; restores the thread's previous
/// ambient profiler on drop.
pub struct InstallGuard {
    prev: Option<ThreadCtx>,
    swapped: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if self.swapped {
            CURRENT.replace(self.prev.take());
        }
    }
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallGuard")
            .field("swapped", &self.swapped)
            .finish()
    }
}

/// Guard returned by [`Profiler::worker_scope`]; accumulates the worker
/// root's busy wall time and restores the previous thread context on drop.
pub struct WorkerGuard {
    active: Option<(Arc<Shared>, usize, Instant)>,
    prev: Option<ThreadCtx>,
    swapped: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if let Some((shared, root, start)) = self.active.take() {
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut tree = shared.lock();
            // Wall time only: worker-root call counts would expose the
            // scheduler (how many workers touched work varies per run),
            // and the deterministic face must not see that.
            tree.nodes[root].wall_ns = tree.nodes[root].wall_ns.saturating_add(elapsed);
        }
        if self.swapped {
            CURRENT.replace(self.prev.take());
        }
    }
}

impl std::fmt::Debug for WorkerGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerGuard")
            .field("swapped", &self.swapped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanCost;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        let _install = p.install();
        {
            let _g = span("never");
            add_bytes(100);
        }
        assert!(!p.is_enabled());
        assert_eq!(p.export_collapsed(), "");
        assert!(p.hotspots().is_empty());
        assert_eq!(p.deterministic_json(), "{\"profile\":[]}");
    }

    #[test]
    fn span_without_install_is_a_no_op() {
        let _g = span("floating");
        add_bytes(7);
        // Nothing to assert against — the point is that this neither
        // panics nor leaks state into a later install.
        let p = Profiler::enabled();
        let _install = p.install();
        drop(span("real"));
        let hot = p.hotspots();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].path, "real");
    }

    #[test]
    fn nested_spans_build_a_path_tree() {
        let p = Profiler::enabled();
        let _install = p.install();
        {
            let _a = span("outer");
            add_bytes(10);
            {
                let _b = span("inner");
                add_bytes(32);
            }
            {
                let _b = span("inner");
            }
        }
        let hot = p.hotspots();
        let by_path = |path: &str| hot.iter().find(|h| h.path == path).expect(path).clone();
        let outer = by_path("outer");
        let inner = by_path("outer;inner");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.bytes, 10);
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.bytes, 32);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }

    #[test]
    fn collapsed_export_is_sorted_and_parseable() {
        let p = Profiler::enabled();
        let _install = p.install();
        {
            let _a = span("b_root");
            let _b = span("leaf");
        }
        drop(span("a_root"));
        let collapsed = p.export_collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert!(!lines.is_empty());
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "collapsed lines must be sorted");
        for line in lines {
            let (path, value) = line.rsplit_once(' ').expect("`path value` shape");
            assert!(!path.is_empty());
            assert!(value.parse::<u64>().is_ok(), "value must be ns: {line}");
        }
    }

    #[test]
    fn frame_names_are_sanitized_for_the_collapsed_format() {
        let p = Profiler::enabled();
        let _install = p.install();
        drop(span("weird name;with[separators]"));
        let hot = p.hotspots();
        assert_eq!(hot[0].path, "weird_name_with[separators]");
    }

    #[test]
    fn worker_roots_merge_deterministically() {
        // Two executions with different scheduling splits of the same four
        // tasks must produce identical deterministic faces.
        let run = |split: &[(usize, usize)]| {
            let p = Profiler::enabled();
            let _install = p.install();
            for &(worker, tasks) in split {
                let _w = p.worker_scope(worker);
                for _ in 0..tasks {
                    let _t = span("kernel");
                    add_bytes(8);
                }
            }
            p.deterministic_json()
        };
        let a = run(&[(0, 1), (1, 3)]);
        let b = run(&[(0, 2), (1, 1), (2, 1)]);
        assert_eq!(
            a, b,
            "scheduling must be invisible in the deterministic face"
        );
        assert!(a.contains("\"path\":\"par.worker;kernel\",\"calls\":4,\"bytes\":32"));
    }

    #[test]
    fn worker_scope_restores_the_callers_stack() {
        let p = Profiler::enabled();
        let _install = p.install();
        let _outer = span("caller");
        {
            let _w = p.worker_scope(0);
            drop(span("task"));
        }
        drop(span("after"));
        let hot = p.hotspots();
        assert!(hot.iter().any(|h| h.path == "par.worker[0];task"));
        assert!(
            hot.iter().any(|h| h.path == "caller;after"),
            "post-scope spans must re-attach to the caller's stack: {hot:?}"
        );
    }

    #[test]
    fn install_guard_restores_the_previous_profiler() {
        let outer = Profiler::enabled();
        let inner = Profiler::enabled();
        let _a = outer.install();
        {
            let _b = inner.install();
            drop(span("inner_span"));
        }
        drop(span("outer_span"));
        assert_eq!(inner.hotspots().len(), 1);
        assert_eq!(inner.hotspots()[0].path, "inner_span");
        assert_eq!(outer.hotspots().len(), 1);
        assert_eq!(outer.hotspots()[0].path, "outer_span");
    }

    #[test]
    fn disabled_install_does_not_clear_the_ambient_profiler() {
        let p = Profiler::enabled();
        let _a = p.install();
        {
            let _b = Profiler::disabled().install();
            drop(span("still_recorded"));
        }
        assert_eq!(p.hotspots()[0].path, "still_recorded");
    }

    #[test]
    fn drift_report_joins_on_stage_names() {
        let p = Profiler::enabled();
        let _install = p.install();
        drop(span("infer.layer[0].he"));
        drop(span("unmodeled.stage"));
        let rec = Recorder::enabled();
        rec.record_span(
            "infer.layer[0].he",
            SpanCost {
                real_ns: 500,
                transition_ns: 100,
                ..SpanCost::default()
            },
        );
        rec.record_span(
            "never.profiled",
            SpanCost {
                real_ns: 9,
                ..SpanCost::default()
            },
        );
        let drift = p.drift_report(&rec);
        assert_eq!(drift.entries.len(), 1, "join is by exact stage name");
        let e = &drift.entries[0];
        assert_eq!(e.stage, "infer.layer[0].he");
        assert_eq!(e.modeled_ns, 600);
        assert_eq!(e.calls, 1);
        let json = drift.to_json();
        assert!(json.contains("\"top_ratio_permille\""));
        assert!(drift.render_table().contains("infer.layer[0].he"));
    }

    #[test]
    fn top_ratio_skips_zero_modeled_stages() {
        let report = DriftReport {
            entries: vec![
                DriftEntry {
                    stage: "a".into(),
                    calls: 1,
                    measured_ns: 500,
                    modeled_ns: 1000,
                },
                DriftEntry {
                    stage: "b".into(),
                    calls: 1,
                    measured_ns: 123_456,
                    modeled_ns: 0,
                },
            ],
        };
        assert_eq!(report.top_ratio_permille(), 500);
        assert_eq!(report.entries[1].ratio_permille(), 0);
    }

    #[test]
    fn reset_clears_the_tree() {
        let p = Profiler::enabled();
        let _install = p.install();
        drop(span("gone"));
        p.reset();
        assert!(p.hotspots().is_empty());
        drop(span("kept"));
        assert_eq!(p.hotspots().len(), 1);
    }

    #[test]
    fn threads_profile_independently_under_one_handle() {
        let p = Profiler::enabled();
        let handle = p.clone();
        let t = std::thread::spawn(move || {
            let _w = handle.worker_scope(7);
            drop(span("thread_kernel"));
        });
        let _install = p.install();
        drop(span("main_kernel"));
        t.join().expect("profiled thread joins");
        let hot = p.hotspots();
        assert!(hot.iter().any(|h| h.path == "main_kernel"));
        assert!(hot.iter().any(|h| h.path == "par.worker[7];thread_kernel"));
    }
}
