//! Deterministic log2-bucket histograms.
//!
//! Values land in power-of-two buckets: bucket 0 holds the value `0`,
//! bucket `i` (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`. Bucket
//! membership is a pure function of the value, so the same observations in
//! any order produce the same histogram — no reservoirs, no sampling, no
//! wall-clock. Percentiles are *bucket-derived*: the reported quantile is
//! the upper bound of the bucket containing the rank, which makes them
//! monotone (p50 ≤ p95 ≤ p99) and bucket-aligned by construction.

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// Bucket index a value lands in: 0 for `0`, else `64 - leading_zeros`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket: 0, then `2^i - 1` (clamped at
/// `u64::MAX` for the last bucket).
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A fixed-shape log2 histogram (count, saturating sum, 65 buckets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation (saturating count and sum).
    pub fn record(&mut self, value: u64) {
        let i = bucket_index(value);
        self.buckets[i] = self.buckets[i].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of every observed value.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw per-bucket counts (index order, length [`BUCKETS`]).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The non-empty buckets as `(index, count)` pairs in index order —
    /// the compact form the snapshot encodes.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// Bucket-derived percentile `p` (0–100): the upper bound of the bucket
    /// holding rank `ceil(count·p/100)` (at least 1). Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = u128::from(p.min(100));
        let rank = (u128::from(self.count) * p).div_ceil(100).max(1);
        let mut cumulative: u128 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += u128::from(n);
            if cumulative >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_edges() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn every_value_fits_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 4096, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} fits a smaller bucket");
            }
        }
    }

    #[test]
    fn percentiles_are_bucket_uppers_and_monotone() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 5000, 5000, 5000, 70000, 70000, 1 << 40] {
            h.record(v);
        }
        let (p50, p95, p99) = (h.percentile(50), h.percentile(95), h.percentile(99));
        assert!(p50 <= p95 && p95 <= p99);
        for p in [p50, p95, p99] {
            assert_eq!(p, bucket_upper(bucket_index(p)), "{p} not bucket-aligned");
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.nonzero_buckets().iter().map(|&(_, n)| n).sum::<u64>(), 10);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn count_and_sum_saturate() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_every_percentile_is_zero() {
        let h = Histogram::default();
        for p in 0..=100u8 {
            assert_eq!(h.percentile(p), 0, "p{p} of an empty histogram");
        }
        // Out-of-range percentiles clamp rather than panic.
        assert_eq!(h.percentile(200), 0);
    }

    #[test]
    fn single_observation_pins_every_percentile_to_its_bucket() {
        for v in [0u64, 1, 2, 1000, 1 << 33, u64::MAX] {
            let mut h = Histogram::default();
            h.record(v);
            let upper = bucket_upper(bucket_index(v));
            for p in [0u8, 1, 50, 95, 99, 100] {
                assert_eq!(h.percentile(p), upper, "p{p} of single observation {v}");
            }
            assert_eq!(h.nonzero_buckets(), vec![(bucket_index(v), 1)]);
        }
    }

    #[test]
    fn u64_max_observations_land_in_bucket_64_and_stay_monotone() {
        let mut h = Histogram::default();
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        h.record(1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(h.bucket_counts()[64], 3);
        let (p50, p95, p99) = (h.percentile(50), h.percentile(95), h.percentile(99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(p95, u64::MAX);
        assert_eq!(p99, u64::MAX);
        assert_eq!(h.percentile(100), u64::MAX);
    }

    #[test]
    fn percentiles_monotone_across_all_p_for_mixed_observations() {
        let mut h = Histogram::default();
        for v in [0u64, 0, 1, 5, 5, 60_000, 1 << 50, u64::MAX] {
            h.record(v);
        }
        let mut prev = 0u64;
        for p in 0..=100u8 {
            let q = h.percentile(p);
            assert!(q >= prev, "percentile dipped at p{p}: {q} < {prev}");
            prev = q;
        }
    }
}
