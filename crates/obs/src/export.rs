//! Byte-stable exporters: Chrome trace-event JSON and Prometheus text.
//!
//! Both renderers iterate sorted maps and the ordered event stream and
//! format every number explicitly, so the same recorder state always yields
//! the same bytes. Only deterministic content is exported: trace timestamps
//! live on the virtual trace clock, span costs are reduced to their modeled
//! terms, and gauges/histograms carry values the pipeline derived from
//! model state — never from the wall clock.

use crate::hist::{bucket_upper, Histogram};
use crate::trace::{TraceEvent, TracePhase};
use crate::{json_string, SpanStats, State};
use std::collections::BTreeMap;

/// Renders the timeline as Chrome trace-event JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper), loadable in Perfetto and
/// `about://tracing`. Timestamps are microseconds with the virtual clock's
/// nanosecond precision kept as three decimals.
pub(crate) fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"args\":{");
        for (j, (key, value)) in event.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(key), json_string(value)));
        }
        let ph = match event.phase {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        };
        out.push_str(&format!(
            "}},\"cat\":\"hesgx\",\"name\":{},\"ph\":\"{ph}\",\"pid\":1",
            json_string(&event.name)
        ));
        if event.phase == TracePhase::Instant {
            // Thread-scoped instant: renders as a tick on the track.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(
            ",\"tid\":1,\"ts\":{}.{:03}}}",
            event.ts_ns / 1000,
            event.ts_ns % 1000
        ));
    }
    out.push_str("]}");
    out
}

/// Renders the aggregate state (counters, spans, gauges, histograms) in
/// Prometheus text exposition format. Dynamic label *values* carry the
/// recorder's names, so metric names stay fixed and need no sanitizing.
pub(crate) fn prometheus(state: &State) -> String {
    let mut out = String::new();
    render_counters(&mut out, &state.counters);
    render_spans(&mut out, &state.spans);
    render_gauges(&mut out, &state.gauges);
    render_hists(&mut out, &state.hists);
    out
}

fn render_counters(out: &mut String, counters: &BTreeMap<String, u64>) {
    if counters.is_empty() {
        return;
    }
    out.push_str("# HELP hesgx_counter Monotonic event counts keyed by counter name.\n");
    out.push_str("# TYPE hesgx_counter counter\n");
    for (name, value) in counters {
        out.push_str(&format!(
            "hesgx_counter{{name=\"{}\"}} {value}\n",
            label_value(name)
        ));
    }
}

fn render_spans(out: &mut String, spans: &BTreeMap<String, SpanStats>) {
    if spans.is_empty() {
        return;
    }
    out.push_str("# HELP hesgx_span_entries Entries recorded under each span path.\n");
    out.push_str("# TYPE hesgx_span_entries counter\n");
    for (path, stats) in spans {
        out.push_str(&format!(
            "hesgx_span_entries{{span=\"{}\"}} {}\n",
            label_value(path),
            stats.entries
        ));
    }
    out.push_str(
        "# HELP hesgx_span_model_ns Modeled virtual-clock nanoseconds per span \
         (transition + copy + paging; wall-derived terms are not exported).\n",
    );
    out.push_str("# TYPE hesgx_span_model_ns counter\n");
    for (path, stats) in spans {
        out.push_str(&format!(
            "hesgx_span_model_ns{{span=\"{}\"}} {}\n",
            label_value(path),
            stats.cost.model_ns()
        ));
    }
}

fn render_gauges(out: &mut String, gauges: &BTreeMap<String, Vec<u64>>) {
    if gauges.is_empty() {
        return;
    }
    out.push_str("# HELP hesgx_gauge Latest recorded value per gauge name.\n");
    out.push_str("# TYPE hesgx_gauge gauge\n");
    for (name, series) in gauges {
        if let Some(last) = series.last() {
            out.push_str(&format!(
                "hesgx_gauge{{name=\"{}\"}} {last}\n",
                label_value(name)
            ));
        }
    }
}

fn render_hists(out: &mut String, hists: &BTreeMap<String, Histogram>) {
    if hists.is_empty() {
        return;
    }
    out.push_str(
        "# HELP hesgx_hist Log2-bucket distributions; le is the inclusive bucket upper bound.\n",
    );
    out.push_str("# TYPE hesgx_hist histogram\n");
    for (name, hist) in hists {
        let name = label_value(name);
        let mut cumulative = 0u64;
        for (index, count) in hist.nonzero_buckets() {
            cumulative = cumulative.saturating_add(count);
            out.push_str(&format!(
                "hesgx_hist_bucket{{name=\"{name}\",le=\"{}\"}} {cumulative}\n",
                bucket_upper(index)
            ));
        }
        out.push_str(&format!(
            "hesgx_hist_bucket{{name=\"{name}\",le=\"+Inf\"}} {}\n",
            hist.count()
        ));
        out.push_str(&format!(
            "hesgx_hist_sum{{name=\"{name}\"}} {}\n",
            hist.sum()
        ));
        out.push_str(&format!(
            "hesgx_hist_count{{name=\"{name}\"}} {}\n",
            hist.count()
        ));
    }
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_renders_all_phases() {
        let events = vec![
            TraceEvent {
                phase: TracePhase::Begin,
                name: "infer.layer[1].ecall".into(),
                ts_ns: 0,
                args: vec![("layer".into(), "1".into())],
            },
            TraceEvent {
                phase: TracePhase::Instant,
                name: "epc.load".into(),
                ts_ns: 1,
                args: vec![],
            },
            TraceEvent {
                phase: TracePhase::End,
                name: "infer.layer[1].ecall".into(),
                ts_ns: 12_345,
                args: vec![],
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"args\":{\"layer\":\"1\"},\"cat\":\"hesgx\",\"name\":\"infer.layer[1].ecall\",\
             \"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0.000}"
        ));
        assert!(json.contains("\"ph\":\"i\",\"pid\":1,\"s\":\"t\",\"tid\":1,\"ts\":0.001"));
        assert!(json.contains("\"ts\":12.345}"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn prometheus_label_values_escape_specials() {
        assert_eq!(label_value("plain.name"), "plain.name");
        assert_eq!(label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut state = State::default();
        let hist = state.hists.entry("ecall.bytes".to_owned()).or_default();
        hist.record(0);
        hist.record(3);
        hist.record(3);
        hist.record(1 << 20);
        let text = prometheus(&state);
        assert!(text.contains("hesgx_hist_bucket{name=\"ecall.bytes\",le=\"0\"} 1\n"));
        assert!(text.contains("hesgx_hist_bucket{name=\"ecall.bytes\",le=\"3\"} 3\n"));
        assert!(text.contains("hesgx_hist_bucket{name=\"ecall.bytes\",le=\"2097151\"} 4\n"));
        assert!(text.contains("hesgx_hist_bucket{name=\"ecall.bytes\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("hesgx_hist_sum{name=\"ecall.bytes\"} 1048582\n"));
        assert!(text.contains("hesgx_hist_count{name=\"ecall.bytes\"} 4\n"));
    }

    #[test]
    fn prometheus_le_sequence_is_nondecreasing_with_extreme_buckets() {
        let mut state = State::default();
        let hist = state.hists.entry("extremes".to_owned()).or_default();
        hist.record(0);
        hist.record(1);
        hist.record(u64::MAX);
        hist.record(u64::MAX);
        let text = prometheus(&state);
        // The bucket-64 line carries the u64::MAX upper bound, and the
        // cumulative counts never decrease walking down the le ladder.
        assert!(text.contains(&format!(
            "hesgx_hist_bucket{{name=\"extremes\",le=\"{}\"}} 4\n",
            u64::MAX
        )));
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("hesgx_hist_bucket{name=\"extremes\""))
            .map(|l| l.rsplit_once(' ').expect("value").1.parse().expect("u64"))
            .collect();
        assert_eq!(counts.last(), Some(&4), "+Inf bucket equals total count");
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "le buckets must be cumulative: {counts:?}"
        );
    }

    #[test]
    fn empty_state_renders_empty_exposition() {
        assert_eq!(prometheus(&State::default()), "");
    }
}
