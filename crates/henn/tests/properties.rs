//! Property-based tests of the homomorphic NN layers: every encrypted
//! operation must agree with its plaintext counterpart on random inputs.

use hesgx_bfv::prelude::PolyArena;
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::crt::{CrtKeys, CrtPlainSystem};
use hesgx_henn::image::EncryptedMap;
use hesgx_henn::ops::{self, OpCounter};
use hesgx_henn::par::ParExec;
use proptest::prelude::*;
use std::sync::OnceLock;

fn system() -> &'static (CrtPlainSystem, CrtKeys) {
    static SYS: OnceLock<(CrtPlainSystem, CrtKeys)> = OnceLock::new();
    SYS.get_or_init(|| {
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let mut rng = ChaChaRng::from_seed(777);
        let keys = sys.generate_keys(&mut rng);
        (sys, keys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn crt_encrypt_decrypt_roundtrip(values in proptest::collection::vec(-40_000_000i64..40_000_000, 1..8), seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let ct = sys.encrypt_slots(&values, &keys.public, &mut rng).unwrap();
        let back = sys.decrypt_slots(&ct, &keys.secret).unwrap();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(back[i], v as i128);
        }
    }

    #[test]
    fn affine_combination_matches_plain(a in -1000i64..1000, b in -1000i64..1000,
                                        w in -50i64..50, c in -500i64..500, seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let ca = sys.encrypt_slots(&[a], &keys.public, &mut rng).unwrap();
        let cb = sys.encrypt_slots(&[b], &keys.public, &mut rng).unwrap();
        // w*a + b + c
        let mut acc = sys.mul_scalar(&ca, w).unwrap();
        sys.add_inplace(&mut acc, &cb).unwrap();
        let acc = sys.add_scalar(&acc, c).unwrap();
        prop_assert_eq!(
            sys.decrypt_slots(&acc, &keys.secret).unwrap()[0],
            (w * a + b + c) as i128
        );
    }

    #[test]
    fn square_matches_plain(v in -8000i64..8000, seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let ct = sys.encrypt_slots(&[v], &keys.public, &mut rng).unwrap();
        let sq = sys.relinearize(&sys.square(&ct).unwrap(), &keys.evaluation).unwrap();
        prop_assert_eq!(
            sys.decrypt_slots(&sq, &keys.secret).unwrap()[0],
            (v as i128) * (v as i128)
        );
    }

    #[test]
    fn he_conv_matches_plain_conv(pixels in proptest::collection::vec(0i64..16, 16),
                                  weights in proptest::collection::vec(-7i64..8, 4),
                                  bias in -20i64..20, seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let images = vec![pixels.clone()];
        let enc = EncryptedMap::encrypt_images(sys, &images, 4, &keys.public, &mut rng).unwrap();
        let mut counter = OpCounter::default();
        let out = ops::he_conv2d(sys, &enc, &weights, &[bias], 1, 2, 1, &mut counter).unwrap();
        let dec = out.decrypt_all(sys, &keys.secret, 1).unwrap();
        // Plain reference.
        for oy in 0..3 {
            for ox in 0..3 {
                let mut acc = bias;
                for ky in 0..2 {
                    for kx in 0..2 {
                        acc += weights[ky * 2 + kx] * pixels[(oy + ky) * 4 + ox + kx];
                    }
                }
                prop_assert_eq!(dec[0][oy * 3 + ox], acc as i128);
            }
        }
    }

    #[test]
    fn scaled_pool_matches_window_sums(pixels in proptest::collection::vec(-100i64..100, 16), seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let enc = EncryptedMap::encrypt_images(sys, std::slice::from_ref(&pixels), 4, &keys.public, &mut rng).unwrap();
        let mut counter = OpCounter::default();
        let pooled = ops::he_scaled_mean_pool(sys, &enc, 2, &mut counter, &PolyArena::new()).unwrap();
        let dec = pooled.decrypt_all(sys, &keys.secret, 1).unwrap();
        for oy in 0..2 {
            for ox in 0..2 {
                let mut sum = 0i64;
                for dy in 0..2 {
                    for dx in 0..2 {
                        sum += pixels[(oy * 2 + dy) * 4 + ox * 2 + dx];
                    }
                }
                prop_assert_eq!(dec[0][oy * 2 + ox], sum as i128);
            }
        }
    }

    #[test]
    fn par_conv_bit_identical_to_serial(pixels in proptest::collection::vec(0i64..16, 16),
                                        weights in proptest::collection::vec(-7i64..8, 4),
                                        bias in -20i64..20, threads in 1usize..9,
                                        seed in any::<u64>()) {
        // HE ops draw no randomness, so the parallel conv must reproduce the
        // serial ciphertexts bit for bit at every pool size.
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let enc = EncryptedMap::encrypt_images(sys, &[pixels], 4, &keys.public, &mut rng).unwrap();
        let mut serial_counter = OpCounter::default();
        let serial = ops::he_conv2d(sys, &enc, &weights, &[bias], 1, 2, 1, &mut serial_counter).unwrap();
        let pool = ParExec::new(threads);
        let mut par_counter = OpCounter::default();
        let par = ops::he_conv2d_par(sys, &enc, &weights, &[bias], 1, 2, 1, &mut par_counter, &pool).unwrap();
        prop_assert_eq!(serial.cells(), par.cells(), "ciphertext mismatch at {} threads", threads);
        prop_assert_eq!(serial_counter, par_counter);
    }

    #[test]
    fn par_fc_bit_identical_to_serial(pixels in proptest::collection::vec(0i64..16, 4),
                                      weights in proptest::collection::vec(-9i64..10, 12),
                                      biases in proptest::collection::vec(-20i64..20, 3),
                                      threads in 1usize..9, seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let enc = EncryptedMap::encrypt_images(sys, &[pixels], 2, &keys.public, &mut rng).unwrap();
        let mut serial_counter = OpCounter::default();
        let serial = ops::he_fully_connected(sys, &enc, &weights, &biases, 3, &mut serial_counter).unwrap();
        let pool = ParExec::new(threads);
        let mut par_counter = OpCounter::default();
        let par = ops::he_fully_connected_par(sys, &enc, &weights, &biases, 3, &mut par_counter, &pool).unwrap();
        prop_assert_eq!(&serial, &par, "logit ciphertext mismatch at {} threads", threads);
        prop_assert_eq!(serial_counter, par_counter);
    }

    #[test]
    fn par_pool_bit_identical_to_serial(pixels in proptest::collection::vec(-100i64..100, 16),
                                        threads in 1usize..9, seed in any::<u64>()) {
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let enc = EncryptedMap::encrypt_images(sys, &[pixels], 4, &keys.public, &mut rng).unwrap();
        let mut serial_counter = OpCounter::default();
        let serial = ops::he_scaled_mean_pool(sys, &enc, 2, &mut serial_counter, &PolyArena::new()).unwrap();
        let pool = ParExec::new(threads);
        let mut par_counter = OpCounter::default();
        let par = ops::he_scaled_mean_pool_par(sys, &enc, 2, &mut par_counter, &pool, &PolyArena::new()).unwrap();
        prop_assert_eq!(serial.cells(), par.cells(), "pooled ciphertext mismatch at {} threads", threads);
        prop_assert_eq!(serial_counter, par_counter);
    }

    #[test]
    fn par_encrypt_deterministic_across_pool_sizes(
            imgs in proptest::collection::vec(proptest::collection::vec(0i64..16, 16), 1..4),
            threads_a in 1usize..9, threads_b in 1usize..9, seed in any::<u64>()) {
        // Parallel encryption forks one RNG stream per cell, so the same
        // seed yields the same ciphertexts whatever the pool size — and the
        // parallel decrypt agrees with the serial one.
        let (sys, keys) = system();
        let rng = ChaChaRng::from_seed(seed);
        let pool_a = ParExec::new(threads_a);
        let pool_b = ParExec::new(threads_b);
        let enc_a = EncryptedMap::encrypt_images_par(sys, &imgs, 4, &keys.public, &rng, &pool_a).unwrap();
        let enc_b = EncryptedMap::encrypt_images_par(sys, &imgs, 4, &keys.public, &rng, &pool_b).unwrap();
        prop_assert_eq!(enc_a.cells(), enc_b.cells(),
                        "encryption differs between {} and {} threads", threads_a, threads_b);
        let serial_dec = enc_a.decrypt_all(sys, &keys.secret, imgs.len()).unwrap();
        let par_dec = enc_a.decrypt_all_par(sys, &keys.secret, imgs.len(), &pool_b).unwrap();
        prop_assert_eq!(&serial_dec, &par_dec);
        for (b, img) in imgs.iter().enumerate() {
            for (p, &v) in img.iter().enumerate() {
                prop_assert_eq!(par_dec[b][p], v as i128);
            }
        }
    }

    #[test]
    fn batch_slots_independent(imgs in proptest::collection::vec(proptest::collection::vec(0i64..16, 4), 1..5),
                               w in -10i64..10, seed in any::<u64>()) {
        // Scaling an encrypted map scales every batch slot independently.
        let (sys, keys) = system();
        let mut rng = ChaChaRng::from_seed(seed);
        let enc = EncryptedMap::encrypt_images(sys, &imgs, 2, &keys.public, &mut rng).unwrap();
        let scaled = sys.mul_scalar(enc.cell(0, 0, 0), w).unwrap();
        let slots = sys.decrypt_slots(&scaled, &keys.secret).unwrap();
        for (b, img) in imgs.iter().enumerate() {
            prop_assert_eq!(slots[b], (img[0] * w) as i128, "batch {}", b);
        }
    }
}
