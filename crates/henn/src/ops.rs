//! Homomorphic layer operations: convolution, fully connected, scaled
//! mean-pool, and the square activation — with operation counting for the
//! paper's Fig. 4 analysis.

use crate::crt::{CrtCiphertext, CrtPlainSystem, CrtPreparedScalar};
use crate::image::EncryptedMap;
use crate::par::ParExec;
use crate::weights::WeightBank;
use hesgx_bfv::error::Result;
use hesgx_bfv::prelude::{Ciphertext, EvaluationKeys, PolyArena};

/// Counts of homomorphic primitive operations (the paper's `C×P` / `C+C`
/// terminology in Fig. 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Ciphertext × plaintext multiplications.
    pub ct_pt_mul: u64,
    /// Ciphertext + ciphertext additions.
    pub ct_ct_add: u64,
    /// Ciphertext + plaintext additions (bias terms).
    pub ct_pt_add: u64,
    /// Ciphertext × ciphertext multiplications (square activation).
    pub ct_ct_mul: u64,
    /// Relinearizations.
    pub relin: u64,
    /// Per-call weight-operand preparations (centering + Shoup
    /// precomputation for a scalar, `Δ·m` embedding for a bias) performed
    /// *inside* the layer op. The uncached kernels pay one per `C×P` and
    /// one per bias; the [`WeightBank`]-driven kernels pay zero — all
    /// preparation happened at provisioning.
    pub weight_prep: u64,
}

impl OpCounter {
    /// Theoretical `C×P` / `C+C` count for one homomorphic convolution over an
    /// `s × s` map with a `k × k` kernel and stride 1 (the blue line of
    /// Fig. 4): `(s-k+1)² · k²`.
    pub fn conv_theoretical(map_side: usize, kernel: usize) -> u64 {
        let out = (map_side - kernel + 1) as u64;
        out * out * (kernel * kernel) as u64
    }
}

/// Homomorphic 2-D convolution (stride `stride`, valid padding) of a
/// single-channel-per-group weight set: `weights[out][in][k][k]` flattened,
/// integer bias per output channel.
///
/// Each output cell is `Σ w·x + bias` computed with scalar `C×P` multiplies
/// and `C+C` additions — exactly the paper's Fig. 4 workload.
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
#[allow(clippy::too_many_arguments)]
// hesgx-lint: hot
pub fn he_conv2d(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    weights: &[i64],
    bias: &[i64],
    out_channels: usize,
    kernel: usize,
    stride: usize,
    counter: &mut OpCounter,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.conv2d");
    let (in_channels, h, w) = input.shape();
    assert_eq!(
        weights.len(),
        out_channels * in_channels * kernel * kernel,
        "weight count mismatch"
    );
    assert_eq!(bias.len(), out_channels);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut cells = Vec::with_capacity(out_channels * oh * ow);
    for o in 0..out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: Option<CrtCiphertext> = None;
                for i in 0..in_channels {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let wgt = weights[((o * in_channels + i) * kernel + ky) * kernel + kx];
                            let x = input.cell(i, oy * stride + ky, ox * stride + kx);
                            let term = sys.mul_scalar(x, wgt)?;
                            counter.ct_pt_mul += 1;
                            counter.weight_prep += 1;
                            match acc.as_mut() {
                                None => acc = Some(term),
                                Some(a) => {
                                    sys.add_inplace(a, &term)?;
                                    counter.ct_ct_add += 1;
                                }
                            }
                        }
                    }
                }
                let acc = sys.add_scalar(&acc.expect("kernel is non-empty"), bias[o])?;
                counter.ct_pt_add += 1;
                counter.weight_prep += 1;
                cells.push(acc);
            }
        }
    }
    Ok(EncryptedMap::new(out_channels, oh, ow, cells))
}

/// Arena-backed whole-ciphertext prepared multiply (all CRT parts) — the
/// first term of an accumulator chain, drawing its buffers from the
/// session arena instead of the global allocator.
fn mul_prepared_arena(
    sys: &CrtPlainSystem,
    a: &CrtCiphertext,
    scalar: &CrtPreparedScalar,
    arena: &PolyArena,
) -> Result<CrtCiphertext> {
    let mut parts = Vec::with_capacity(a.parts.len());
    for i in 0..a.parts.len() {
        parts.push(sys.mul_scalar_prepared_arena_part(&a.parts[i], scalar.part(i), arena, i)?);
    }
    Ok(CrtCiphertext { parts })
}

/// [`he_conv2d`] driven by a provisioned [`WeightBank`]: identical
/// arithmetic — output ciphertexts are bit-identical to the uncached
/// kernel — but no per-call weight preparation (`weight_prep` stays 0),
/// fused multiply-accumulate instead of a temporary ciphertext per tap,
/// and the one remaining allocation per output cell (the initial
/// accumulator) drawn from `arena`.
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
#[allow(clippy::too_many_arguments)]
// hesgx-lint: hot
pub fn he_conv2d_cached(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    bank: &WeightBank,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    counter: &mut OpCounter,
    arena: &PolyArena,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.conv2d_cached");
    let (in_channels, h, w) = input.shape();
    assert_eq!(
        bank.scalars.len(),
        out_channels * in_channels * kernel * kernel,
        "weight count mismatch"
    );
    assert_eq!(bank.biases.len(), out_channels);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut cells = Vec::with_capacity(out_channels * oh * ow);
    for o in 0..out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: Option<CrtCiphertext> = None;
                for i in 0..in_channels {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let wgt =
                                &bank.scalars[((o * in_channels + i) * kernel + ky) * kernel + kx];
                            let x = input.cell(i, oy * stride + ky, ox * stride + kx);
                            counter.ct_pt_mul += 1;
                            match acc.as_mut() {
                                None => acc = Some(mul_prepared_arena(sys, x, wgt, arena)?),
                                Some(a) => {
                                    sys.mul_scalar_acc(a, x, wgt)?;
                                    counter.ct_ct_add += 1;
                                }
                            }
                        }
                    }
                }
                let mut acc = acc.expect("kernel is non-empty");
                sys.add_bias_inplace(&mut acc, &bank.biases[o])?;
                counter.ct_pt_add += 1;
                cells.push(acc);
            }
        }
    }
    Ok(EncryptedMap::new(out_channels, oh, ow, cells))
}

/// Homomorphic fully connected layer over the flattened input map
/// (`weights[out][flat]`, bias per output). The paper realizes this as a
/// convolution with input-sized kernels (Table VI); the arithmetic is the
/// same dot product.
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
// hesgx-lint: hot
pub fn he_fully_connected(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    weights: &[i64],
    bias: &[i64],
    out_dim: usize,
    counter: &mut OpCounter,
) -> Result<Vec<CrtCiphertext>> {
    let _prof = hesgx_obs::prof::span("henn.fc");
    let flat = input.cells().len();
    assert_eq!(weights.len(), out_dim * flat, "FC weight count mismatch");
    assert_eq!(bias.len(), out_dim);
    let mut out = Vec::with_capacity(out_dim);
    for o in 0..out_dim {
        let mut acc: Option<CrtCiphertext> = None;
        for (i, cell) in input.cells().iter().enumerate() {
            let term = sys.mul_scalar(cell, weights[o * flat + i])?;
            counter.ct_pt_mul += 1;
            counter.weight_prep += 1;
            match acc.as_mut() {
                None => acc = Some(term),
                Some(a) => {
                    sys.add_inplace(a, &term)?;
                    counter.ct_ct_add += 1;
                }
            }
        }
        let acc = sys.add_scalar(&acc.expect("FC input non-empty"), bias[o])?;
        counter.ct_pt_add += 1;
        counter.weight_prep += 1;
        out.push(acc);
    }
    Ok(out)
}

/// [`he_fully_connected`] driven by a provisioned [`WeightBank`]:
/// bit-identical logits with zero per-call weight preparation and
/// arena-backed accumulators.
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
// hesgx-lint: hot
pub fn he_fully_connected_cached(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    bank: &WeightBank,
    out_dim: usize,
    counter: &mut OpCounter,
    arena: &PolyArena,
) -> Result<Vec<CrtCiphertext>> {
    let _prof = hesgx_obs::prof::span("henn.fc_cached");
    let flat = input.cells().len();
    assert_eq!(
        bank.scalars.len(),
        out_dim * flat,
        "FC weight count mismatch"
    );
    assert_eq!(bank.biases.len(), out_dim);
    let mut out = Vec::with_capacity(out_dim);
    for o in 0..out_dim {
        let mut acc: Option<CrtCiphertext> = None;
        for (i, cell) in input.cells().iter().enumerate() {
            let wgt = &bank.scalars[o * flat + i];
            counter.ct_pt_mul += 1;
            match acc.as_mut() {
                None => acc = Some(mul_prepared_arena(sys, cell, wgt, arena)?),
                Some(a) => {
                    sys.mul_scalar_acc(a, cell, wgt)?;
                    counter.ct_ct_add += 1;
                }
            }
        }
        let mut acc = acc.expect("FC input non-empty");
        sys.add_bias_inplace(&mut acc, &bank.biases[o])?;
        counter.ct_pt_add += 1;
        out.push(acc);
    }
    Ok(out)
}

/// Scaled mean-pooling: the window **sum** (no division — HE cannot divide;
/// paper §III-A). Output values are `window²` times the true mean. The
/// window accumulator owns its ciphertext (an in-place borrow would alias
/// the input map); its buffers come from `arena`, so the copy recycles the
/// previous stage's limbs instead of allocating.
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
// hesgx-lint: hot
pub fn he_scaled_mean_pool(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    window: usize,
    counter: &mut OpCounter,
    arena: &PolyArena,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.pool");
    let (c, h, w) = input.shape();
    assert_eq!(h % window, 0);
    assert_eq!(w % window, 0);
    let (oh, ow) = (h / window, w / window);
    let mut cells = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = input.cell(ch, oy * window, ox * window).arena_copy(arena);
                for dy in 0..window {
                    for dx in 0..window {
                        if dy == 0 && dx == 0 {
                            continue;
                        }
                        sys.add_inplace(
                            &mut acc,
                            input.cell(ch, oy * window + dy, ox * window + dx),
                        )?;
                        counter.ct_ct_add += 1;
                    }
                }
                cells.push(acc);
            }
        }
    }
    Ok(EncryptedMap::new(c, oh, ow, cells))
}

/// Square activation: slot-wise `x²` via ciphertext multiplication, followed
/// by relinearization with `evk` (the pure-HE pipeline's `EncryptSigmoid`
/// substitute, paper §VI-C).
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
// hesgx-lint: hot
pub fn he_square_activation(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    evk: &[EvaluationKeys],
    counter: &mut OpCounter,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.square");
    let (c, h, w) = input.shape();
    let mut cells = Vec::with_capacity(input.cells().len());
    for cell in input.cells() {
        let sq = sys.square(cell)?;
        counter.ct_ct_mul += 1;
        let relin = sys.relinearize(&sq, evk)?;
        counter.relin += 1;
        cells.push(relin);
    }
    Ok(EncryptedMap::new(c, h, w, cells))
}

/// Reassembles `(cell, part)`-indexed task results (part-major within each
/// cell) into whole CRT ciphertexts.
fn assemble_cells(parts: Vec<Ciphertext>, n_cells: usize, n_parts: usize) -> Vec<CrtCiphertext> {
    debug_assert_eq!(parts.len(), n_cells * n_parts);
    let mut iter = parts.into_iter();
    (0..n_cells)
        .map(|_| CrtCiphertext {
            parts: iter.by_ref().take(n_parts).collect(),
        })
        .collect()
}

/// One output cell of [`he_conv2d`], restricted to CRT part `part`: the
/// same multiply/accumulate sequence the serial path applies to this limb,
/// so the result is bit-identical for any scheduling.
#[allow(clippy::too_many_arguments)]
fn conv_cell_part(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    weights: &[i64],
    bias: i64,
    in_channels: usize,
    kernel: usize,
    stride: usize,
    o: usize,
    oy: usize,
    ox: usize,
    part: usize,
) -> Result<Ciphertext> {
    let mut acc: Option<Ciphertext> = None;
    for i in 0..in_channels {
        for ky in 0..kernel {
            for kx in 0..kernel {
                let wgt = weights[((o * in_channels + i) * kernel + ky) * kernel + kx];
                let x = input.cell(i, oy * stride + ky, ox * stride + kx);
                let term = sys.mul_scalar_part(&x.parts[part], wgt, part)?;
                match acc.as_mut() {
                    None => acc = Some(term),
                    Some(a) => sys.add_inplace_part(a, &term, part)?,
                }
            }
        }
    }
    sys.add_scalar_part(&acc.expect("kernel is non-empty"), bias, part)
}

/// Parallel [`he_conv2d`]: output cells × CRT limbs are scheduled as
/// independent tasks on `pool`. Bit-identical to the serial version for any
/// thread count (the ops draw no randomness and each limb sees the same
/// operation order). Op counts are tallied analytically and match the
/// serial counter exactly.
///
/// # Errors
///
/// Propagates homomorphic-operation failures (lowest task index first).
#[allow(clippy::too_many_arguments)]
// hesgx-lint: hot
pub fn he_conv2d_par(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    weights: &[i64],
    bias: &[i64],
    out_channels: usize,
    kernel: usize,
    stride: usize,
    counter: &mut OpCounter,
    pool: &ParExec,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.conv2d");
    let (in_channels, h, w) = input.shape();
    assert_eq!(
        weights.len(),
        out_channels * in_channels * kernel * kernel,
        "weight count mismatch"
    );
    assert_eq!(bias.len(), out_channels);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let n_cells = out_channels * oh * ow;
    let n_parts = sys.part_count();
    let parts = pool.try_run(n_cells * n_parts, |t| {
        let (ci, part) = (t / n_parts, t % n_parts);
        let o = ci / (oh * ow);
        let rem = ci % (oh * ow);
        conv_cell_part(
            sys,
            input,
            weights,
            bias[o],
            in_channels,
            kernel,
            stride,
            o,
            rem / ow,
            rem % ow,
            part,
        )
    })?;
    let muls = (in_channels * kernel * kernel) as u64;
    counter.ct_pt_mul += n_cells as u64 * muls;
    counter.ct_ct_add += n_cells as u64 * (muls - 1);
    counter.ct_pt_add += n_cells as u64;
    counter.weight_prep += n_cells as u64 * (muls + 1);
    Ok(EncryptedMap::new(
        out_channels,
        oh,
        ow,
        assemble_cells(parts, n_cells, n_parts),
    ))
}

/// One output cell of [`he_conv2d_cached`], restricted to CRT part `part`:
/// the same fused multiply-accumulate sequence the cached serial path
/// applies to this limb, so the result is bit-identical for any
/// scheduling.
#[allow(clippy::too_many_arguments)]
fn conv_cell_part_cached(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    bank: &WeightBank,
    in_channels: usize,
    kernel: usize,
    stride: usize,
    o: usize,
    oy: usize,
    ox: usize,
    part: usize,
    arena: &PolyArena,
) -> Result<Ciphertext> {
    let mut acc: Option<Ciphertext> = None;
    for i in 0..in_channels {
        for ky in 0..kernel {
            for kx in 0..kernel {
                let wgt =
                    bank.scalars[((o * in_channels + i) * kernel + ky) * kernel + kx].part(part);
                let x = &input.cell(i, oy * stride + ky, ox * stride + kx).parts[part];
                match acc.as_mut() {
                    None => acc = Some(sys.mul_scalar_prepared_arena_part(x, wgt, arena, part)?),
                    Some(a) => sys.mul_scalar_acc_part(a, x, wgt, part)?,
                }
            }
        }
    }
    let mut acc = acc.expect("kernel is non-empty");
    sys.add_bias_inplace_part(&mut acc, bank.biases[o].part(part), part)?;
    Ok(acc)
}

/// Parallel [`he_conv2d_cached`]: output cells × CRT limbs as independent
/// tasks, fused accumulate, zero per-call weight preparation. Bit-identical
/// to both the cached serial kernel and the uncached paths.
///
/// # Errors
///
/// Propagates homomorphic-operation failures (lowest task index first).
#[allow(clippy::too_many_arguments)]
// hesgx-lint: hot
pub fn he_conv2d_cached_par(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    bank: &WeightBank,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    counter: &mut OpCounter,
    pool: &ParExec,
    arena: &PolyArena,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.conv2d_cached");
    let (in_channels, h, w) = input.shape();
    assert_eq!(
        bank.scalars.len(),
        out_channels * in_channels * kernel * kernel,
        "weight count mismatch"
    );
    assert_eq!(bank.biases.len(), out_channels);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let n_cells = out_channels * oh * ow;
    let n_parts = sys.part_count();
    let parts = pool.try_run(n_cells * n_parts, |t| {
        let (ci, part) = (t / n_parts, t % n_parts);
        let o = ci / (oh * ow);
        let rem = ci % (oh * ow);
        conv_cell_part_cached(
            sys,
            input,
            bank,
            in_channels,
            kernel,
            stride,
            o,
            rem / ow,
            rem % ow,
            part,
            arena,
        )
    })?;
    let muls = (in_channels * kernel * kernel) as u64;
    counter.ct_pt_mul += n_cells as u64 * muls;
    counter.ct_ct_add += n_cells as u64 * (muls - 1);
    counter.ct_pt_add += n_cells as u64;
    Ok(EncryptedMap::new(
        out_channels,
        oh,
        ow,
        assemble_cells(parts, n_cells, n_parts),
    ))
}

/// Parallel [`he_fully_connected`]: output neurons × CRT limbs as
/// independent tasks. Bit-identical to the serial version.
///
/// # Errors
///
/// Propagates homomorphic-operation failures (lowest task index first).
// hesgx-lint: hot
pub fn he_fully_connected_par(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    weights: &[i64],
    bias: &[i64],
    out_dim: usize,
    counter: &mut OpCounter,
    pool: &ParExec,
) -> Result<Vec<CrtCiphertext>> {
    let _prof = hesgx_obs::prof::span("henn.fc");
    let flat = input.cells().len();
    assert_eq!(weights.len(), out_dim * flat, "FC weight count mismatch");
    assert_eq!(bias.len(), out_dim);
    let n_parts = sys.part_count();
    let parts = pool.try_run(out_dim * n_parts, |t| {
        let (o, part) = (t / n_parts, t % n_parts);
        let mut acc: Option<Ciphertext> = None;
        for (i, cell) in input.cells().iter().enumerate() {
            let term = sys.mul_scalar_part(&cell.parts[part], weights[o * flat + i], part)?;
            match acc.as_mut() {
                None => acc = Some(term),
                Some(a) => sys.add_inplace_part(a, &term, part)?,
            }
        }
        sys.add_scalar_part(&acc.expect("FC input non-empty"), bias[o], part)
    })?;
    counter.ct_pt_mul += (out_dim * flat) as u64;
    counter.ct_ct_add += (out_dim * (flat - 1)) as u64;
    counter.ct_pt_add += out_dim as u64;
    counter.weight_prep += (out_dim * (flat + 1)) as u64;
    Ok(assemble_cells(parts, out_dim, n_parts))
}

/// Parallel [`he_fully_connected_cached`]: output neurons × CRT limbs as
/// independent tasks, fused accumulate, zero per-call weight preparation.
/// Bit-identical to both the cached serial kernel and the uncached paths.
///
/// # Errors
///
/// Propagates homomorphic-operation failures (lowest task index first).
// hesgx-lint: hot
pub fn he_fully_connected_cached_par(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    bank: &WeightBank,
    out_dim: usize,
    counter: &mut OpCounter,
    pool: &ParExec,
    arena: &PolyArena,
) -> Result<Vec<CrtCiphertext>> {
    let _prof = hesgx_obs::prof::span("henn.fc_cached");
    let flat = input.cells().len();
    assert_eq!(
        bank.scalars.len(),
        out_dim * flat,
        "FC weight count mismatch"
    );
    assert_eq!(bank.biases.len(), out_dim);
    let n_parts = sys.part_count();
    let parts = pool.try_run(out_dim * n_parts, |t| -> Result<Ciphertext> {
        let (o, part) = (t / n_parts, t % n_parts);
        let mut acc: Option<Ciphertext> = None;
        for (i, cell) in input.cells().iter().enumerate() {
            let wgt = bank.scalars[o * flat + i].part(part);
            match acc.as_mut() {
                None => {
                    acc = Some(sys.mul_scalar_prepared_arena_part(
                        &cell.parts[part],
                        wgt,
                        arena,
                        part,
                    )?);
                }
                Some(a) => sys.mul_scalar_acc_part(a, &cell.parts[part], wgt, part)?,
            }
        }
        let mut acc = acc.expect("FC input non-empty");
        sys.add_bias_inplace_part(&mut acc, bank.biases[o].part(part), part)?;
        Ok(acc)
    })?;
    counter.ct_pt_mul += (out_dim * flat) as u64;
    counter.ct_ct_add += (out_dim * (flat - 1)) as u64;
    counter.ct_pt_add += out_dim as u64;
    Ok(assemble_cells(parts, out_dim, n_parts))
}

/// Parallel [`he_scaled_mean_pool`]: pooled cells × CRT limbs as
/// independent tasks. Bit-identical to the serial version.
///
/// # Errors
///
/// Propagates homomorphic-operation failures (lowest task index first).
// hesgx-lint: hot
pub fn he_scaled_mean_pool_par(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    window: usize,
    counter: &mut OpCounter,
    pool: &ParExec,
    arena: &PolyArena,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.pool");
    let (c, h, w) = input.shape();
    assert_eq!(h % window, 0);
    assert_eq!(w % window, 0);
    let (oh, ow) = (h / window, w / window);
    let n_cells = c * oh * ow;
    let n_parts = sys.part_count();
    let parts = pool.try_run(n_cells * n_parts, |t| -> Result<Ciphertext> {
        let (ci, part) = (t / n_parts, t % n_parts);
        let ch = ci / (oh * ow);
        let rem = ci % (oh * ow);
        let (oy, ox) = (rem / ow, rem % ow);
        let mut acc = arena.copy_ciphertext(&input.cell(ch, oy * window, ox * window).parts[part]);
        for dy in 0..window {
            for dx in 0..window {
                if dy == 0 && dx == 0 {
                    continue;
                }
                let other = input.cell(ch, oy * window + dy, ox * window + dx);
                sys.add_inplace_part(&mut acc, &other.parts[part], part)?;
            }
        }
        Ok(acc)
    })?;
    counter.ct_ct_add += n_cells as u64 * (window * window - 1) as u64;
    Ok(EncryptedMap::new(
        c,
        oh,
        ow,
        assemble_cells(parts, n_cells, n_parts),
    ))
}

/// Parallel [`he_square_activation`]: cells × CRT limbs as independent
/// tasks. Bit-identical to the serial version.
///
/// # Errors
///
/// Propagates homomorphic-operation failures (lowest task index first).
// hesgx-lint: hot
pub fn he_square_activation_par(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    evk: &[EvaluationKeys],
    counter: &mut OpCounter,
    pool: &ParExec,
) -> Result<EncryptedMap> {
    let _prof = hesgx_obs::prof::span("henn.square");
    let (c, h, w) = input.shape();
    let n_cells = input.cells().len();
    let n_parts = sys.part_count();
    let parts = pool.try_run(n_cells * n_parts, |t| {
        let (ci, part) = (t / n_parts, t % n_parts);
        let sq = sys.square_part(&input.cells()[ci].parts[part], part)?;
        sys.relinearize_part(&sq, evk, part)
    })?;
    counter.ct_ct_mul += n_cells as u64;
    counter.relin += n_cells as u64;
    Ok(EncryptedMap::new(
        c,
        h,
        w,
        assemble_cells(parts, n_cells, n_parts),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crt::CrtPlainSystem;
    use hesgx_crypto::rng::ChaChaRng;

    fn setup() -> (CrtPlainSystem, crate::crt::CrtKeys, ChaChaRng) {
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let mut rng = ChaChaRng::from_seed(61);
        let keys = sys.generate_keys(&mut rng);
        (sys, keys, rng)
    }

    fn plain_conv(
        img: &[i64],
        side: usize,
        weights: &[i64],
        bias: &[i64],
        out_channels: usize,
        k: usize,
    ) -> Vec<i64> {
        let o_side = side - k + 1;
        let mut out = vec![0i64; out_channels * o_side * o_side];
        for o in 0..out_channels {
            for oy in 0..o_side {
                for ox in 0..o_side {
                    let mut acc = bias[o];
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += weights[(o * k + ky) * k + kx] * img[(oy + ky) * side + ox + kx];
                        }
                    }
                    out[(o * o_side + oy) * o_side + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn conv_matches_plaintext_reference() {
        let (sys, keys, mut rng) = setup();
        let side = 6;
        let k = 3;
        let images: Vec<Vec<i64>> = (0..2)
            .map(|b| {
                (0..side * side)
                    .map(|p| ((p * 7 + b * 3) % 16) as i64)
                    .collect()
            })
            .collect();
        let weights: Vec<i64> = (0..2 * k * k).map(|i| (i as i64 % 5) - 2).collect();
        let bias = vec![4i64, -3];
        let enc =
            EncryptedMap::encrypt_images(&sys, &images, side, &keys.public, &mut rng).unwrap();
        let mut counter = OpCounter::default();
        let out = he_conv2d(&sys, &enc, &weights, &bias, 2, k, 1, &mut counter).unwrap();
        assert_eq!(out.shape(), (2, 4, 4));
        assert_eq!(counter.ct_pt_mul, 2 * 16 * 9);
        let dec = out.decrypt_all(&sys, &keys.secret, 2).unwrap();
        for (b, img) in images.iter().enumerate() {
            let expect = plain_conv(img, side, &weights, &bias, 2, k);
            let expect: Vec<i128> = expect.iter().map(|&v| v as i128).collect();
            assert_eq!(dec[b], expect, "batch {b}");
        }
    }

    #[test]
    fn scaled_pool_sums_windows() {
        let (sys, keys, mut rng) = setup();
        let side = 4;
        let images = vec![(1..=16i64).collect::<Vec<_>>()];
        let enc =
            EncryptedMap::encrypt_images(&sys, &images, side, &keys.public, &mut rng).unwrap();
        let mut counter = OpCounter::default();
        let arena = PolyArena::new();
        let pooled = he_scaled_mean_pool(&sys, &enc, 2, &mut counter, &arena).unwrap();
        assert_eq!(pooled.shape(), (1, 2, 2));
        let dec = pooled.decrypt_all(&sys, &keys.secret, 1).unwrap();
        // windows: [1,2,5,6]=14, [3,4,7,8]=22, [9,10,13,14]=46, [11,12,15,16]=54.
        assert_eq!(dec[0], vec![14, 22, 46, 54]);
        assert_eq!(counter.ct_ct_add, 4 * 3);
    }

    #[test]
    fn square_activation_squares_slots() {
        let (sys, keys, mut rng) = setup();
        let images = vec![vec![3i64, -4, 0, 12]];
        let enc = EncryptedMap::encrypt_images(&sys, &images, 2, &keys.public, &mut rng).unwrap();
        let mut counter = OpCounter::default();
        let sq = he_square_activation(&sys, &enc, &keys.evaluation, &mut counter).unwrap();
        let dec = sq.decrypt_all(&sys, &keys.secret, 1).unwrap();
        assert_eq!(dec[0], vec![9, 16, 0, 144]);
        assert_eq!(counter.ct_ct_mul, 4);
        assert_eq!(counter.relin, 4);
    }

    #[test]
    fn fully_connected_matches_dot_product() {
        let (sys, keys, mut rng) = setup();
        let images = vec![vec![1i64, 2, 3, 4]];
        let enc = EncryptedMap::encrypt_images(&sys, &images, 2, &keys.public, &mut rng).unwrap();
        let weights = vec![1i64, -1, 2, 0, /* row 2 */ 3, 3, -3, 1];
        let bias = vec![10, -10];
        let mut counter = OpCounter::default();
        let out = he_fully_connected(&sys, &enc, &weights, &bias, 2, &mut counter).unwrap();
        let logits: Vec<i128> = out
            .iter()
            .map(|ct| sys.decrypt_slots(ct, &keys.secret).unwrap()[0])
            .collect();
        assert_eq!(logits, vec![(1 - 2 + 6) + 10, 4 - 10]);
    }

    #[test]
    fn cached_conv_is_bit_identical_with_zero_weight_prep() {
        let (sys, keys, mut rng) = setup();
        let side = 6;
        let k = 3;
        let images: Vec<Vec<i64>> = (0..2)
            .map(|b| {
                (0..side * side)
                    .map(|p| ((p * 7 + b * 3) % 16) as i64)
                    .collect()
            })
            .collect();
        let weights: Vec<i64> = (0..2 * k * k).map(|i| (i as i64 % 5) - 2).collect();
        let bias = vec![4i64, -3];
        let enc =
            EncryptedMap::encrypt_images(&sys, &images, side, &keys.public, &mut rng).unwrap();
        let mut uncached = OpCounter::default();
        let base = he_conv2d(&sys, &enc, &weights, &bias, 2, k, 1, &mut uncached).unwrap();
        let bank = WeightBank::prepare(&sys, &weights, &bias).unwrap();
        let arena = PolyArena::new();
        let mut cached = OpCounter::default();
        let fast = he_conv2d_cached(&sys, &enc, &bank, 2, k, 1, &mut cached, &arena).unwrap();
        // Ciphertext-level bit-identity, not just equal decryptions.
        assert_eq!(fast.cells(), base.cells());
        // Same homomorphic work, but every per-call weight preparation
        // (2·16 cells × 9 taps + 2·16 biases in the uncached kernel) drops
        // to zero — the satellite op-count pin.
        assert_eq!(cached.ct_pt_mul, uncached.ct_pt_mul);
        assert_eq!(cached.ct_ct_add, uncached.ct_ct_add);
        assert_eq!(cached.ct_pt_add, uncached.ct_pt_add);
        assert_eq!(uncached.weight_prep, 2 * 16 * 9 + 2 * 16);
        assert_eq!(cached.weight_prep, 0);
        // The parallel cached kernel agrees for every pool size.
        for threads in [1, 2, 4] {
            let pool = ParExec::new(threads);
            let mut par_counter = OpCounter::default();
            let par =
                he_conv2d_cached_par(&sys, &enc, &bank, 2, k, 1, &mut par_counter, &pool, &arena)
                    .unwrap();
            assert_eq!(par.cells(), base.cells(), "{threads} threads");
            assert_eq!(par_counter, cached, "{threads} threads");
        }
    }

    #[test]
    fn cached_fc_is_bit_identical_with_zero_weight_prep() {
        let (sys, keys, mut rng) = setup();
        let images = vec![vec![1i64, 2, 3, 4]];
        let enc = EncryptedMap::encrypt_images(&sys, &images, 2, &keys.public, &mut rng).unwrap();
        let weights = vec![1i64, -1, 2, 0, /* row 2 */ 3, 3, -3, 1];
        let bias = vec![10, -10];
        let mut uncached = OpCounter::default();
        let base = he_fully_connected(&sys, &enc, &weights, &bias, 2, &mut uncached).unwrap();
        let bank = WeightBank::prepare(&sys, &weights, &bias).unwrap();
        let arena = PolyArena::new();
        let mut cached = OpCounter::default();
        let fast = he_fully_connected_cached(&sys, &enc, &bank, 2, &mut cached, &arena).unwrap();
        assert_eq!(fast, base);
        assert_eq!(uncached.weight_prep, 2 * 4 + 2);
        assert_eq!(cached.weight_prep, 0);
        for threads in [1, 3] {
            let pool = ParExec::new(threads);
            let mut par_counter = OpCounter::default();
            let par = he_fully_connected_cached_par(
                &sys,
                &enc,
                &bank,
                2,
                &mut par_counter,
                &pool,
                &arena,
            )
            .unwrap();
            assert_eq!(par, base, "{threads} threads");
            assert_eq!(par_counter, cached, "{threads} threads");
        }
    }

    #[test]
    fn pool_recycles_arena_buffers() {
        let (sys, keys, mut rng) = setup();
        let side = 4;
        let images = vec![(1..=16i64).collect::<Vec<_>>()];
        let enc =
            EncryptedMap::encrypt_images(&sys, &images, side, &keys.public, &mut rng).unwrap();
        let arena = PolyArena::new();
        // Park one consumed cell's buffers; the pool accumulators must
        // drain them and still produce the exact sums.
        enc.cells()[0].clone().recycle(&arena);
        let parked = arena.free_buffers();
        assert!(parked > 0);
        let mut counter = OpCounter::default();
        let pooled = he_scaled_mean_pool(&sys, &enc, 2, &mut counter, &arena).unwrap();
        assert!(arena.free_buffers() < parked);
        let dec = pooled.decrypt_all(&sys, &keys.secret, 1).unwrap();
        assert_eq!(dec[0], vec![14, 22, 46, 54]);
    }

    #[test]
    fn fig4_theoretical_op_counts() {
        // Symmetric around k = 14/15 for a 28×28 map, max 44100 (paper Fig. 4).
        assert_eq!(OpCounter::conv_theoretical(28, 14), 44_100);
        assert_eq!(OpCounter::conv_theoretical(28, 15), 44_100);
        assert_eq!(
            OpCounter::conv_theoretical(28, 1),
            OpCounter::conv_theoretical(28, 28)
        );
        assert_eq!(OpCounter::conv_theoretical(28, 1), 784);
        // Symmetry k ↔ 29-k.
        for k in 1..=28 {
            assert_eq!(
                OpCounter::conv_theoretical(28, k),
                OpCounter::conv_theoretical(28, 29 - k)
            );
        }
    }
}
