//! Polynomial activation approximation under HE — the alternative the paper
//! argues *against* (§III-A, §VI-C: "fitting the activation function with a
//! higher-order polynomial ... will obviously bring more significant
//! computational cost. There is a tradeoff between accuracy and efficiency").
//!
//! Implemented so the trade-off can be measured: a quadratic least-squares
//! fit of the sigmoid evaluated homomorphically (`c2·x² + c1·x + c0`), to be
//! compared against the enclave's exact sigmoid.

use crate::crt::{CrtCiphertext, CrtPlainSystem};
use crate::image::EncryptedMap;
use crate::ops::OpCounter;
use hesgx_bfv::error::Result;
use hesgx_bfv::prelude::EvaluationKeys;

/// Fixed-point quadratic `y ≈ (c2·x² + c1·x + c0) / denominator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadraticFit {
    /// Constant coefficient (pre-scaled).
    pub c0: i64,
    /// Linear coefficient (pre-scaled).
    pub c1: i64,
    /// Quadratic coefficient (pre-scaled).
    pub c2: i64,
    /// Common denominator of the fixed-point representation.
    pub denominator: i64,
}

impl QuadraticFit {
    /// Evaluates the fit on a plaintext integer (the reference semantics for
    /// the homomorphic version *before* the final division, which HE cannot
    /// perform — the caller rescales after decryption or in the enclave).
    pub fn eval_numerator(&self, x: i64) -> i64 {
        self.c2 * x * x + self.c1 * x + self.c0
    }
}

/// Least-squares quadratic fit of the sigmoid over `x ∈ [-range, range]`
/// (float domain), quantized with `scale` so the fit applies to integers
/// `x_int = x · in_scale`:
///
/// `sigmoid(x_int / in_scale) · out_scale ≈ eval_numerator(x_int) / denominator`.
pub fn fit_sigmoid_quadratic(
    range: f64,
    in_scale: f64,
    out_scale: f64,
    scale: i64,
) -> QuadraticFit {
    // Sample the target on a grid and solve the 3×3 normal equations.
    let samples = 401;
    let (mut s0, mut s1, mut s2, mut s3, mut s4) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let (mut t0, mut t1, mut t2) = (0.0f64, 0.0, 0.0);
    for i in 0..samples {
        let x = -range + 2.0 * range * i as f64 / (samples - 1) as f64;
        let y = 1.0 / (1.0 + (-x).exp());
        let (x1, x2, x3, x4) = (x, x * x, x * x * x, x * x * x * x);
        s0 += 1.0;
        s1 += x1;
        s2 += x2;
        s3 += x3;
        s4 += x4;
        t0 += y;
        t1 += y * x1;
        t2 += y * x2;
    }
    // Solve [s0 s1 s2; s1 s2 s3; s2 s3 s4] [a0 a1 a2]^T = [t0 t1 t2]^T.
    let m = [[s0, s1, s2], [s1, s2, s3], [s2, s3, s4]];
    let det = det3(&m);
    let a0 = det3(&[[t0, s1, s2], [t1, s2, s3], [t2, s3, s4]]) / det;
    let a1 = det3(&[[s0, t0, s2], [s1, t1, s3], [s2, t2, s4]]) / det;
    let a2 = det3(&[[s0, s1, t0], [s1, s2, t1], [s2, s3, t2]]) / det;
    // y(x) ≈ a0 + a1 x + a2 x².  With x = x_int/in_scale and output × out_scale:
    // out ≈ out_scale·a0 + (out_scale·a1/in_scale)·x_int + (out_scale·a2/in_scale²)·x_int².
    QuadraticFit {
        c0: (out_scale * a0 * scale as f64).round() as i64,
        c1: (out_scale * a1 / in_scale * scale as f64).round() as i64,
        c2: (out_scale * a2 / (in_scale * in_scale) * scale as f64).round() as i64,
        denominator: scale,
    }
}

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

/// Evaluates the quadratic numerator homomorphically on one ciphertext:
/// `c2·x² + c1·x + c0` (one `C×C` multiply + relinearization + scalar ops).
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
pub fn he_quadratic(
    sys: &CrtPlainSystem,
    x: &CrtCiphertext,
    fit: &QuadraticFit,
    evk: &[EvaluationKeys],
    counter: &mut OpCounter,
) -> Result<CrtCiphertext> {
    let sq = sys.square(x)?;
    counter.ct_ct_mul += 1;
    let sq = sys.relinearize(&sq, evk)?;
    counter.relin += 1;
    let mut acc = sys.mul_scalar(&sq, fit.c2)?;
    counter.ct_pt_mul += 1;
    let lin = sys.mul_scalar(x, fit.c1)?;
    counter.ct_pt_mul += 1;
    sys.add_inplace(&mut acc, &lin)?;
    counter.ct_ct_add += 1;
    let acc = sys.add_scalar(&acc, fit.c0)?;
    counter.ct_pt_add += 1;
    Ok(acc)
}

/// Applies [`he_quadratic`] to every cell of a feature map.
///
/// # Errors
///
/// Propagates homomorphic-operation failures.
pub fn he_quadratic_map(
    sys: &CrtPlainSystem,
    input: &EncryptedMap,
    fit: &QuadraticFit,
    evk: &[EvaluationKeys],
    counter: &mut OpCounter,
) -> Result<EncryptedMap> {
    let (c, h, w) = input.shape();
    let mut cells = Vec::with_capacity(input.cells().len());
    for cell in input.cells() {
        cells.push(he_quadratic(sys, cell, fit, evk, counter)?);
    }
    Ok(EncryptedMap::new(c, h, w, cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hesgx_crypto::rng::ChaChaRng;

    #[test]
    fn fit_approximates_sigmoid_near_zero() {
        // Over [-4, 4] a quadratic tracks the sigmoid to within ~0.1.
        let fit = fit_sigmoid_quadratic(4.0, 1.0, 1.0, 1 << 20);
        for x in [-3.0f64, -1.0, 0.0, 1.0, 3.0] {
            let approx = fit.eval_numerator(x as i64) as f64 / fit.denominator as f64;
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!(
                (approx - exact).abs() < 0.12,
                "x={x}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn fit_degrades_away_from_fit_range() {
        // The paper's point: low-order fits are poor outside their range.
        let fit = fit_sigmoid_quadratic(4.0, 1.0, 1.0, 1 << 20);
        let x = 12.0f64;
        let approx = fit.eval_numerator(x as i64) as f64 / fit.denominator as f64;
        let exact = 1.0 / (1.0 + (-x).exp());
        assert!(
            (approx - exact).abs() > 0.3,
            "should be badly wrong at x=12"
        );
    }

    #[test]
    fn he_quadratic_matches_plain_numerator() {
        let sys = CrtPlainSystem::new(256, &[12289, 13313, 15361]).unwrap();
        let mut rng = ChaChaRng::from_seed(88);
        let keys = sys.generate_keys(&mut rng);
        let fit = QuadraticFit {
            c0: 250,
            c1: 63,
            c2: -4,
            denominator: 1000,
        };
        for x in [-30i64, -5, 0, 7, 25] {
            let ct = sys.encrypt_slots(&[x], &keys.public, &mut rng).unwrap();
            let mut counter = OpCounter::default();
            let out = he_quadratic(&sys, &ct, &fit, &keys.evaluation, &mut counter).unwrap();
            let got = sys.decrypt_slots(&out, &keys.secret).unwrap()[0];
            assert_eq!(got, fit.eval_numerator(x) as i128, "x = {x}");
            assert_eq!(counter.ct_ct_mul, 1);
            assert_eq!(counter.relin, 1);
        }
    }

    #[test]
    fn approx_costs_more_he_ops_than_exact_sgx() {
        // The trade-off: the HE approximation pays a C×C multiply per value;
        // the exact SGX path pays none (only dec/enc inside the enclave).
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let mut rng = ChaChaRng::from_seed(89);
        let keys = sys.generate_keys(&mut rng);
        let images = vec![vec![1i64, 2, 3, 4]];
        let map = EncryptedMap::encrypt_images(&sys, &images, 2, &keys.public, &mut rng).unwrap();
        let fit = QuadraticFit {
            c0: 1,
            c1: 1,
            c2: 1,
            denominator: 1,
        };
        let mut counter = OpCounter::default();
        let _ = he_quadratic_map(&sys, &map, &fit, &keys.evaluation, &mut counter).unwrap();
        assert_eq!(counter.ct_ct_mul, 4);
        assert_eq!(counter.relin, 4);
    }
}
