//! Work-stealing parallel execution for the homomorphic hot paths.
//!
//! HE workloads here are embarrassingly parallel along two axes: the output
//! positions of a layer (one ciphertext per pixel) and the CRT limbs of each
//! [`crate::crt::CrtCiphertext`]. [`ParExec`] runs an indexed task set over a
//! scoped worker pool (built on `crossbeam::thread::scope`, so tasks may
//! borrow stack data) with per-worker deques and half-range stealing.
//!
//! Determinism contract: `run(n, f)` always returns `f(0), f(1), …, f(n-1)`
//! **in index order**, and every task executes exactly once. Because the
//! homomorphic operations themselves draw no randomness, any computation
//! expressed as independent per-index tasks produces bit-identical output
//! regardless of the worker count or the scheduling interleaving. Paths that
//! *do* need randomness (encryption) fork an independent, index-keyed RNG
//! stream per task — see [`crate::image::EncryptedMap::encrypt_images_par`].

use hesgx_obs::{counters, Profiler, Recorder};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Packs a `[lo, hi)` index range into one atomic word.
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

/// Inverse of [`pack`].
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Per-worker claimable index ranges with lock-free half-range stealing.
struct Ranges {
    slots: Vec<AtomicU64>,
}

impl Ranges {
    /// Splits `0..n` evenly across `workers` slots.
    fn new(n: u32, workers: usize) -> Self {
        let per = n / workers as u32;
        let extra = n % workers as u32;
        let mut slots = Vec::with_capacity(workers);
        let mut lo = 0u32;
        for w in 0..workers as u32 {
            let len = per + u32::from(w < extra);
            slots.push(AtomicU64::new(pack(lo, lo + len)));
            lo += len;
        }
        Ranges { slots }
    }

    /// Claims the next index from worker `w`'s own range.
    fn pop_own(&self, w: usize) -> Option<u32> {
        let slot = &self.slots[w];
        loop {
            let cur = slot.load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            if slot
                .compare_exchange_weak(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(lo);
            }
        }
    }

    /// Steals the upper half of some victim's remaining range into worker
    /// `w`'s slot, returning the first stolen index. `None` means every
    /// slot was empty at the time of the scan.
    fn steal_into(&self, w: usize) -> Option<u32> {
        let workers = self.slots.len();
        for offset in 1..workers {
            let v = (w + offset) % workers;
            let slot = &self.slots[v];
            loop {
                let cur = slot.load(Ordering::Acquire);
                let (lo, hi) = unpack(cur);
                if lo >= hi {
                    break;
                }
                // Floor split: the stolen upper half `[mid, hi)` is always
                // non-empty (even when one task remains), and never overlaps
                // the `[lo, mid)` the victim keeps.
                let mid = lo + (hi - lo) / 2;
                if slot
                    .compare_exchange(cur, pack(lo, mid), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // `mid` is consumed now; the rest becomes our own range
                    // (our slot is empty, and thieves only ever CAS it, so a
                    // plain store cannot lose claimed indices).
                    self.slots[w].store(pack(mid + 1, hi), Ordering::Release);
                    return Some(mid);
                }
            }
        }
        None
    }
}

/// A scoped work-stealing executor for indexed task sets.
///
/// `threads == 1` runs tasks inline on the calling thread with zero
/// synchronization — the serial fast path the determinism tests compare
/// against.
#[derive(Debug, Clone)]
pub struct ParExec {
    threads: usize,
    recorder: Recorder,
}

impl Default for ParExec {
    /// One worker per available core.
    fn default() -> Self {
        ParExec::new(0)
    }
}

impl ParExec {
    /// Creates an executor with `threads` workers; `0` means one per
    /// available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        ParExec {
            threads,
            recorder: Recorder::disabled(),
        }
    }

    /// A single-threaded (serial) executor.
    pub fn serial() -> Self {
        ParExec {
            threads: 1,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: each `run` bumps `par.tasks` by
    /// its task count. The counter depends only on the submitted work, never
    /// on the worker count, so it is stable across pool sizes.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), …, f(n-1)` across the pool and returns the results in
    /// index order. Every index is executed exactly once; scheduling only
    /// affects which worker runs which index, never the result vector.
    ///
    /// # Panics
    ///
    /// Propagates the first panicking task; panics if `n` exceeds `u32::MAX`
    /// (far beyond any feature-map size here).
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        self.recorder.incr(counters::PAR_TASKS, n as u64);
        self.recorder.observe("par.batch", n as u64);
        // Captured on the submitting thread: worker threads have no ambient
        // profiler of their own, so each re-roots at `par.worker[w]` under
        // the caller's tree (the deterministic export merges the workers).
        let profiler = Profiler::current();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            let _scope = profiler.worker_scope(0);
            return (0..n).map(f).collect();
        }
        assert!(u32::try_from(n).is_ok(), "task set too large");
        let ranges = Ranges::new(n as u32, workers);
        let results: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
        let profiler = &profiler;
        let run_worker = |w: usize| {
            let _scope = profiler.worker_scope(w);
            while let Some(idx) = ranges.pop_own(w).or_else(|| ranges.steal_into(w)) {
                let idx = idx as usize;
                if results[idx].set(f(idx)).is_err() {
                    unreachable!("index {idx} claimed twice");
                }
            }
        };
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (1..workers)
                .map(|w| s.spawn(move |_| run_worker(w)))
                .collect();
            run_worker(0);
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        })
        .expect("scope itself does not fail");
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index executed"))
            .collect()
    }

    /// Fallible variant of [`ParExec::run`]: collects `Ok` values in index
    /// order, or returns the error of the **lowest-indexed** failing task —
    /// the same error a serial left-to-right loop would surface.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed task error, if any.
    pub fn try_run<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send + Sync,
        E: Send + Sync,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        let mut out = Vec::with_capacity(n);
        for result in self.run(n, f) {
            out.push(result?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_in_index_order_every_pool_size() {
        let expected: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7, 8] {
            let pool = ParExec::new(threads);
            assert_eq!(pool.run(257, |i| i * 3 + 1), expected, "{threads} threads");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 1000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = ParExec::new(4);
        pool.run(n, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_thread_request_uses_available_cores() {
        assert!(ParExec::new(0).threads() >= 1);
        assert_eq!(ParExec::serial().threads(), 1);
    }

    #[test]
    fn handles_n_smaller_than_pool() {
        let pool = ParExec::new(8);
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 9), vec![9]);
    }

    #[test]
    fn try_run_reports_lowest_index_error() {
        let pool = ParExec::new(4);
        let err = pool
            .try_run(100, |i| if i % 7 == 3 { Err(i) } else { Ok(i) })
            .unwrap_err();
        assert_eq!(err, 3, "serial order error wins");
        let ok: Result<Vec<usize>, usize> = pool.try_run(10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recorder_counts_tasks_independent_of_pool_size() {
        for threads in [1, 2, 4] {
            let rec = Recorder::enabled();
            let pool = ParExec::new(threads).with_recorder(rec.clone());
            pool.run(100, |i| i);
            pool.run(28, |i| i);
            assert_eq!(rec.counter(counters::PAR_TASKS), 128, "{threads} threads");
        }
    }

    #[test]
    fn stealing_covers_skewed_workloads() {
        // Worker 0's initial range holds all the slow tasks; the others must
        // steal them for the run to finish. Correctness (not timing) check.
        let pool = ParExec::new(4);
        let out = pool.run(64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }
}
