//! The pure-HE baseline: CryptoNets-style inference (paper [16], the
//! `Encrypted` scheme of Fig. 8).
//!
//! Pipeline: homomorphic convolution → square activation (ciphertext ×
//! ciphertext + relinearization) → scaled mean-pool (sums only) → homomorphic
//! fully connected layer. The entire computation happens under encryption;
//! the user decrypts the ten logits and takes the argmax.

use crate::crt::{CrtCiphertext, CrtKeys, CrtPlainSystem};
use crate::image::EncryptedMap;
use crate::ops::{self, OpCounter};
use crate::weights::WeightBank;
use hesgx_bfv::error::Result;
use hesgx_bfv::prelude::PolyArena;
use hesgx_crypto::rng::ChaChaRng;
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};

/// The CryptoNets-style HE-only inference engine.
#[derive(Debug)]
pub struct CryptoNets {
    sys: CrtPlainSystem,
    model: QuantizedCnn,
    /// Conv weights/biases prepared once at construction — no request
    /// re-derives Shoup constants or `Δ·c` residues.
    conv_bank: WeightBank,
    /// FC weights/biases prepared once at construction.
    fc_bank: WeightBank,
    /// Session buffer pool shared by every inference this engine runs.
    arena: PolyArena,
}

impl CryptoNets {
    /// Builds the engine: selects plaintext moduli from the model's range
    /// report and constructs the per-modulus FV systems.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    ///
    /// # Panics
    ///
    /// Panics when the model is not quantized for the CryptoNets pipeline.
    pub fn new(model: QuantizedCnn, poly_degree: usize) -> Result<Self> {
        assert_eq!(
            model.pipeline,
            QuantPipeline::CryptoNets,
            "model must be quantized for the CryptoNets pipeline"
        );
        let report = model.range_report();
        // Depth-1 pipeline (the square) — small CRT moduli keep the
        // multiplication noise growth manageable.
        let sys = CrtPlainSystem::for_range_deep(poly_degree, report.required_plain_bits)?;
        let conv_bank = WeightBank::prepare(&sys, &model.conv_weights, &model.conv_bias)?;
        let fc_bank = WeightBank::prepare(&sys, &model.fc_weights, &model.fc_bias)?;
        Ok(CryptoNets {
            sys,
            model,
            conv_bank,
            fc_bank,
            arena: PolyArena::new(),
        })
    }

    /// The underlying CRT system (key generation, encryption).
    pub fn system(&self) -> &CrtPlainSystem {
        &self.sys
    }

    /// The quantized model.
    pub fn model(&self) -> &QuantizedCnn {
        &self.model
    }

    /// Encrypts a batch of quantized images.
    ///
    /// # Errors
    ///
    /// Propagates encryption failures.
    // hesgx-lint: allow(secret-pub-api, reason = "pure-HE baseline runs client and server in one process; the caller holds its own keys")
    pub fn encrypt_batch(
        &self,
        images: &[Vec<i64>],
        keys: &CrtKeys,
        rng: &mut ChaChaRng,
    ) -> Result<EncryptedMap> {
        EncryptedMap::encrypt_images(&self.sys, images, self.model.in_side, &keys.public, rng)
    }

    /// Runs the full encrypted inference; returns one ciphertext per class
    /// logit (batch in the slots) and the operation counts.
    ///
    /// # Errors
    ///
    /// Propagates homomorphic-operation failures.
    // hesgx-lint: allow(secret-pub-api, reason = "pure-HE baseline runs client and server in one process; the caller holds its own keys")
    pub fn infer(
        &self,
        input: &EncryptedMap,
        keys: &CrtKeys,
    ) -> Result<(Vec<CrtCiphertext>, OpCounter)> {
        let m = &self.model;
        let mut counter = OpCounter::default();
        let conv = ops::he_conv2d_cached(
            &self.sys,
            input,
            &self.conv_bank,
            m.conv_out,
            m.kernel,
            1,
            &mut counter,
            &self.arena,
        )?;
        let squared = ops::he_square_activation(&self.sys, &conv, &keys.evaluation, &mut counter)?;
        // The conv map is consumed; its buffers seed the pool accumulators.
        conv.recycle(&self.arena);
        let pooled =
            ops::he_scaled_mean_pool(&self.sys, &squared, m.window, &mut counter, &self.arena)?;
        squared.recycle(&self.arena);
        let logits = ops::he_fully_connected_cached(
            &self.sys,
            &pooled,
            &self.fc_bank,
            m.classes,
            &mut counter,
            &self.arena,
        )?;
        pooled.recycle(&self.arena);
        Ok((logits, counter))
    }

    /// Decrypts logits and returns the predicted class per batch element.
    ///
    /// # Errors
    ///
    /// Propagates decryption failures.
    // hesgx-lint: allow(secret-pub-api, reason = "pure-HE baseline runs client and server in one process; the caller holds its own keys")
    pub fn decrypt_predictions(
        &self,
        logits: &[CrtCiphertext],
        keys: &CrtKeys,
        batch: usize,
    ) -> Result<Vec<usize>> {
        let mut per_class = Vec::with_capacity(logits.len());
        for ct in logits {
            per_class.push(self.sys.decrypt_slots(ct, &keys.secret)?);
        }
        let mut predictions = Vec::with_capacity(batch);
        for b in 0..batch {
            let mut best = 0;
            for (class, slots) in per_class.iter().enumerate() {
                if slots[b] > per_class[best][b] {
                    best = class;
                }
            }
            predictions.push(best);
        }
        Ok(predictions)
    }

    /// Decrypts raw logits: `[batch][classes]`.
    ///
    /// # Errors
    ///
    /// Propagates decryption failures.
    // hesgx-lint: allow(secret-pub-api, reason = "pure-HE baseline runs client and server in one process; the caller holds its own keys")
    pub fn decrypt_logits(
        &self,
        logits: &[CrtCiphertext],
        keys: &CrtKeys,
        batch: usize,
    ) -> Result<Vec<Vec<i128>>> {
        let mut per_class = Vec::with_capacity(logits.len());
        for ct in logits {
            per_class.push(self.sys.decrypt_slots(ct, &keys.secret)?);
        }
        Ok((0..batch)
            .map(|b| per_class.iter().map(|slots| slots[b]).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down CryptoNets model (8×8 input) whose encrypted inference
    /// must match the exact-integer reference bit for bit.
    fn small_model() -> QuantizedCnn {
        QuantizedCnn {
            pipeline: QuantPipeline::CryptoNets,
            in_side: 8,
            conv_out: 2,
            kernel: 3,
            window: 2,
            classes: 3,
            conv_weights: (0..18).map(|i| (i % 7) as i64 - 3).collect(),
            conv_bias: vec![5, -9],
            fc_weights: (0..3 * 18).map(|i| (i % 5) as i64 - 2).collect(),
            fc_bias: vec![100, -50, 0],
            weight_scale: 8,
            fc_scale: 8,
            act_scale: 16,
        }
    }

    #[test]
    fn encrypted_inference_matches_integer_reference() {
        let model = small_model();
        let engine = CryptoNets::new(model.clone(), 256).unwrap();
        let mut rng = ChaChaRng::from_seed(71);
        let keys = engine.system().generate_keys(&mut rng);
        let images: Vec<Vec<i64>> = (0..3)
            .map(|b| (0..64).map(|p| ((p * 3 + b * 5) % 16) as i64).collect())
            .collect();
        let enc = engine.encrypt_batch(&images, &keys, &mut rng).unwrap();
        let (logits, counter) = engine.infer(&enc, &keys).unwrap();
        let dec = engine.decrypt_logits(&logits, &keys, 3).unwrap();
        for (b, img) in images.iter().enumerate() {
            let expect: Vec<i128> = model.forward_ints(img).iter().map(|&v| v as i128).collect();
            assert_eq!(dec[b], expect, "batch {b} logits must match reference");
        }
        // Operation counts: conv = out_side² * k² * channels multiplies.
        assert_eq!(counter.ct_pt_mul as usize, 2 * 36 * 9 + 3 * 18);
        assert_eq!(counter.ct_ct_mul as usize, 2 * 36);
        assert_eq!(counter.relin as usize, 2 * 36);
        // Every weight form was prepared at construction, none per request.
        assert_eq!(counter.weight_prep, 0);
    }

    #[test]
    fn predictions_follow_logits() {
        let model = small_model();
        let engine = CryptoNets::new(model.clone(), 256).unwrap();
        let mut rng = ChaChaRng::from_seed(72);
        let keys = engine.system().generate_keys(&mut rng);
        let images = vec![(0..64).map(|p| (p % 16) as i64).collect::<Vec<i64>>()];
        let enc = engine.encrypt_batch(&images, &keys, &mut rng).unwrap();
        let (logits, _) = engine.infer(&enc, &keys).unwrap();
        let preds = engine.decrypt_predictions(&logits, &keys, 1).unwrap();
        assert_eq!(preds[0], model.predict_ints(&images[0]));
    }

    #[test]
    fn modulus_selection_covers_model_range() {
        let model = small_model();
        let engine = CryptoNets::new(model.clone(), 256).unwrap();
        let bound = model.range_report().logit_bound as u128;
        assert!(engine.system().modulus_product() > 2 * bound);
    }
}
