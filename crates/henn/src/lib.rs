//! # hesgx-henn
//!
//! Homomorphic neural-network layers over `hesgx-bfv`, and the pure-HE
//! baseline the paper compares against (`Encrypted` in Fig. 8 — the
//! CryptoNets scheme of reference [16]).
//!
//! Data layout: an encrypted feature map holds **one ciphertext per pixel
//! position** with the image batch riding in the SIMD slots
//! ([`image::EncryptedMap`]), so all per-image costs amortize over
//! `batchSize` exactly as in the paper's experiments (§V-B). Values larger
//! than one plaintext modulus are handled by plaintext-CRT
//! ([`crt::CrtPlainSystem`]), the CryptoNets technique.
//!
//! Layers ([`ops`]): homomorphic convolution and fully connected layers
//! (ciphertext × plaintext-scalar weights), scaled mean-pooling (window sums —
//! HE cannot divide, paper §III-A), and the square activation (ciphertext ×
//! ciphertext multiply + relinearization). Every operation is counted in the
//! paper's `C×P` / `C+C` terminology for the Fig. 4 analysis.
//!
//! Correctness contract: encrypted inference must reproduce
//! [`hesgx_nn::quantize::QuantizedCnn::forward_ints`] bit for bit — asserted
//! by this crate's tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx;
pub mod crt;
pub mod cryptonets;
pub mod image;
pub mod ops;
pub mod par;
pub mod weights;

pub use crt::{CrtCiphertext, CrtKeys, CrtPlainSystem};
pub use cryptonets::CryptoNets;
pub use image::EncryptedMap;
pub use ops::OpCounter;
pub use par::ParExec;
