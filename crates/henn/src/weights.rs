//! Model-weight encoding into the homomorphic plaintext space — the
//! preliminary step the edge server performs once per model (paper §IV-B) and
//! the workload of Fig. 3 ("the encoding time has a linear relationship with
//! the weights' number").

use crate::crt::{CrtPlainSystem, CrtPreparedBias, CrtPreparedScalar};
use hesgx_bfv::encoding::IntegerEncoder;
use hesgx_bfv::error::Result;
use hesgx_bfv::plaintext::{NttPlaintext, Plaintext};

/// The plaintext encodings of one weight across every CRT modulus.
#[derive(Debug, Clone)]
pub struct EncodedWeight {
    /// One plaintext per plaintext modulus.
    pub parts: Vec<Plaintext>,
}

/// One weight cached in evaluation (NTT) form for every CRT modulus — the
/// centered lift and forward transform that a per-request `mul_plain` would
/// redo, computed once at provisioning and reused by
/// [`CrtPlainSystem::mul_plain_ntt_part`].
#[derive(Debug, Clone)]
pub struct EncodedWeightNtt {
    /// One cached transform per plaintext modulus.
    pub parts: Vec<NttPlaintext>,
}

/// Caches the evaluation form of already-encoded weights.
///
/// # Errors
///
/// Propagates transform validation failures.
pub fn prepare_encoded_weights(
    sys: &CrtPlainSystem,
    encoded: &[EncodedWeight],
) -> Result<Vec<EncodedWeightNtt>> {
    encoded
        .iter()
        .map(|w| {
            let parts: Result<Vec<NttPlaintext>> = w
                .parts
                .iter()
                .enumerate()
                .map(|(i, p)| sys.transform_plain_part(p, i))
                .collect();
            Ok(EncodedWeightNtt { parts: parts? })
        })
        .collect()
}

/// All prepared operands of one linear layer (conv or FC): scalar weights
/// with their per-limb Shoup constants and biases with their `Δ·c` residues,
/// computed once at provisioning. The cached layer kernels in
/// [`crate::ops`] consume a bank instead of raw integers, so no request
/// ever re-derives a weight form.
#[derive(Debug, Clone)]
pub struct WeightBank {
    /// Prepared multiply operands, in the layer's flattened weight order.
    pub scalars: Vec<CrtPreparedScalar>,
    /// Prepared bias operands, one per output channel / neuron.
    pub biases: Vec<CrtPreparedBias>,
}

impl WeightBank {
    /// Prepares every weight and bias of one layer.
    ///
    /// # Errors
    ///
    /// Fails when a weight exceeds a plaintext modulus (never the case for
    /// quantized model weights).
    pub fn prepare(sys: &CrtPlainSystem, weights: &[i64], biases: &[i64]) -> Result<WeightBank> {
        Ok(WeightBank {
            scalars: weights
                .iter()
                .map(|&w| sys.prepare_scalar(w))
                .collect::<Result<_>>()?,
            biases: biases
                .iter()
                .map(|&b| sys.prepare_bias(b))
                .collect::<Result<_>>()?,
        })
    }
}

/// Encodes a model's integer weights into per-modulus plaintexts using the
/// SEAL-style integer encoder (low-norm digit expansion).
///
/// Returns one [`EncodedWeight`] per input weight. Encoding time is linear in
/// the number of weights and independent of the kernel-shape split that
/// produced them — the two claims of Fig. 3(a)/(b).
///
/// # Errors
///
/// Fails when a weight exceeds the encoder's representable range.
pub fn encode_weights(sys: &CrtPlainSystem, weights: &[i64]) -> Result<Vec<EncodedWeight>> {
    let degree = sys.contexts()[0].poly_degree();
    let encoders: Vec<IntegerEncoder> = sys
        .moduli()
        .iter()
        .map(|&t| IntegerEncoder::new(t, degree))
        .collect();
    weights
        .iter()
        .map(|&w| {
            let parts: Result<Vec<Plaintext>> = encoders.iter().map(|e| e.encode(w)).collect();
            Ok(EncodedWeight { parts: parts? })
        })
        .collect()
}

/// Counts the weights of a conv layer configuration: `kernels` kernels of
/// `k × k` values plus one bias each (the paper's Fig. 3 workload generator:
/// "The weights are divided into the value of kernels and bias").
pub fn conv_weight_count(kernels: usize, kernel_side: usize) -> usize {
    kernels * kernel_side * kernel_side + kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_every_weight_for_every_modulus() {
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let weights: Vec<i64> = (-10..10).collect();
        let encoded = encode_weights(&sys, &weights).unwrap();
        assert_eq!(encoded.len(), 20);
        assert!(encoded.iter().all(|e| e.parts.len() == 2));
    }

    #[test]
    fn weight_count_formula() {
        // 11 kernels of 3×3 -> 99 weights + 11 biases.
        assert_eq!(conv_weight_count(11, 3), 110);
        assert_eq!(conv_weight_count(26, 5), 26 * 25 + 26);
    }

    #[test]
    fn weight_bank_prepares_every_operand() {
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let weights: Vec<i64> = (-6..6).collect();
        let biases = vec![7i64, -11];
        let bank = WeightBank::prepare(&sys, &weights, &biases).unwrap();
        assert_eq!(bank.scalars.len(), 12);
        assert_eq!(bank.biases.len(), 2);
        assert!(bank.scalars.iter().all(|s| {
            (0..sys.part_count()).all(|i| {
                let _ = s.part(i);
                true
            })
        }));
    }

    #[test]
    fn prepared_encoded_weights_cover_every_part() {
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let encoded = encode_weights(&sys, &[-42, 0, 1234]).unwrap();
        let cached = prepare_encoded_weights(&sys, &encoded).unwrap();
        assert_eq!(cached.len(), 3);
        assert!(cached.iter().all(|w| w.parts.len() == 2));
    }

    #[test]
    fn encoded_weights_decode_back() {
        let sys = CrtPlainSystem::new(256, &[12289]).unwrap();
        let encoder = IntegerEncoder::new(12289, 256);
        let encoded = encode_weights(&sys, &[-42, 0, 1234]).unwrap();
        assert_eq!(encoder.decode(&encoded[0].parts[0]).unwrap(), -42);
        assert_eq!(encoder.decode(&encoded[1].parts[0]).unwrap(), 0);
        assert_eq!(encoder.decode(&encoded[2].parts[0]).unwrap(), 1234);
    }
}
