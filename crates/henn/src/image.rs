//! Encrypted feature maps: the data layout of the encrypted pipelines.
//!
//! One [`CrtCiphertext`] per pixel position; the SIMD slots carry the image
//! batch. Encrypting a batch of `B` 28×28 images therefore costs 784
//! CRT-ciphertext encryptions regardless of `B` — the throughput trick of the
//! paper's §V-B / §VIII (`batchSize = 10` in all experiments).

use crate::crt::{CrtCiphertext, CrtPlainSystem};
use crate::par::ParExec;
use hesgx_bfv::error::Result;
use hesgx_bfv::prelude::{PolyArena, PublicKey, SecretKey};
use hesgx_crypto::rng::ChaChaRng;

/// An encrypted feature map of shape `[channels][height][width]`, one
/// ciphertext per cell, batch in the slots.
#[derive(Debug, Clone)]
pub struct EncryptedMap {
    channels: usize,
    height: usize,
    width: usize,
    cells: Vec<CrtCiphertext>,
}

impl EncryptedMap {
    /// Builds a map from parts.
    ///
    /// # Panics
    ///
    /// Panics when `cells.len() != channels * height * width`.
    pub fn new(channels: usize, height: usize, width: usize, cells: Vec<CrtCiphertext>) -> Self {
        assert_eq!(cells.len(), channels * height * width);
        EncryptedMap {
            channels,
            height,
            width,
            cells,
        }
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// The ciphertext at `[c][y][x]`.
    pub fn cell(&self, c: usize, y: usize, x: usize) -> &CrtCiphertext {
        &self.cells[(c * self.height + y) * self.width + x]
    }

    /// All cells in row-major order.
    pub fn cells(&self) -> &[CrtCiphertext] {
        &self.cells
    }

    /// Total serialized bytes (transfer/EPC modeling).
    pub fn byte_len(&self) -> usize {
        self.cells.iter().map(|c| c.byte_len()).sum()
    }

    /// Returns every limb buffer of a consumed map to `arena` — the
    /// stage-to-stage recycling of the inference pipeline: once a layer has
    /// produced its output map, the input map's buffers feed the next
    /// layer's accumulator copies.
    pub fn recycle(self, arena: &PolyArena) {
        for cell in self.cells {
            cell.recycle(arena);
        }
    }

    /// Encrypts a batch of quantized images (each `side*side` pixels).
    ///
    /// # Errors
    ///
    /// Fails when the batch exceeds the slot count or encryption fails.
    ///
    /// # Panics
    ///
    /// Panics when an image has the wrong pixel count.
    pub fn encrypt_images(
        sys: &CrtPlainSystem,
        images: &[Vec<i64>],
        side: usize,
        public: &[PublicKey],
        rng: &mut ChaChaRng,
    ) -> Result<EncryptedMap> {
        let mut cells = Vec::with_capacity(side * side);
        for pixel in 0..side * side {
            let slots: Vec<i64> = images
                .iter()
                .map(|img| {
                    assert_eq!(img.len(), side * side, "image size mismatch");
                    img[pixel]
                })
                .collect();
            cells.push(sys.encrypt_slots(&slots, public, rng)?);
        }
        Ok(EncryptedMap::new(1, side, side, cells))
    }

    /// Parallel batch encryption: one task per pixel position, scheduled on
    /// `pool`.
    ///
    /// Each cell encrypts with its **own fork** of the caller's ChaCha20
    /// stream, keyed by the pixel index (`enc-cell-{i}`), so the ciphertexts
    /// are bit-for-bit identical for every thread count and scheduling
    /// order. The forked streams are what make this safe: no task ever
    /// shares RNG state with another. Note the stream layout differs from
    /// the sequential draws of [`EncryptedMap::encrypt_images`], so the two
    /// entry points produce different (equally valid) ciphertexts for the
    /// same seed; `encrypt_images_par` agrees with *itself* across pool
    /// sizes, which is the determinism contract the property tests pin down.
    ///
    /// The caller's `rng` is borrowed immutably — forking never advances the
    /// parent stream.
    ///
    /// # Errors
    ///
    /// Fails when the batch exceeds the slot count or encryption fails.
    ///
    /// # Panics
    ///
    /// Panics when an image has the wrong pixel count.
    pub fn encrypt_images_par(
        sys: &CrtPlainSystem,
        images: &[Vec<i64>],
        side: usize,
        public: &[PublicKey],
        rng: &ChaChaRng,
        pool: &ParExec,
    ) -> Result<EncryptedMap> {
        let base = rng.fork("enc-map");
        let cells = pool.try_run(side * side, |pixel| {
            let mut cell_rng = base.fork(&format!("enc-cell-{pixel}"));
            let slots: Vec<i64> = images
                .iter()
                .map(|img| {
                    assert_eq!(img.len(), side * side, "image size mismatch");
                    img[pixel]
                })
                .collect();
            sys.encrypt_slots(&slots, public, &mut cell_rng)
        })?;
        Ok(EncryptedMap::new(1, side, side, cells))
    }

    /// Decrypts every cell for the first `batch` slots: returns
    /// `[batch][channels*height*width]` signed values.
    ///
    /// # Errors
    ///
    /// Propagates decryption failures.
    // hesgx-lint: allow(secret-pub-api, reason = "user-side decryption with the user's own key copy")
    pub fn decrypt_all(
        &self,
        sys: &CrtPlainSystem,
        secret: &[SecretKey],
        batch: usize,
    ) -> Result<Vec<Vec<i128>>> {
        let mut out = vec![Vec::with_capacity(self.cells.len()); batch];
        for cell in &self.cells {
            let slots = sys.decrypt_slots(cell, secret)?;
            for (b, row) in out.iter_mut().enumerate() {
                row.push(slots[b]);
            }
        }
        Ok(out)
    }

    /// Parallel [`EncryptedMap::decrypt_all`]: one decryption task per cell.
    /// Decryption draws no randomness, so the result is identical to the
    /// serial version for any pool size.
    ///
    /// # Errors
    ///
    /// Propagates decryption failures.
    // hesgx-lint: allow(secret-pub-api, reason = "user-side decryption with the user's own key copy")
    pub fn decrypt_all_par(
        &self,
        sys: &CrtPlainSystem,
        secret: &[SecretKey],
        batch: usize,
        pool: &ParExec,
    ) -> Result<Vec<Vec<i128>>> {
        let per_cell = pool.try_run(self.cells.len(), |i| {
            sys.decrypt_slots(&self.cells[i], secret)
        })?;
        let mut out = vec![Vec::with_capacity(self.cells.len()); batch];
        for slots in &per_cell {
            for (b, row) in out.iter_mut().enumerate() {
                row.push(slots[b]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crt::CrtPlainSystem;

    #[test]
    fn encrypt_decrypt_image_batch() {
        let sys = CrtPlainSystem::new(256, &[12289]).unwrap();
        let mut rng = ChaChaRng::from_seed(51);
        let keys = sys.generate_keys(&mut rng);
        let side = 4;
        let images: Vec<Vec<i64>> = (0..3)
            .map(|b| (0..side * side).map(|p| (b * 16 + p) as i64 % 16).collect())
            .collect();
        let map =
            EncryptedMap::encrypt_images(&sys, &images, side, &keys.public, &mut rng).unwrap();
        assert_eq!(map.shape(), (1, side, side));
        let back = map.decrypt_all(&sys, &keys.secret, 3).unwrap();
        for (b, img) in images.iter().enumerate() {
            let expect: Vec<i128> = img.iter().map(|&v| v as i128).collect();
            assert_eq!(back[b], expect, "batch {b}");
        }
    }
}
