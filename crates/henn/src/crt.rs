//! Plaintext-CRT arithmetic over FV — the CryptoNets technique (paper [16])
//! for dynamic ranges larger than one plaintext modulus.
//!
//! A logical value is encrypted once per plaintext modulus `t_i` (all moduli
//! prime and `≡ 1 mod 2n`, so every part supports SIMD batching). Homomorphic
//! operations run component-wise; decryption CRT-combines the per-modulus
//! residues back into a signed integer in `(-T/2, T/2)` with `T = Π t_i`.
//!
//! The batch (SIMD) dimension carries the image batch, exactly as the paper's
//! experiments run `batchSize = 10` images at once (§V-B, §VIII).

use hesgx_bfv::prelude::*;
use hesgx_bfv::{arith, context::BfvContext};
use hesgx_crypto::rng::ChaChaRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A logical ciphertext: one FV ciphertext per plaintext modulus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrtCiphertext {
    pub(crate) parts: Vec<Ciphertext>,
}

impl CrtCiphertext {
    /// Number of CRT parts.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Borrows one component ciphertext (for serialization / auditing).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.part_count()`.
    pub fn part(&self, i: usize) -> &Ciphertext {
        &self.parts[i]
    }

    /// Approximate serialized size in bytes (for transfer/EPC modeling).
    pub fn byte_len(&self) -> usize {
        self.parts.iter().map(|c| c.byte_len()).sum()
    }

    /// Largest component ciphertext size (2 fresh, 3 after a multiply).
    pub fn size(&self) -> usize {
        self.parts.iter().map(|c| c.size()).max().unwrap_or(0)
    }

    /// A copy whose limb buffers are drawn from `arena` instead of the
    /// global allocator. Bit-identical to [`Clone::clone`].
    pub fn arena_copy(&self, arena: &PolyArena) -> CrtCiphertext {
        CrtCiphertext {
            parts: self
                .parts
                .iter()
                .map(|p| arena.copy_ciphertext(p))
                .collect(),
        }
    }

    /// Returns every limb buffer of a consumed ciphertext to `arena`.
    pub fn recycle(self, arena: &PolyArena) {
        for part in self.parts {
            arena.recycle_ciphertext(part);
        }
    }
}

/// A scalar weight prepared for every CRT part: the per-part `rem_euclid`
/// centering plus the per-limb Shoup precomputation that
/// [`CrtPlainSystem::mul_scalar`] redoes on every call, hoisted to
/// provisioning time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrtPreparedScalar {
    pub(crate) parts: Vec<PlainScalar>,
}

impl CrtPreparedScalar {
    /// Borrows the prepared form for CRT part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn part(&self, i: usize) -> &PlainScalar {
        &self.parts[i]
    }
}

/// A bias constant prepared for every CRT part: the per-limb `Δ·c mod qi`
/// values that [`CrtPlainSystem::add_scalar`] recomputes (plus a full
/// polynomial allocation) on every call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrtPreparedBias {
    pub(crate) parts: Vec<PreparedBias>,
}

impl CrtPreparedBias {
    /// Borrows the prepared form for CRT part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn part(&self, i: usize) -> &PreparedBias {
        &self.parts[i]
    }
}

/// Key material for every CRT part.
#[derive(Debug, Clone)]
pub struct CrtKeys {
    /// Public keys, one per modulus.
    pub public: Vec<PublicKey>,
    /// Secret keys, one per modulus.
    pub secret: Vec<SecretKey>,
    /// Relinearization keys, one per modulus.
    pub evaluation: Vec<EvaluationKeys>,
}

/// The multi-modulus FV system: contexts, encoders, and evaluators for each
/// plaintext modulus.
#[derive(Debug)]
pub struct CrtPlainSystem {
    moduli: Vec<u64>,
    contexts: Vec<Arc<BfvContext>>,
    encoders: Vec<BatchEncoder>,
    evaluators: Vec<Evaluator>,
    product: u128,
}

impl CrtPlainSystem {
    /// Builds a system over explicit plaintext moduli (each prime,
    /// `≡ 1 mod 2n`).
    ///
    /// # Errors
    ///
    /// Propagates parameter/batching validation failures.
    pub fn new(poly_degree: usize, moduli: &[u64]) -> hesgx_bfv::error::Result<Self> {
        let mut contexts = Vec::new();
        let mut encoders = Vec::new();
        let mut evaluators = Vec::new();
        for &t in moduli {
            let params = EncryptionParameters::builder()
                .poly_degree(poly_degree)
                .plain_modulus(t)
                .build()?;
            let ctx = BfvContext::new(params.clone())?;
            encoders.push(BatchEncoder::new(&params)?);
            evaluators.push(Evaluator::new(ctx.clone()));
            contexts.push(ctx);
        }
        let product = moduli.iter().map(|&t| t as u128).product();
        Ok(CrtPlainSystem {
            moduli: moduli.to_vec(),
            contexts,
            encoders,
            evaluators,
            product,
        })
    }

    /// Builds a system whose modulus product covers `required_bits` of signed
    /// dynamic range (from [`hesgx_nn::quantize::RangeReport`]).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn for_range(poly_degree: usize, required_bits: u32) -> hesgx_bfv::error::Result<Self> {
        let step = 2 * poly_degree as u64;
        // One modulus when the range fits a single prime below the 2^30
        // validation cap — every homomorphic operation then runs once instead
        // of once per CRT part. Only sound for linear (ct × plaintext)
        // pipelines: ciphertext–ciphertext multiplication carries an
        // `r_t·‖m‖ ≈ t²` noise floor that a large t would blow through; deep
        // pipelines must use [`CrtPlainSystem::for_range_deep`].
        if required_bits <= 28 {
            let lower = (1u64 << (required_bits + 1)).max(40_000);
            let t = arith::smallest_prime_congruent_one_above(lower, step);
            return Self::new(poly_degree, &[t]);
        }
        Self::for_range_deep(poly_degree, required_bits)
    }

    /// Like [`CrtPlainSystem::for_range`] but always composes the range from
    /// ~16-bit moduli, keeping the per-part noise growth of
    /// ciphertext–ciphertext multiplication small. Use this for pipelines
    /// with multiplicative depth (the CryptoNets baseline).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn for_range_deep(
        poly_degree: usize,
        required_bits: u32,
    ) -> hesgx_bfv::error::Result<Self> {
        let step = 2 * poly_degree as u64;
        let mut moduli = Vec::new();
        let mut bits = 0f64;
        let mut lower = 40_000u64;
        while bits < required_bits as f64 + 1.0 {
            let t = arith::smallest_prime_congruent_one_above(lower, step);
            moduli.push(t);
            bits += (t as f64).log2();
            lower = t;
        }
        Self::new(poly_degree, &moduli)
    }

    /// The plaintext moduli.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Number of CRT parts (limbs) per logical ciphertext.
    pub fn part_count(&self) -> usize {
        self.moduli.len()
    }

    /// The per-part contexts.
    pub fn contexts(&self) -> &[Arc<BfvContext>] {
        &self.contexts
    }

    /// The modulus product `T` (signed range is `±T/2`).
    pub fn modulus_product(&self) -> u128 {
        self.product
    }

    /// SIMD slots per ciphertext (= ring degree).
    pub fn slot_count(&self) -> usize {
        self.contexts[0].poly_degree()
    }

    /// Generates key material for all parts.
    pub fn generate_keys(&self, rng: &mut ChaChaRng) -> CrtKeys {
        let mut public = Vec::new();
        let mut secret = Vec::new();
        let mut evaluation = Vec::new();
        for ctx in &self.contexts {
            let keygen = KeyGenerator::new(ctx.clone(), rng);
            public.push(keygen.public_key());
            secret.push(keygen.secret_key());
            evaluation.push(keygen.evaluation_keys(rng));
        }
        CrtKeys {
            public,
            secret,
            evaluation,
        }
    }

    /// Encrypts one signed value per SIMD slot.
    ///
    /// # Errors
    ///
    /// Fails when more values than slots are supplied.
    pub fn encrypt_slots(
        &self,
        values: &[i64],
        public: &[PublicKey],
        rng: &mut ChaChaRng,
    ) -> hesgx_bfv::error::Result<CrtCiphertext> {
        let mut parts = Vec::with_capacity(self.moduli.len());
        for (i, ctx) in self.contexts.iter().enumerate() {
            let t = self.moduli[i];
            // Residues mod t_i (signed lift handled per modulus).
            let residues: Vec<u64> = values
                .iter()
                .map(|&v| {
                    let r = v.rem_euclid(t as i64) as u64;
                    r % t
                })
                .collect();
            let pt = self.encoders[i].encode(&residues)?;
            let enc = Encryptor::new(ctx.clone(), public[i].clone());
            parts.push(enc.encrypt(&pt, rng)?);
        }
        Ok(CrtCiphertext { parts })
    }

    /// Decrypts to one signed value per slot (CRT combination, centered lift).
    ///
    /// # Errors
    ///
    /// Propagates decryption failures (context mismatch etc.).
    pub fn decrypt_slots(
        &self,
        ct: &CrtCiphertext,
        secret: &[SecretKey],
    ) -> hesgx_bfv::error::Result<Vec<i128>> {
        let slots = self.slot_count();
        let mut residues_per_part = Vec::with_capacity(self.moduli.len());
        for (i, ctx) in self.contexts.iter().enumerate() {
            let dec = Decryptor::new(ctx.clone(), secret[i].clone());
            let pt = dec.decrypt(&ct.parts[i])?;
            residues_per_part.push(self.encoders[i].decode(&pt));
        }
        let mut out = Vec::with_capacity(slots);
        for s in 0..slots {
            let residues: Vec<u64> = residues_per_part.iter().map(|r| r[s]).collect();
            out.push(self.crt_combine_signed(&residues));
        }
        Ok(out)
    }

    /// Combines per-modulus residues into a signed value in `(-T/2, T/2]`.
    fn crt_combine_signed(&self, residues: &[u64]) -> i128 {
        let t_big = self.product;
        let mut acc: u128 = 0;
        for (i, &t) in self.moduli.iter().enumerate() {
            let hat = t_big / t as u128;
            let hat_mod = (hat % t as u128) as u64;
            let inv = arith::inv_mod(hat_mod, t).expect("moduli coprime");
            let c = arith::mul_mod(residues[i] % t, inv, t);
            // acc += c * hat (mod T). hat < 2^~35, c < 2^17 -> fits u128.
            acc = (acc + (c as u128 * hat) % t_big) % t_big;
        }
        if acc > t_big / 2 {
            acc as i128 - t_big as i128
        } else {
            acc as i128
        }
    }

    /// `a += b`, component-wise.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn add_inplace(
        &self,
        a: &mut CrtCiphertext,
        b: &CrtCiphertext,
    ) -> hesgx_bfv::error::Result<()> {
        for i in 0..self.evaluators.len() {
            self.add_inplace_part(&mut a.parts[i], &b.parts[i], i)?;
        }
        Ok(())
    }

    /// `a += b` on CRT part `part` only — the limb-level entry point used by
    /// the parallel engine ([`crate::par`]), which schedules limbs as
    /// independent tasks. Applying the part-level ops in the same per-limb
    /// order as the whole-ciphertext op yields bit-identical parts.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn add_inplace_part(
        &self,
        a: &mut Ciphertext,
        b: &Ciphertext,
        part: usize,
    ) -> hesgx_bfv::error::Result<()> {
        self.evaluators[part].add_inplace(a, b)
    }

    /// Multiplies by a signed integer constant (applied to all slots).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar(
        &self,
        a: &CrtCiphertext,
        value: i64,
    ) -> hesgx_bfv::error::Result<CrtCiphertext> {
        let mut parts = Vec::with_capacity(a.parts.len());
        for i in 0..self.evaluators.len() {
            parts.push(self.mul_scalar_part(&a.parts[i], value, i)?);
        }
        Ok(CrtCiphertext { parts })
    }

    /// Scalar multiply of CRT part `part` only (limb-level entry point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar_part(
        &self,
        a: &Ciphertext,
        value: i64,
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        let t = self.moduli[part] as i64;
        let reduced = value.rem_euclid(t);
        // Use the centered representative for minimal noise growth.
        let centered = if reduced > t / 2 {
            reduced - t
        } else {
            reduced
        };
        self.evaluators[part].mul_plain_signed_scalar(a, centered)
    }

    /// Prepares a signed scalar weight once for repeated multiplication —
    /// [`CrtPlainSystem::mul_scalar`] with the centering and Shoup
    /// precomputation hoisted out of the per-request path.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn prepare_scalar(&self, value: i64) -> hesgx_bfv::error::Result<CrtPreparedScalar> {
        let mut parts = Vec::with_capacity(self.moduli.len());
        for part in 0..self.moduli.len() {
            let t = self.moduli[part] as i64;
            let reduced = value.rem_euclid(t);
            let centered = if reduced > t / 2 {
                reduced - t
            } else {
                reduced
            };
            parts.push(self.evaluators[part].prepare_plain_scalar(centered)?);
        }
        Ok(CrtPreparedScalar { parts })
    }

    /// Multiplies by a prepared scalar. Bit-identical to
    /// [`CrtPlainSystem::mul_scalar`] with the original value.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar_prepared(
        &self,
        a: &CrtCiphertext,
        scalar: &CrtPreparedScalar,
    ) -> hesgx_bfv::error::Result<CrtCiphertext> {
        let mut parts = Vec::with_capacity(a.parts.len());
        for i in 0..self.evaluators.len() {
            parts.push(self.mul_scalar_prepared_part(&a.parts[i], scalar.part(i), i)?);
        }
        Ok(CrtCiphertext { parts })
    }

    /// Prepared scalar multiply of CRT part `part` only (limb-level entry
    /// point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar_prepared_part(
        &self,
        a: &Ciphertext,
        scalar: &PlainScalar,
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        self.evaluators[part].mul_plain_scalar(a, scalar)
    }

    /// Prepared scalar multiply of part `part`, drawing the output's limb
    /// buffers from `arena` (bit-identical to
    /// [`CrtPlainSystem::mul_scalar_prepared_part`]).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar_prepared_arena_part(
        &self,
        a: &Ciphertext,
        scalar: &PlainScalar,
        arena: &PolyArena,
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        self.evaluators[part].mul_plain_scalar_arena(a, scalar, arena)
    }

    /// Fused multiply-accumulate `acc += a · w` on every CRT part — the
    /// conv/FC inner loop without the temporary ciphertext. Accumulated
    /// values are bit-identical to [`CrtPlainSystem::mul_scalar`] followed
    /// by [`CrtPlainSystem::add_inplace`].
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar_acc(
        &self,
        acc: &mut CrtCiphertext,
        a: &CrtCiphertext,
        scalar: &CrtPreparedScalar,
    ) -> hesgx_bfv::error::Result<()> {
        for i in 0..self.evaluators.len() {
            self.mul_scalar_acc_part(&mut acc.parts[i], &a.parts[i], scalar.part(i), i)?;
        }
        Ok(())
    }

    /// Fused multiply-accumulate on CRT part `part` only (limb-level entry
    /// point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_scalar_acc_part(
        &self,
        acc: &mut Ciphertext,
        a: &Ciphertext,
        scalar: &PlainScalar,
        part: usize,
    ) -> hesgx_bfv::error::Result<()> {
        self.evaluators[part].mul_plain_scalar_acc(acc, a, scalar)
    }

    /// Caches the evaluation (NTT) form of an encoded-weight plaintext for
    /// CRT part `part` — the per-call centering + forward transform that
    /// [`CrtPlainSystem::mul_plain_part`] redoes per request, done once at
    /// weight provisioning.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn transform_plain_part(
        &self,
        plain: &Plaintext,
        part: usize,
    ) -> hesgx_bfv::error::Result<NttPlaintext> {
        self.evaluators[part].transform_plain_to_ntt(plain)
    }

    /// Multiplies part `part` by a plaintext polynomial, re-transforming the
    /// plaintext on every call (the uncached baseline for
    /// [`CrtPlainSystem::mul_plain_ntt_part`]).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_plain_part(
        &self,
        a: &Ciphertext,
        plain: &Plaintext,
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        self.evaluators[part].mul_plain(a, plain)
    }

    /// Multiplies part `part` by a cached evaluation-form plaintext —
    /// bit-identical to [`CrtPlainSystem::mul_plain_part`] without the
    /// per-call transform.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn mul_plain_ntt_part(
        &self,
        a: &Ciphertext,
        plain: &NttPlaintext,
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        self.evaluators[part].mul_plain_ntt(a, plain)
    }

    /// Adds a signed integer constant (to all slots).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn add_scalar(
        &self,
        a: &CrtCiphertext,
        value: i64,
    ) -> hesgx_bfv::error::Result<CrtCiphertext> {
        let mut parts = Vec::with_capacity(a.parts.len());
        for i in 0..self.evaluators.len() {
            parts.push(self.add_scalar_part(&a.parts[i], value, i)?);
        }
        Ok(CrtCiphertext { parts })
    }

    /// Scalar add on CRT part `part` only (limb-level entry point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn add_scalar_part(
        &self,
        a: &Ciphertext,
        value: i64,
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        let t = self.moduli[part];
        let residue = value.rem_euclid(t as i64) as u64;
        self.evaluators[part].add_plain(a, &Plaintext::constant(residue))
    }

    /// Prepares a bias constant once for repeated in-place addition —
    /// [`CrtPlainSystem::add_scalar`] without the per-call polynomial
    /// allocation.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn prepare_bias(&self, value: i64) -> hesgx_bfv::error::Result<CrtPreparedBias> {
        let mut parts = Vec::with_capacity(self.moduli.len());
        for part in 0..self.moduli.len() {
            let t = self.moduli[part];
            let residue = value.rem_euclid(t as i64) as u64;
            parts.push(self.evaluators[part].prepare_plain_bias(residue)?);
        }
        Ok(CrtPreparedBias { parts })
    }

    /// Adds a prepared bias in place on every CRT part. Values are
    /// bit-identical to [`CrtPlainSystem::add_scalar`] with the original
    /// constant (pinned by the bfv evaluator tests), with no allocation.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn add_bias_inplace(
        &self,
        a: &mut CrtCiphertext,
        bias: &CrtPreparedBias,
    ) -> hesgx_bfv::error::Result<()> {
        for i in 0..self.evaluators.len() {
            self.add_bias_inplace_part(&mut a.parts[i], bias.part(i), i)?;
        }
        Ok(())
    }

    /// Prepared bias add on CRT part `part` only (limb-level entry point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn add_bias_inplace_part(
        &self,
        a: &mut Ciphertext,
        bias: &PreparedBias,
        part: usize,
    ) -> hesgx_bfv::error::Result<()> {
        self.evaluators[part].add_plain_bias_inplace(a, bias)
    }

    /// Slot-wise square (`C × C` multiply). Output parts have size 3 until
    /// relinearized or refreshed.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn square(&self, a: &CrtCiphertext) -> hesgx_bfv::error::Result<CrtCiphertext> {
        let mut parts = Vec::with_capacity(a.parts.len());
        for i in 0..self.evaluators.len() {
            parts.push(self.square_part(&a.parts[i], i)?);
        }
        Ok(CrtCiphertext { parts })
    }

    /// Square of CRT part `part` only (limb-level entry point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn square_part(&self, a: &Ciphertext, part: usize) -> hesgx_bfv::error::Result<Ciphertext> {
        self.evaluators[part].square(a)
    }

    /// Relinearizes all parts back to size 2.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn relinearize(
        &self,
        a: &CrtCiphertext,
        keys: &[EvaluationKeys],
    ) -> hesgx_bfv::error::Result<CrtCiphertext> {
        let mut parts = Vec::with_capacity(a.parts.len());
        for i in 0..self.evaluators.len() {
            parts.push(self.relinearize_part(&a.parts[i], keys, i)?);
        }
        Ok(CrtCiphertext { parts })
    }

    /// Relinearization of CRT part `part` only (limb-level entry point).
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn relinearize_part(
        &self,
        a: &Ciphertext,
        keys: &[EvaluationKeys],
        part: usize,
    ) -> hesgx_bfv::error::Result<Ciphertext> {
        self.evaluators[part].relinearize(a, &keys[part])
    }

    /// Minimum invariant-noise budget over the parts.
    ///
    /// # Errors
    ///
    /// Propagates component failures.
    pub fn noise_budget(
        &self,
        ct: &CrtCiphertext,
        secret: &[SecretKey],
    ) -> hesgx_bfv::error::Result<u32> {
        let mut min = u32::MAX;
        for (i, ctx) in self.contexts.iter().enumerate() {
            let dec = Decryptor::new(ctx.clone(), secret[i].clone());
            min = min.min(dec.invariant_noise_budget(&ct.parts[i])?);
        }
        Ok(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> (CrtPlainSystem, CrtKeys, ChaChaRng) {
        let sys = CrtPlainSystem::new(256, &[12289, 13313]).unwrap();
        let mut rng = ChaChaRng::from_seed(41);
        let keys = sys.generate_keys(&mut rng);
        (sys, keys, rng)
    }

    #[test]
    fn for_range_covers_requirement() {
        let sys = CrtPlainSystem::for_range(256, 30).unwrap();
        assert!(sys.modulus_product() > 1u128 << 31);
        // All moduli batching-friendly.
        for &t in sys.moduli() {
            assert_eq!(t % 512, 1);
            assert!(arith::is_prime_u64(t));
        }
    }

    #[test]
    fn encrypt_decrypt_signed_values() {
        let (sys, keys, mut rng) = system();
        let values = vec![-1_000_000i64, -5, 0, 5, 1_000_000, 80_000_000];
        let ct = sys.encrypt_slots(&values, &keys.public, &mut rng).unwrap();
        let back = sys.decrypt_slots(&ct, &keys.secret).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(back[i], v as i128, "slot {i}");
        }
        assert!(back[values.len()..].iter().all(|&v| v == 0));
    }

    #[test]
    fn linear_homomorphism() {
        let (sys, keys, mut rng) = system();
        let a = sys
            .encrypt_slots(&[10, -20], &keys.public, &mut rng)
            .unwrap();
        let b = sys.encrypt_slots(&[3, 7], &keys.public, &mut rng).unwrap();
        let mut acc = sys.mul_scalar(&a, -4).unwrap();
        sys.add_inplace(&mut acc, &b).unwrap();
        let acc = sys.add_scalar(&acc, 100).unwrap();
        let back = sys.decrypt_slots(&acc, &keys.secret).unwrap();
        assert_eq!(back[0], 10 * -4 + 3 + 100);
        assert_eq!(back[1], -20 * -4 + 7 + 100);
    }

    #[test]
    fn square_exceeding_single_modulus() {
        // 9000^2 = 8.1e7 exceeds each modulus (~1.3e4) but fits the signed
        // range of the product (12289 * 13313 / 2 ≈ 8.18e7).
        let (sys, keys, mut rng) = system();
        let a = sys
            .encrypt_slots(&[9_000, -300], &keys.public, &mut rng)
            .unwrap();
        let sq = sys.square(&a).unwrap();
        assert_eq!(sq.size(), 3);
        let back = sys.decrypt_slots(&sq, &keys.secret).unwrap();
        assert_eq!(back[0], 81_000_000);
        assert_eq!(back[1], 90_000);
    }

    #[test]
    fn relinearize_preserves_slots() {
        let (sys, keys, mut rng) = system();
        let a = sys
            .encrypt_slots(&[111, -42], &keys.public, &mut rng)
            .unwrap();
        let sq = sys.square(&a).unwrap();
        let relin = sys.relinearize(&sq, &keys.evaluation).unwrap();
        assert_eq!(relin.size(), 2);
        let back = sys.decrypt_slots(&relin, &keys.secret).unwrap();
        assert_eq!(back[0], 111 * 111);
        assert_eq!(back[1], 42 * 42);
    }

    #[test]
    fn prepared_scalar_and_bias_match_uncached_bitwise() {
        let (sys, keys, mut rng) = system();
        let a = sys
            .encrypt_slots(&[10, -20, 7], &keys.public, &mut rng)
            .unwrap();
        for v in [-9_000i64, -1, 0, 1, 4, 11_000] {
            let prepared = sys.prepare_scalar(v).unwrap();
            assert_eq!(
                sys.mul_scalar_prepared(&a, &prepared).unwrap(),
                sys.mul_scalar(&a, v).unwrap(),
                "prepared multiply diverged for {v}"
            );
            // Fused accumulate vs multiply-then-add.
            let mut fused = a.clone();
            sys.mul_scalar_acc(&mut fused, &a, &prepared).unwrap();
            let term = sys.mul_scalar(&a, v).unwrap();
            let mut want = a.clone();
            sys.add_inplace(&mut want, &term).unwrap();
            assert_eq!(fused, want, "fused accumulate diverged for {v}");

            let bias = sys.prepare_bias(v).unwrap();
            let mut got = a.clone();
            sys.add_bias_inplace(&mut got, &bias).unwrap();
            assert_eq!(
                got,
                sys.add_scalar(&a, v).unwrap(),
                "prepared bias diverged for {v}"
            );
        }
    }

    #[test]
    fn arena_prepared_multiply_is_bit_identical() {
        let (sys, keys, mut rng) = system();
        let arena = PolyArena::new();
        let a = sys
            .encrypt_slots(&[42, -3], &keys.public, &mut rng)
            .unwrap();
        let prepared = sys.prepare_scalar(-6).unwrap();
        for part in 0..sys.part_count() {
            let got = sys
                .mul_scalar_prepared_arena_part(&a.parts[part], prepared.part(part), &arena, part)
                .unwrap();
            assert_eq!(
                got,
                sys.mul_scalar_prepared_part(&a.parts[part], prepared.part(part), part)
                    .unwrap()
            );
            arena.recycle_ciphertext(got);
        }
        assert!(arena.free_buffers() > 0);
    }

    #[test]
    fn cached_ntt_plain_part_matches_per_call_transform() {
        let (sys, keys, mut rng) = system();
        let a = sys.encrypt_slots(&[5, -2], &keys.public, &mut rng).unwrap();
        // A low-norm integer-encoded weight, as produced by the SEAL-style
        // encoder: a few small signed digits.
        let plain = Plaintext::from_coeffs(vec![3, 0, 1, 12288]);
        for part in 0..sys.part_count() {
            let cached = sys.transform_plain_part(&plain, part).unwrap();
            assert_eq!(
                sys.mul_plain_ntt_part(&a.parts[part], &cached, part)
                    .unwrap(),
                sys.mul_plain_part(&a.parts[part], &plain, part).unwrap(),
                "part {part}"
            );
        }
    }

    #[test]
    fn noise_budget_positive_and_decreasing() {
        let (sys, keys, mut rng) = system();
        let a = sys.encrypt_slots(&[1], &keys.public, &mut rng).unwrap();
        let fresh = sys.noise_budget(&a, &keys.secret).unwrap();
        let sq = sys.square(&a).unwrap();
        let after = sys.noise_budget(&sq, &keys.secret).unwrap();
        assert!(fresh > after);
        assert!(after > 0);
    }
}
