//! Training driver: SGD with learning-rate decay over the synthetic digit
//! set, producing the trained models the encrypted pipelines consume.

use crate::dataset::{self, Sample};
use crate::layers::{ActivationKind, PoolKind};
use crate::model_zoo::paper_cnn;
use crate::network::Network;
use crate::tensor::Tensor;
use hesgx_crypto::rng::ChaChaRng;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of training samples to synthesize.
    pub train_samples: usize,
    /// Number of held-out test samples.
    pub test_samples: usize,
    /// Epochs over the training set.
    pub epochs: usize,
    /// Initial learning rate (decayed ×0.7 per epoch).
    pub learning_rate: f64,
    /// RNG seed for data and weights.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            train_samples: 1500,
            test_samples: 300,
            epochs: 3,
            learning_rate: 0.05,
            seed: 2021,
        }
    }
}

/// A trained model plus its evaluation data.
#[derive(Debug)]
pub struct TrainedModel {
    /// The trained float network.
    pub network: Network,
    /// Accuracy on the held-out test set.
    pub test_accuracy: f64,
    /// The held-out test set (reused by encrypted-pipeline evaluations).
    pub test_set: Vec<Sample>,
}

/// Trains the paper's CNN with the given activation/pooling variant.
pub fn train_paper_cnn(
    activation: ActivationKind,
    pool: PoolKind,
    config: &TrainConfig,
) -> TrainedModel {
    let mut rng = ChaChaRng::from_seed(config.seed).fork("train");
    let mut network = paper_cnn(activation, pool, &mut rng);
    let train = dataset::generate(config.train_samples, config.seed);
    let test = dataset::generate(config.test_samples, config.seed ^ 0xdead_beef);

    let train_pairs: Vec<(Tensor, usize)> = train
        .iter()
        .map(|s| (dataset::normalize(&s.image), s.label))
        .collect();

    let mut lr = config.learning_rate;
    let mut order: Vec<usize> = (0..train_pairs.len()).collect();
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        for &idx in &order {
            let (x, y) = &train_pairs[idx];
            network.train_step(x, *y, lr);
        }
        lr *= 0.7;
    }

    let test_pairs: Vec<(Tensor, usize)> = test
        .iter()
        .map(|s| (dataset::normalize(&s.image), s.label))
        .collect();
    let test_accuracy = network.accuracy(&test_pairs);

    TrainedModel {
        network,
        test_accuracy,
        test_set: test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_model_learns_digits() {
        let config = TrainConfig {
            train_samples: 600,
            test_samples: 100,
            epochs: 2,
            ..Default::default()
        };
        let model = train_paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &config);
        assert!(
            model.test_accuracy > 0.8,
            "sigmoid model accuracy too low: {}",
            model.test_accuracy
        );
    }

    #[test]
    fn square_model_learns_digits() {
        // The CryptoNets variant (square activation, scaled mean-pool) must
        // also train to a usable accuracy.
        let config = TrainConfig {
            train_samples: 600,
            test_samples: 100,
            epochs: 2,
            learning_rate: 0.01,
            ..Default::default()
        };
        let model = train_paper_cnn(ActivationKind::Square, PoolKind::ScaledMean, &config);
        assert!(
            model.test_accuracy > 0.7,
            "square model accuracy too low: {}",
            model.test_accuracy
        );
    }
}
