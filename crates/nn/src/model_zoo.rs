//! The paper's CNN architecture (Fig. 7 / Table VI) and helpers to print it.

use crate::layers::{Activation, ActivationKind, Conv2d, Dense, Layer, Pool, PoolKind};
use crate::network::Network;
use hesgx_crypto::rng::ChaChaRng;

/// Builds the four-layer CNN of the paper's case study:
///
/// | Input | Layer | Stride | Kernel | Output |
/// |---|---|---|---|---|
/// | 1×(28×28) | Convolutional | 1×1 | 6×(5×5) | 6×(24×24) |
/// | 6×(24×24) | activation | — | — | 6×(24×24) |
/// | 6×(24×24) | Pooling | — | 6×(2×2) | 6×(12×12) |
/// | 6×(12×12) | Fully connected | — | 10×(12×12) | 10×(1×1) |
///
/// `activation`/`pool` select the variant: `(Sigmoid, Mean)` is the hybrid
/// framework's exact model; `(Square, ScaledMean)` is the CryptoNets-style
/// HE-only baseline (paper [16]).
pub fn paper_cnn(activation: ActivationKind, pool: PoolKind, rng: &mut ChaChaRng) -> Network {
    Network::new(vec![
        Layer::Conv(Conv2d::new(1, 6, 5, 1, rng)),
        Layer::Activation(Activation { kind: activation }),
        Layer::Pool(Pool {
            kind: pool,
            window: 2,
        }),
        Layer::Dense(Dense::new(6 * 12 * 12, 10, rng)),
    ])
}

/// One row of the architecture table (paper Table VI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchitectureRow {
    /// Input feature-map shape description.
    pub input: String,
    /// Layer name.
    pub layer: String,
    /// Stride description ("/" when not applicable).
    pub stride: String,
    /// Kernel description ("/" when not applicable).
    pub kernel: String,
    /// Output feature-map shape description.
    pub output: String,
}

/// Produces the Table VI rows for a network built by [`paper_cnn`].
pub fn architecture_table(net: &Network) -> Vec<ArchitectureRow> {
    let mut rows = Vec::new();
    // Shape tracking for the known 28x28 single-channel input.
    let mut shape = (1usize, 28usize, 28usize);
    for layer in net.layers() {
        let input = format!("{} x ({} x {})", shape.0, shape.1, shape.2);
        let row = match layer {
            Layer::Conv(c) => {
                let side = c.output_side(shape.1);
                let out = (c.out_channels, side, side);
                let r = ArchitectureRow {
                    input,
                    layer: "Convolutional Layer".into(),
                    stride: format!("({} x {})", c.stride, c.stride),
                    kernel: format!("{} x ({} x {})", c.out_channels, c.kernel, c.kernel),
                    output: format!("{} x ({} x {})", out.0, out.1, out.2),
                };
                shape = out;
                r
            }
            Layer::Activation(_) => ArchitectureRow {
                input: input.clone(),
                layer: layer.name().into(),
                stride: "/".into(),
                kernel: "/".into(),
                output: input,
            },
            Layer::Pool(p) => {
                let out = (shape.0, shape.1 / p.window, shape.2 / p.window);
                let r = ArchitectureRow {
                    input,
                    layer: "Pooling Layer".into(),
                    stride: "/".into(),
                    kernel: format!("{} x ({} x {})", shape.0, p.window, p.window),
                    output: format!("{} x ({} x {})", out.0, out.1, out.2),
                };
                shape = out;
                r
            }
            Layer::Dense(d) => {
                let r = ArchitectureRow {
                    input,
                    layer: "Fully Connected Layer".into(),
                    stride: "/".into(),
                    kernel: format!("{} x ({} x {})", d.out_dim, shape.1, shape.2),
                    output: format!("{} x (1 x 1)", d.out_dim),
                };
                shape = (d.out_dim, 1, 1);
                r
            }
        };
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn paper_cnn_shapes() {
        let mut rng = ChaChaRng::from_seed(1);
        let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
        let input = Tensor::zeros(&[1, 28, 28]);
        let out = net.forward(&input);
        assert_eq!(out.shape(), &[10]);
    }

    #[test]
    fn table_vi_matches_paper() {
        let mut rng = ChaChaRng::from_seed(1);
        let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
        let rows = architecture_table(&net);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].input, "1 x (28 x 28)");
        assert_eq!(rows[0].kernel, "6 x (5 x 5)");
        assert_eq!(rows[0].output, "6 x (24 x 24)");
        assert_eq!(rows[1].layer, "Sigmoid");
        assert_eq!(rows[2].kernel, "6 x (2 x 2)");
        assert_eq!(rows[2].output, "6 x (12 x 12)");
        assert_eq!(rows[3].kernel, "10 x (12 x 12)");
        assert_eq!(rows[3].output, "10 x (1 x 1)");
    }
}
