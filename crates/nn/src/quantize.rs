//! Fixed-point quantization of the paper's CNN, plus dynamic-range analysis.
//!
//! The encrypted pipelines compute with integers modulo the plaintext modulus,
//! so the model must be expressed in exact integer arithmetic and every
//! intermediate value must be proven to fit. This module:
//!
//! * quantizes a trained float [`Network`] built by
//!   [`crate::model_zoo::paper_cnn`] into [`QuantizedCnn`] — integer weights,
//!   integer biases at matching scales;
//! * provides [`QuantizedCnn::forward_ints`], the **bit-exact reference
//!   semantics** both the HE-only and the hybrid pipeline must reproduce
//!   (integration tests in `hesgx-core`/`hesgx-henn` assert equality);
//! * computes a [`RangeReport`] bounding every intermediate, from which the
//!   required plaintext-modulus capacity follows (paper §III-A's "numerical
//!   diffusion" of scaled mean-pooling shows up here as the ×k² term).

use crate::layers::{ActivationKind, Layer};
use crate::network::Network;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which encrypted pipeline the quantized model feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantPipeline {
    /// Hybrid HE+SGX: exact sigmoid and true mean-pool inside the enclave;
    /// activations re-quantized to `act_scale` on re-encryption.
    Hybrid,
    /// CryptoNets-style HE-only: square activation, scaled (sum) mean-pool,
    /// everything exact integer arithmetic end to end.
    CryptoNets,
}

/// Pixel quantization step: grey 0–255 → 0–15, matching
/// [`crate::dataset::quantize_pixels`]. `x_f ≈ x_int * PIXEL_STEP`.
pub const PIXEL_STEP: f64 = 16.0 / 255.0;

/// Integer version of the paper's 4-layer CNN shape: conv → activation →
/// pool → fully connected. Dimensions are configurable so tests and ablation
/// benches can run scaled-down instances; [`QuantizedCnn::from_network`]
/// fills in the paper's 28×28/6×(5×5)/2×2/10 configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedCnn {
    /// Pipeline variant this model is quantized for.
    pub pipeline: QuantPipeline,
    /// Input image side length.
    pub in_side: usize,
    /// Convolution output channels.
    pub conv_out: usize,
    /// Convolution kernel side.
    pub kernel: usize,
    /// Pooling window (2 in the paper).
    pub window: usize,
    /// Output classes.
    pub classes: usize,
    /// Conv weights `[conv_out][kernel][kernel]` (single input channel),
    /// value × `weight_scale`.
    pub conv_weights: Vec<i64>,
    /// Conv bias at conv-output scale.
    pub conv_bias: Vec<i64>,
    /// FC weights `[classes][conv_out * pool_side²]`, value × `fc_scale`.
    pub fc_weights: Vec<i64>,
    /// FC bias at logit scale.
    pub fc_bias: Vec<i64>,
    /// Scale applied to conv weights.
    pub weight_scale: i64,
    /// Scale applied to FC weights.
    pub fc_scale: i64,
    /// Scale of enclave-re-encrypted activations (hybrid only).
    pub act_scale: i64,
}

impl QuantizedCnn {
    /// Convolution output side.
    pub fn conv_side(&self) -> usize {
        self.in_side - self.kernel + 1
    }

    /// Pooling output side.
    pub fn pool_side(&self) -> usize {
        self.conv_side() / self.window
    }

    /// Flattened FC input size.
    pub fn fc_in(&self) -> usize {
        self.conv_out * self.pool_side() * self.pool_side()
    }

    /// Quantizes a float network built by [`crate::model_zoo::paper_cnn`].
    ///
    /// # Panics
    ///
    /// Panics when the network does not have the paper's 4-layer shape.
    pub fn from_network(
        net: &Network,
        pipeline: QuantPipeline,
        weight_scale: i64,
        fc_scale: i64,
        act_scale: i64,
    ) -> Self {
        let layers = net.layers();
        assert_eq!(layers.len(), 4, "expected the paper's 4-layer CNN");
        let Layer::Conv(conv) = &layers[0] else {
            panic!("layer 0 must be convolutional")
        };
        let Layer::Pool(pool) = &layers[2] else {
            panic!("layer 2 must be pooling")
        };
        let Layer::Dense(dense) = &layers[3] else {
            panic!("layer 3 must be fully connected")
        };
        assert_eq!(conv.in_channels, 1, "paper model is single-channel");

        let conv_weights: Vec<i64> = conv
            .weights
            .data()
            .iter()
            .map(|&w| (w * weight_scale as f64).round() as i64)
            .collect();
        // conv_out_int ≈ conv_out_f * weight_scale / PIXEL_STEP.
        let conv_out_scale = weight_scale as f64 / PIXEL_STEP;
        let conv_bias: Vec<i64> = conv
            .bias
            .iter()
            .map(|&b| (b * conv_out_scale).round() as i64)
            .collect();

        let fc_weights: Vec<i64> = dense
            .weights
            .data()
            .iter()
            .map(|&w| (w * fc_scale as f64).round() as i64)
            .collect();
        // FC input scale depends on the pipeline.
        let fc_in_scale = match pipeline {
            // Enclave outputs activations at act_scale; mean-pool preserves it.
            QuantPipeline::Hybrid => act_scale as f64,
            // Square of conv ints, summed over the window.
            QuantPipeline::CryptoNets => {
                conv_out_scale * conv_out_scale * (pool.window * pool.window) as f64
            }
        };
        let fc_bias: Vec<i64> = dense
            .bias
            .iter()
            .map(|&b| (b * fc_scale as f64 * fc_in_scale).round() as i64)
            .collect();

        let conv_side = 28 - conv.kernel + 1;
        let pool_side = conv_side / pool.window;
        assert_eq!(
            dense.in_dim,
            conv.out_channels * pool_side * pool_side,
            "FC input must match pooled conv output"
        );

        QuantizedCnn {
            pipeline,
            in_side: 28,
            conv_out: conv.out_channels,
            kernel: conv.kernel,
            window: pool.window,
            classes: dense.out_dim,
            conv_weights,
            conv_bias,
            fc_weights,
            fc_bias,
            weight_scale,
            fc_scale,
            act_scale,
        }
    }

    /// Scale factor mapping conv-output integers back to float pre-activations.
    pub fn conv_out_scale(&self) -> f64 {
        self.weight_scale as f64 / PIXEL_STEP
    }

    /// The exact integer convolution over `in_side²` quantized pixels.
    /// Returns `[conv_out][conv_side][conv_side]` integers.
    ///
    /// # Panics
    ///
    /// Panics on a pixel-count mismatch.
    pub fn conv_ints(&self, pixels: &[i64]) -> Vec<i64> {
        let (n, k, s) = (self.in_side, self.kernel, self.conv_side());
        assert_eq!(pixels.len(), n * n);
        let mut out = vec![0i64; self.conv_out * s * s];
        for o in 0..self.conv_out {
            for oy in 0..s {
                for ox in 0..s {
                    let mut acc = self.conv_bias[o];
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += self.conv_weights[(o * k + ky) * k + kx]
                                * pixels[(oy + ky) * n + (ox + kx)];
                        }
                    }
                    out[(o * s + oy) * s + ox] = acc;
                }
            }
        }
        out
    }

    /// The exact enclave activation for the hybrid pipeline: dequantize,
    /// apply the true sigmoid, re-quantize to `act_scale`.
    pub fn enclave_sigmoid(&self, conv_int: i64) -> i64 {
        let x = conv_int as f64 / self.conv_out_scale();
        (ActivationKind::Sigmoid.apply(x) * self.act_scale as f64).round() as i64
    }

    /// Generic enclave activation: dequantize, apply the exact function,
    /// re-quantize to `act_scale`. The paper's §VI-C point — "SGX enables the
    /// calculation of diverse activation functions (e.g., Relu and Tanh)
    /// flexibly, accurately, and quickly" — is this one function.
    pub fn enclave_activation(&self, conv_int: i64, kind: ActivationKind) -> i64 {
        let x = conv_int as f64 / self.conv_out_scale();
        (kind.apply(x) * self.act_scale as f64).round() as i64
    }

    /// The exact enclave mean over a pooling-window sum (round half up, as the
    /// enclave computes it; activations are nonnegative).
    pub fn enclave_mean(&self, window_sum: i64) -> i64 {
        let k2 = (self.window * self.window) as i64;
        (window_sum + k2 / 2).div_euclid(k2)
    }

    /// Full exact-integer forward pass; returns the `classes` logits.
    ///
    /// This function *defines* the reference semantics of both encrypted
    /// pipelines: the HE+SGX and HE-only implementations must produce exactly
    /// these integers.
    pub fn forward_ints(&self, pixels: &[i64]) -> Vec<i64> {
        let conv = self.conv_ints(pixels);
        let act: Vec<i64> = match self.pipeline {
            QuantPipeline::Hybrid => conv.iter().map(|&v| self.enclave_sigmoid(v)).collect(),
            QuantPipeline::CryptoNets => conv.iter().map(|&v| v * v).collect(),
        };
        let (cs, ps) = (self.conv_side(), self.pool_side());
        let mut pooled = vec![0i64; self.fc_in()];
        for c in 0..self.conv_out {
            for py in 0..ps {
                for px in 0..ps {
                    let mut sum = 0i64;
                    for dy in 0..self.window {
                        for dx in 0..self.window {
                            sum +=
                                act[(c * cs + py * self.window + dy) * cs + px * self.window + dx];
                        }
                    }
                    pooled[(c * ps + py) * ps + px] = match self.pipeline {
                        QuantPipeline::Hybrid => self.enclave_mean(sum),
                        QuantPipeline::CryptoNets => sum, // scaled mean-pool keeps the sum
                    };
                }
            }
        }
        let fc_in = self.fc_in();
        let mut logits = vec![0i64; self.classes];
        for (o, logit) in logits.iter_mut().enumerate() {
            let mut acc = self.fc_bias[o];
            for (i, &p) in pooled.iter().enumerate() {
                acc += self.fc_weights[o * fc_in + i] * p;
            }
            *logit = acc;
        }
        logits
    }

    /// Predicted class from exact-integer inference.
    pub fn predict_ints(&self, pixels: &[i64]) -> usize {
        let logits = self.forward_ints(pixels);
        let mut best = 0;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Convenience: quantize a grey-level image tensor and predict.
    pub fn predict_image(&self, image: &Tensor) -> usize {
        self.predict_ints(&crate::dataset::quantize_pixels(image))
    }

    /// Worst-case dynamic-range analysis.
    pub fn range_report(&self) -> RangeReport {
        let max_pixel = 15i64;
        let max_w = self.conv_weights.iter().map(|w| w.abs()).max().unwrap_or(0);
        let max_cb = self.conv_bias.iter().map(|b| b.abs()).max().unwrap_or(0);
        let conv_bound = (self.kernel * self.kernel) as i64 * max_w * max_pixel + max_cb;
        let act_bound = match self.pipeline {
            QuantPipeline::Hybrid => self.act_scale,
            QuantPipeline::CryptoNets => conv_bound * conv_bound,
        };
        let k2 = (self.window * self.window) as i64;
        let pool_bound = match self.pipeline {
            QuantPipeline::Hybrid => act_bound, // mean keeps the scale
            QuantPipeline::CryptoNets => act_bound * k2, // sum magnifies (numerical diffusion)
        };
        let max_fw = self.fc_weights.iter().map(|w| w.abs()).max().unwrap_or(0);
        let max_fb = self.fc_bias.iter().map(|b| b.abs()).max().unwrap_or(0);
        let logit_bound = self.fc_in() as i64 * max_fw * pool_bound + max_fb;
        RangeReport {
            conv_bound,
            act_bound,
            pool_bound,
            logit_bound,
            required_plain_bits: 64 - (2 * logit_bound as u64 + 1).leading_zeros(),
        }
    }
}

/// Worst-case magnitude bounds per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeReport {
    /// Bound on |conv output|.
    pub conv_bound: i64,
    /// Bound on |activation output|.
    pub act_bound: i64,
    /// Bound on |pooling output|.
    pub pool_bound: i64,
    /// Bound on |logit|.
    pub logit_bound: i64,
    /// Plaintext-modulus capacity (bits) needed to hold any intermediate with
    /// sign: the plain-CRT moduli product must exceed this.
    pub required_plain_bits: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::layers::{ActivationKind, PoolKind};
    use crate::model_zoo::paper_cnn;
    use hesgx_crypto::rng::ChaChaRng;

    fn trained_stub(pipeline: QuantPipeline) -> QuantizedCnn {
        let mut rng = ChaChaRng::from_seed(3);
        let (act, pool) = match pipeline {
            QuantPipeline::Hybrid => (ActivationKind::Sigmoid, PoolKind::Mean),
            QuantPipeline::CryptoNets => (ActivationKind::Square, PoolKind::ScaledMean),
        };
        let net = paper_cnn(act, pool, &mut rng);
        QuantizedCnn::from_network(&net, pipeline, 16, 32, 16)
    }

    #[test]
    fn forward_ints_shapes() {
        let q = trained_stub(QuantPipeline::Hybrid);
        let pixels = vec![7i64; 784];
        assert_eq!(q.forward_ints(&pixels).len(), 10);
        assert_eq!(q.conv_side(), 24);
        assert_eq!(q.pool_side(), 12);
        assert_eq!(q.fc_in(), 864);
    }

    #[test]
    fn hybrid_range_fits_moderate_modulus() {
        let q = trained_stub(QuantPipeline::Hybrid);
        let r = q.range_report();
        assert!(r.act_bound == 16);
        assert!(r.required_plain_bits < 32, "hybrid range: {r:?}");
    }

    #[test]
    fn cryptonets_range_shows_numerical_diffusion() {
        let q = trained_stub(QuantPipeline::CryptoNets);
        let r = q.range_report();
        // Scaled mean-pool magnifies by k² (paper §III-A).
        assert_eq!(r.pool_bound, r.act_bound * 4);
        assert!(r.required_plain_bits > 20);
    }

    #[test]
    fn quantized_prediction_tracks_float_model() {
        // After quantization, most predictions must agree with the float net.
        let mut rng = ChaChaRng::from_seed(4);
        let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
        let q = QuantizedCnn::from_network(&net, QuantPipeline::Hybrid, 64, 64, 64);
        let samples = dataset::generate(20, 5);
        let mut agree = 0;
        for s in &samples {
            let float_pred = net.predict(&dataset::normalize(&s.image));
            if q.predict_image(&s.image) == float_pred {
                agree += 1;
            }
        }
        assert!(agree >= 16, "quantization drift too large: {agree}/20");
    }

    #[test]
    fn enclave_mean_rounds() {
        let q = trained_stub(QuantPipeline::Hybrid);
        assert_eq!(q.enclave_mean(4), 1);
        assert_eq!(q.enclave_mean(6), 2); // 1.5 rounds up
        assert_eq!(q.enclave_mean(7), 2);
        assert_eq!(q.enclave_mean(0), 0);
    }

    #[test]
    fn enclave_sigmoid_range() {
        let q = trained_stub(QuantPipeline::Hybrid);
        for v in [-100_000i64, -100, 0, 100, 100_000] {
            let s = q.enclave_sigmoid(v);
            assert!((0..=q.act_scale).contains(&s));
        }
        assert_eq!(q.enclave_sigmoid(0), q.act_scale / 2);
    }

    #[test]
    fn custom_small_model_forward() {
        // A scaled-down instance (8×8 input, 2 kernels of 3×3, 4 classes).
        let q = QuantizedCnn {
            pipeline: QuantPipeline::CryptoNets,
            in_side: 8,
            conv_out: 2,
            kernel: 3,
            window: 2,
            classes: 4,
            conv_weights: (0..18).map(|i| (i % 5) as i64 - 2).collect(),
            conv_bias: vec![1, -1],
            fc_weights: (0..4 * 2 * 9).map(|i| (i % 3) as i64 - 1).collect(),
            fc_bias: vec![0, 1, 2, 3],
            weight_scale: 8,
            fc_scale: 8,
            act_scale: 16,
        };
        assert_eq!(q.conv_side(), 6);
        assert_eq!(q.pool_side(), 3);
        assert_eq!(q.fc_in(), 18);
        let pixels = vec![5i64; 64];
        let logits = q.forward_ints(&pixels);
        assert_eq!(logits.len(), 4);
    }
}
