//! # hesgx-nn
//!
//! Plaintext CNN substrate for the hesgx reproduction: tensors, the four
//! layer types of the paper's §II-A (convolution, pooling, activation, fully
//! connected) with full backpropagation, SGD training, a synthetic
//! handwritten-digit dataset standing in for MNIST, and the fixed-point
//! quantization + range analysis the encrypted pipelines build on.
//!
//! The integer semantics defined by [`quantize::QuantizedCnn::forward_ints`]
//! are the contract: `hesgx-henn` (HE-only) and `hesgx-core` (hybrid HE+SGX)
//! must reproduce those integers exactly, which is how the reproduction
//! verifies the paper's "accuracy rates are consistent with the plaintext
//! predictions" claim (§VII-B).
//!
//! # Examples
//!
//! ```
//! use hesgx_nn::dataset;
//! use hesgx_nn::layers::{ActivationKind, PoolKind};
//! use hesgx_nn::model_zoo::paper_cnn;
//! use hesgx_crypto::rng::ChaChaRng;
//!
//! let mut rng = ChaChaRng::from_seed(1);
//! let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
//! let sample = &dataset::generate(1, 0)[0];
//! let class = net.predict(&dataset::normalize(&sample.image));
//! assert!(class < 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod layers;
pub mod model_zoo;
pub mod network;
pub mod quantize;
pub mod tensor;
pub mod train;

pub use network::Network;
pub use tensor::Tensor;
