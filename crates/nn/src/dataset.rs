//! Synthetic handwritten-digit dataset.
//!
//! The paper evaluates on MNIST (28×28 grey-scale digits, labels 0–9). We do
//! not ship MNIST binaries; instead this module *renders* digits from stroke
//! templates with random affine jitter and noise, producing a 10-class 28×28
//! grey-level task with the same interface (values 0–255). The substitution
//! is documented in `DESIGN.md` §2: HE/SGX timing is independent of pixel
//! values, and exactness claims are verified bit-for-bit against the plaintext
//! model, so any learnable 28×28 10-class task exercises the same code paths.

use crate::tensor::Tensor;
use hesgx_crypto::rng::ChaChaRng;

/// Image side length (28, matching MNIST and the paper's Fig. 7).
pub const IMAGE_SIDE: usize = 28;

/// One labelled sample: a `[1, 28, 28]` tensor with values in `[0, 255]`.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The image, grey level 0–255 (stored as f64 for the float model).
    pub image: Tensor,
    /// The digit label, 0–9.
    pub label: usize,
}

/// Stroke templates per digit in a unit box (x right, y down).
fn strokes(digit: usize) -> Vec<[(f64, f64); 2]> {
    let top = [(0.22, 0.14), (0.78, 0.14)];
    let mid = [(0.22, 0.52), (0.78, 0.52)];
    let bottom = [(0.22, 0.88), (0.78, 0.88)];
    let left_hi = [(0.22, 0.14), (0.22, 0.52)];
    let left_lo = [(0.22, 0.52), (0.22, 0.88)];
    let right_hi = [(0.78, 0.14), (0.78, 0.52)];
    let right_lo = [(0.78, 0.52), (0.78, 0.88)];
    match digit {
        0 => vec![top, bottom, left_hi, left_lo, right_hi, right_lo],
        1 => vec![[(0.5, 0.12), (0.5, 0.88)], [(0.34, 0.3), (0.5, 0.12)]],
        2 => vec![top, right_hi, [(0.78, 0.52), (0.22, 0.88)], bottom],
        3 => vec![top, mid, bottom, right_hi, right_lo],
        4 => vec![left_hi, mid, [(0.68, 0.14), (0.68, 0.88)]],
        5 => vec![top, left_hi, mid, right_lo, bottom],
        6 => vec![top, left_hi, left_lo, mid, right_lo, bottom],
        7 => vec![top, [(0.78, 0.14), (0.42, 0.88)]],
        8 => vec![top, mid, bottom, left_hi, left_lo, right_hi, right_lo],
        9 => vec![top, mid, bottom, left_hi, right_hi, right_lo],
        _ => panic!("digit out of range"),
    }
}

/// Renders one digit with random jitter.
fn render(digit: usize, rng: &mut ChaChaRng) -> Tensor {
    let mut img = vec![0.0f64; IMAGE_SIDE * IMAGE_SIDE];
    // Random affine jitter: scale, rotation, translation.
    let scale = 0.85 + rng.next_f64() * 0.3;
    let angle = (rng.next_f64() - 0.5) * 0.3;
    let (sin, cos) = angle.sin_cos();
    let dx = (rng.next_f64() - 0.5) * 4.0;
    let dy = (rng.next_f64() - 0.5) * 4.0;
    let thickness = 1.1 + rng.next_f64() * 0.5;

    let transform = |x: f64, y: f64| -> (f64, f64) {
        // Center, scale, rotate, translate into pixel space.
        let (cx, cy) = (x - 0.5, y - 0.5);
        let rx = cx * cos - cy * sin;
        let ry = cx * sin + cy * cos;
        (
            (rx * scale + 0.5) * (IMAGE_SIDE as f64 - 6.0) + 3.0 + dx,
            (ry * scale + 0.5) * (IMAGE_SIDE as f64 - 6.0) + 3.0 + dy,
        )
    };

    for stroke in strokes(digit) {
        let (x0, y0) = transform(stroke[0].0, stroke[0].1);
        let (x1, y1) = transform(stroke[1].0, stroke[1].1);
        let steps = ((x1 - x0).hypot(y1 - y0).ceil() as usize * 2).max(2);
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let (px, py) = (x0 + (x1 - x0) * t, y0 + (y1 - y0) * t);
            // Stamp a soft disc.
            let r = thickness.ceil() as i64 + 1;
            for oy in -r..=r {
                for ox in -r..=r {
                    let (ix, iy) = (px.round() as i64 + ox, py.round() as i64 + oy);
                    if ix < 0 || iy < 0 || ix >= IMAGE_SIDE as i64 || iy >= IMAGE_SIDE as i64 {
                        continue;
                    }
                    let d2 = (ix as f64 - px).powi(2) + (iy as f64 - py).powi(2);
                    let intensity = (-(d2) / (thickness * thickness)).exp() * 255.0;
                    let cell = &mut img[iy as usize * IMAGE_SIDE + ix as usize];
                    *cell = (*cell).max(intensity);
                }
            }
        }
    }
    // Pixel noise.
    for cell in img.iter_mut() {
        *cell = (*cell + rng.next_gaussian() * 8.0).clamp(0.0, 255.0);
    }
    Tensor::from_vec(&[1, IMAGE_SIDE, IMAGE_SIDE], img)
}

/// Generates `count` labelled samples, class-balanced, deterministic in
/// `seed`.
pub fn generate(count: usize, seed: u64) -> Vec<Sample> {
    let mut rng = ChaChaRng::from_seed(seed).fork("synthetic-digits");
    let mut samples = Vec::with_capacity(count);
    for i in 0..count {
        let label = i % 10;
        samples.push(Sample {
            image: render(label, &mut rng),
            label,
        });
    }
    rng.shuffle(&mut samples);
    samples
}

/// Normalizes grey levels 0–255 into `[0, 1]` (the float training input).
pub fn normalize(image: &Tensor) -> Tensor {
    image.map(|v| v / 255.0)
}

/// Quantizes grey levels 0–255 down to 4-bit integers 0–15 — the fixed-point
/// input both encrypted pipelines consume.
pub fn quantize_pixels(image: &Tensor) -> Vec<i64> {
    image.data().iter().map(|&v| (v as i64) >> 4).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(20, 7);
        let b = generate(20, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.image, y.image);
        }
        let c = generate(20, 8);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.image != y.image));
    }

    #[test]
    fn class_balanced() {
        let samples = generate(100, 1);
        let mut counts = [0usize; 10];
        for s in &samples {
            counts[s.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn pixel_range_valid() {
        for s in generate(10, 2) {
            assert_eq!(s.image.shape(), &[1, IMAGE_SIDE, IMAGE_SIDE]);
            assert!(s.image.data().iter().all(|&v| (0.0..=255.0).contains(&v)));
            // A digit must actually be drawn.
            assert!(s.image.max_abs() > 100.0);
        }
    }

    #[test]
    fn quantization_is_4_bit() {
        let s = &generate(5, 3)[0];
        let q = quantize_pixels(&s.image);
        assert!(q.iter().all(|&v| (0..16).contains(&v)));
    }

    #[test]
    fn digits_are_distinguishable_by_template() {
        // Noise-free check: mean rendering of each digit should differ.
        let mut rng = ChaChaRng::from_seed(0);
        let imgs: Vec<Tensor> = (0..10).map(|d| render(d, &mut rng)).collect();
        for i in 0..10 {
            for j in i + 1..10 {
                let diff: f64 = imgs[i]
                    .data()
                    .iter()
                    .zip(imgs[j].data())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(diff > 1000.0, "digits {i} and {j} look identical");
            }
        }
    }
}
