//! CNN layers with forward and backward passes.
//!
//! The set matches the paper's §II-A taxonomy: convolutional, pooling
//! (mean / scaled-mean / max), activation (Sigmoid, ReLU, Tanh, Leaky ReLU,
//! plus the Square approximation CryptoNets substitutes), and fully connected.

use crate::tensor::Tensor;
use hesgx_crypto::rng::ChaChaRng;
use serde::{Deserialize, Serialize};

/// Supported activation functions (paper §II-A4 lists the first four; Square
/// is the polynomial stand-in HE pipelines use, paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// `σ(x) = 1 / (1 + e^{-x})`.
    Sigmoid,
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// `max(αx, x)` with α = 0.01.
    LeakyRelu,
    /// `x²` — the HE-friendly polynomial approximation.
    Square,
}

impl ActivationKind {
    /// Applies the function to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            ActivationKind::Square => x * x,
        }
    }

    /// Derivative given the input `x` and the output `y = f(x)`.
    pub fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            ActivationKind::Sigmoid => y * (1.0 - y),
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            ActivationKind::Square => 2.0 * x,
        }
    }
}

/// Pooling flavors (paper §II-A2 and §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    /// Classic mean pooling (average of the window).
    Mean,
    /// Scaled mean pooling: the *sum* of the window — the division-free
    /// variant CryptoNets uses because HE cannot divide (paper §III-A). The
    /// output is `k²` times larger; the paper calls this "numerical
    /// diffusion".
    ScaledMean,
    /// Max pooling (only computable inside SGX in the hybrid design,
    /// paper §VI-D).
    Max,
}

/// Per-forward cache needed by the backward pass.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// No state needed.
    None,
    /// The layer input.
    Input(Tensor),
    /// Input and output.
    InOut(Tensor, Tensor),
    /// Input plus argmax indices (max pooling).
    MaxIdx(Tensor, Vec<usize>),
}

/// Parameter gradients produced by a backward pass.
#[derive(Debug, Clone)]
pub enum ParamGrads {
    /// Layer has no parameters.
    None,
    /// Weight and bias gradients.
    WeightsBias(Tensor, Vec<f64>),
}

/// 2-D convolution (valid padding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of kernels).
    pub out_channels: usize,
    /// Kernel side length.
    pub kernel: usize,
    /// Stride (the paper uses 1).
    pub stride: usize,
    /// Weights, shape `[out, in, k, k]`.
    pub weights: Tensor,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution with Xavier-uniform initial weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut ChaChaRng,
    ) -> Self {
        let fan_in = (in_channels * kernel * kernel) as f64;
        let bound = (6.0 / fan_in).sqrt();
        let weights = Tensor::from_fn(&[out_channels, in_channels, kernel, kernel], |_| {
            (rng.next_f64() * 2.0 - 1.0) * bound
        });
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weights,
            bias: vec![0.0; out_channels],
        }
    }

    /// Output spatial side for an `s`-sized square input.
    pub fn output_side(&self, s: usize) -> usize {
        (s - self.kernel) / self.stride + 1
    }

    fn weight_at(&self, o: usize, i: usize, ky: usize, kx: usize) -> f64 {
        let k = self.kernel;
        self.weights.data()[((o * self.in_channels + i) * k + ky) * k + kx]
    }

    /// Forward pass: input `[in, H, W]` → output `[out, H', W']`.
    pub fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let mut out = Tensor::zeros(&[self.out_channels, oh, ow]);
        for o in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[o];
                    for i in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                acc += self.weight_at(o, i, ky, kx)
                                    * input.at3(i, oy * self.stride + ky, ox * self.stride + kx);
                            }
                        }
                    }
                    *out.at3_mut(o, oy, ox) = acc;
                }
            }
        }
        (out, LayerCache::Input(input.clone()))
    }

    /// Backward pass: returns input gradient and parameter gradients.
    pub fn backward(&self, cache: &LayerCache, grad_out: &Tensor) -> (Tensor, ParamGrads) {
        let LayerCache::Input(input) = cache else {
            panic!("conv2d expects Input cache");
        };
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = (grad_out.shape()[1], grad_out.shape()[2]);
        let mut grad_in = Tensor::zeros(&[self.in_channels, h, w]);
        let mut grad_w = Tensor::zeros(self.weights.shape());
        let mut grad_b = vec![0.0; self.out_channels];
        let k = self.kernel;
        for (o, gb) in grad_b.iter_mut().enumerate() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at3(o, oy, ox);
                    *gb += g;
                    for i in 0..self.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let (y, x) = (oy * self.stride + ky, ox * self.stride + kx);
                                grad_w.data_mut()
                                    [((o * self.in_channels + i) * k + ky) * k + kx] +=
                                    g * input.at3(i, y, x);
                                *grad_in.at3_mut(i, y, x) += g * self.weight_at(o, i, ky, kx);
                            }
                        }
                    }
                }
            }
        }
        (grad_in, ParamGrads::WeightsBias(grad_w, grad_b))
    }

    /// SGD parameter update.
    pub fn apply_grads(&mut self, grads: &ParamGrads, lr: f64) {
        let ParamGrads::WeightsBias(gw, gb) = grads else {
            return;
        };
        for (w, g) in self.weights.data_mut().iter_mut().zip(gw.data()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb) {
            *b -= lr * g;
        }
    }
}

/// Elementwise activation layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activation {
    /// The function applied.
    pub kind: ActivationKind,
}

impl Activation {
    /// Forward pass.
    pub fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let out = input.map(|v| self.kind.apply(v));
        (out.clone(), LayerCache::InOut(input.clone(), out))
    }

    /// Backward pass.
    pub fn backward(&self, cache: &LayerCache, grad_out: &Tensor) -> (Tensor, ParamGrads) {
        let LayerCache::InOut(input, output) = cache else {
            panic!("activation expects InOut cache");
        };
        let mut grad_in = grad_out.clone();
        for ((g, &x), &y) in grad_in
            .data_mut()
            .iter_mut()
            .zip(input.data())
            .zip(output.data())
        {
            *g *= self.kind.derivative(x, y);
        }
        (grad_in, ParamGrads::None)
    }
}

/// Non-overlapping pooling layer with square window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool {
    /// Pooling flavor.
    pub kind: PoolKind,
    /// Window side length.
    pub window: usize,
}

impl Pool {
    /// Forward pass: `[c, H, W]` → `[c, H/k, W/k]`.
    ///
    /// # Panics
    ///
    /// Panics when the spatial size is not divisible by the window.
    pub fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        assert_eq!(h % self.window, 0, "height not divisible by window");
        assert_eq!(w % self.window, 0, "width not divisible by window");
        let (oh, ow) = (h / self.window, w / self.window);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let mut argmax = Vec::new();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    match self.kind {
                        PoolKind::Mean | PoolKind::ScaledMean => {
                            let mut acc = 0.0;
                            for dy in 0..self.window {
                                for dx in 0..self.window {
                                    acc +=
                                        input.at3(ch, oy * self.window + dy, ox * self.window + dx);
                                }
                            }
                            if self.kind == PoolKind::Mean {
                                acc /= (self.window * self.window) as f64;
                            }
                            *out.at3_mut(ch, oy, ox) = acc;
                        }
                        PoolKind::Max => {
                            let mut best = f64::NEG_INFINITY;
                            let mut best_idx = 0;
                            for dy in 0..self.window {
                                for dx in 0..self.window {
                                    let (y, x) = (oy * self.window + dy, ox * self.window + dx);
                                    let v = input.at3(ch, y, x);
                                    if v > best {
                                        best = v;
                                        best_idx = (ch * h + y) * w + x;
                                    }
                                }
                            }
                            *out.at3_mut(ch, oy, ox) = best;
                            argmax.push(best_idx);
                        }
                    }
                }
            }
        }
        let cache = if self.kind == PoolKind::Max {
            LayerCache::MaxIdx(input.clone(), argmax)
        } else {
            LayerCache::Input(input.clone())
        };
        (out, cache)
    }

    /// Backward pass.
    pub fn backward(&self, cache: &LayerCache, grad_out: &Tensor) -> (Tensor, ParamGrads) {
        match (self.kind, cache) {
            (PoolKind::Mean | PoolKind::ScaledMean, LayerCache::Input(input)) => {
                let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                let mut grad_in = Tensor::zeros(&[c, h, w]);
                let scale = if self.kind == PoolKind::Mean {
                    1.0 / (self.window * self.window) as f64
                } else {
                    1.0
                };
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            *grad_in.at3_mut(ch, y, x) =
                                grad_out.at3(ch, y / self.window, x / self.window) * scale;
                        }
                    }
                }
                (grad_in, ParamGrads::None)
            }
            (PoolKind::Max, LayerCache::MaxIdx(input, argmax)) => {
                let mut grad_in = Tensor::zeros(input.shape());
                for (flat, &idx) in argmax.iter().enumerate() {
                    grad_in.data_mut()[idx] += grad_out.data()[flat];
                }
                (grad_in, ParamGrads::None)
            }
            _ => panic!("pool cache mismatch"),
        }
    }
}

/// Fully connected layer over the flattened input.
///
/// The paper (Table VI) realizes this as a convolution whose kernels match the
/// input feature-map size; the two formulations compute the same dot products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Flattened input size.
    pub in_dim: usize,
    /// Output size (class count).
    pub out_dim: usize,
    /// Weights, shape `[out, in]`.
    pub weights: Tensor,
    /// Per-output bias.
    pub bias: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform initial weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut ChaChaRng) -> Self {
        let bound = (6.0 / in_dim as f64).sqrt();
        Dense {
            in_dim,
            out_dim,
            weights: Tensor::from_fn(&[out_dim, in_dim], |_| (rng.next_f64() * 2.0 - 1.0) * bound),
            bias: vec![0.0; out_dim],
        }
    }

    /// Forward pass (input is flattened automatically).
    pub fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        assert_eq!(input.len(), self.in_dim, "dense input size mismatch");
        let mut out = Tensor::zeros(&[self.out_dim]);
        for o in 0..self.out_dim {
            let row = &self.weights.data()[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, x) in row.iter().zip(input.data()) {
                acc += w * x;
            }
            out.data_mut()[o] = acc;
        }
        (out, LayerCache::Input(input.clone()))
    }

    /// Backward pass.
    pub fn backward(&self, cache: &LayerCache, grad_out: &Tensor) -> (Tensor, ParamGrads) {
        let LayerCache::Input(input) = cache else {
            panic!("dense expects Input cache");
        };
        let mut grad_in = Tensor::zeros(input.shape());
        let mut grad_w = Tensor::zeros(self.weights.shape());
        let mut grad_b = vec![0.0; self.out_dim];
        for (o, gb) in grad_b.iter_mut().enumerate() {
            let g = grad_out.data()[o];
            *gb = g;
            for i in 0..self.in_dim {
                grad_w.data_mut()[o * self.in_dim + i] += g * input.data()[i];
                grad_in.data_mut()[i] += g * self.weights.data()[o * self.in_dim + i];
            }
        }
        (grad_in, ParamGrads::WeightsBias(grad_w, grad_b))
    }

    /// SGD parameter update.
    pub fn apply_grads(&mut self, grads: &ParamGrads, lr: f64) {
        let ParamGrads::WeightsBias(gw, gb) = grads else {
            return;
        };
        for (w, g) in self.weights.data_mut().iter_mut().zip(gw.data()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb) {
            *b -= lr * g;
        }
    }
}

/// A network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Convolutional layer.
    Conv(Conv2d),
    /// Activation layer.
    Activation(Activation),
    /// Pooling layer.
    Pool(Pool),
    /// Fully connected layer.
    Dense(Dense),
}

impl Layer {
    /// Forward pass.
    pub fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        match self {
            Layer::Conv(l) => l.forward(input),
            Layer::Activation(l) => l.forward(input),
            Layer::Pool(l) => l.forward(input),
            Layer::Dense(l) => l.forward(input),
        }
    }

    /// Backward pass.
    pub fn backward(&self, cache: &LayerCache, grad_out: &Tensor) -> (Tensor, ParamGrads) {
        match self {
            Layer::Conv(l) => l.backward(cache, grad_out),
            Layer::Activation(l) => l.backward(cache, grad_out),
            Layer::Pool(l) => l.backward(cache, grad_out),
            Layer::Dense(l) => l.backward(cache, grad_out),
        }
    }

    /// SGD parameter update.
    pub fn apply_grads(&mut self, grads: &ParamGrads, lr: f64) {
        match self {
            Layer::Conv(l) => l.apply_grads(grads, lr),
            Layer::Dense(l) => l.apply_grads(grads, lr),
            _ => {}
        }
    }

    /// Human-readable layer name.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::Conv(_) => "Convolutional Layer",
            Layer::Activation(a) => match a.kind {
                ActivationKind::Sigmoid => "Sigmoid",
                ActivationKind::Relu => "ReLU",
                ActivationKind::Tanh => "Tanh",
                ActivationKind::LeakyRelu => "Leaky ReLU",
                ActivationKind::Square => "Square",
            },
            Layer::Pool(_) => "Pooling Layer",
            Layer::Dense(_) => "Fully Connected Layer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> ChaChaRng {
        ChaChaRng::from_seed(5)
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 reproduces the input.
        let mut conv = Conv2d::new(1, 1, 1, 1, &mut rng());
        conv.weights = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        conv.bias = vec![0.0];
        let input = Tensor::from_fn(&[1, 4, 4], |i| i as f64);
        let (out, _) = conv.forward(&input);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv_known_values() {
        // 2x2 all-ones kernel over 3x3 input: each output = window sum.
        let mut conv = Conv2d::new(1, 1, 2, 1, &mut rng());
        conv.weights = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0; 4]);
        conv.bias = vec![0.5];
        let input = Tensor::from_vec(&[1, 3, 3], (1..=9).map(f64::from).collect());
        let (out, _) = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_gradcheck() {
        // Numerical gradient check on a tiny conv.
        let mut r = rng();
        let conv = Conv2d::new(1, 2, 2, 1, &mut r);
        let input = Tensor::from_fn(&[1, 3, 3], |_| r.next_f64() - 0.5);
        let (out, cache) = conv.forward(&input);
        // Loss = sum of outputs; grad_out = ones.
        let grad_out = out.map(|_| 1.0);
        let (grad_in, _) = conv.backward(&cache, &grad_out);
        let eps = 1e-6;
        for idx in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let (outp, _) = conv.forward(&plus);
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let (outm, _) = conv.forward(&minus);
            let numeric =
                (outp.data().iter().sum::<f64>() - outm.data().iter().sum::<f64>()) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[idx]).abs() < 1e-5,
                "grad mismatch at {idx}: {numeric} vs {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn activations_known_values() {
        assert!((ActivationKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(ActivationKind::Relu.apply(-1.0), 0.0);
        assert_eq!(ActivationKind::Relu.apply(2.0), 2.0);
        assert_eq!(ActivationKind::Square.apply(-3.0), 9.0);
        assert_eq!(ActivationKind::LeakyRelu.apply(-1.0), -0.01);
        assert!((ActivationKind::Tanh.apply(0.0)).abs() < 1e-12);
    }

    #[test]
    fn activation_gradcheck_all_kinds() {
        for kind in [
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
            ActivationKind::Square,
            ActivationKind::LeakyRelu,
        ] {
            let act = Activation { kind };
            let input = Tensor::from_vec(&[1, 1, 3], vec![0.3, -0.7, 1.2]);
            let (out, cache) = act.forward(&input);
            let grad_out = out.map(|_| 1.0);
            let (grad_in, _) = act.backward(&cache, &grad_out);
            let eps = 1e-6;
            for idx in 0..3 {
                let mut plus = input.clone();
                plus.data_mut()[idx] += eps;
                let mut minus = input.clone();
                minus.data_mut()[idx] -= eps;
                let numeric = (act.forward(&plus).0.data().iter().sum::<f64>()
                    - act.forward(&minus).0.data().iter().sum::<f64>())
                    / (2.0 * eps);
                assert!(
                    (numeric - grad_in.data()[idx]).abs() < 1e-5,
                    "{kind:?} grad mismatch"
                );
            }
        }
    }

    #[test]
    fn mean_pool_values() {
        let pool = Pool {
            kind: PoolKind::Mean,
            window: 2,
        };
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let (out, _) = pool.forward(&input);
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn scaled_mean_pool_magnifies_by_window_square() {
        // The "numerical diffusion" the paper warns about: output is k² × mean.
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mean = Pool {
            kind: PoolKind::Mean,
            window: 2,
        }
        .forward(&input)
        .0;
        let scaled = Pool {
            kind: PoolKind::ScaledMean,
            window: 2,
        }
        .forward(&input)
        .0;
        assert_eq!(scaled.data()[0], mean.data()[0] * 4.0);
    }

    #[test]
    fn max_pool_values_and_backward() {
        let pool = Pool {
            kind: PoolKind::Max,
            window: 2,
        };
        let input = Tensor::from_vec(&[1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 8.0, 7.0]);
        let (out, cache) = pool.forward(&input);
        assert_eq!(out.data(), &[5.0, 8.0]);
        let grad_out = Tensor::from_vec(&[1, 1, 2], vec![1.0, 2.0]);
        let (grad_in, _) = pool.backward(&cache, &grad_out);
        assert_eq!(grad_in.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn dense_matches_manual_dot() {
        let mut d = Dense::new(3, 2, &mut rng());
        d.weights = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        d.bias = vec![0.5, -0.5];
        let input = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        let (out, _) = d.forward(&input);
        assert_eq!(out.data(), &[6.5, -0.5]);
    }

    #[test]
    fn dense_gradcheck() {
        let mut r = rng();
        let d = Dense::new(4, 3, &mut r);
        let input = Tensor::from_fn(&[4], |_| r.next_f64() - 0.5);
        let (out, cache) = d.forward(&input);
        let grad_out = out.map(|_| 1.0);
        let (grad_in, _) = d.backward(&cache, &grad_out);
        let eps = 1e-6;
        for idx in 0..4 {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (d.forward(&plus).0.data().iter().sum::<f64>()
                - d.forward(&minus).0.data().iter().sum::<f64>())
                / (2.0 * eps);
            assert!((numeric - grad_in.data()[idx]).abs() < 1e-5);
        }
    }
}

/// Batch normalization over channels (inference-style, fixed statistics).
///
/// The paper's related work (Chabanne et al. [10]) adds a normalization layer
/// before each activation so a low-degree polynomial approximation stays in
/// its accurate range. Provided here as the extension that technique needs;
/// statistics are set from data with [`BatchNorm::fit`] and then frozen
/// (affine transform per channel: `y = gamma·(x-mean)/sqrt(var+eps) + beta`),
/// which makes the layer linear — i.e. HE-computable outside the enclave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm {
    /// Per-channel means.
    pub mean: Vec<f64>,
    /// Per-channel variances.
    pub var: Vec<f64>,
    /// Per-channel scale.
    pub gamma: Vec<f64>,
    /// Per-channel shift.
    pub beta: Vec<f64>,
    /// Numerical-stability epsilon.
    pub eps: f64,
}

impl BatchNorm {
    /// Identity-initialized batch norm for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            mean: vec![0.0; channels],
            var: vec![1.0; channels],
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            eps: 1e-5,
        }
    }

    /// Sets the statistics from a sample of feature maps.
    ///
    /// # Panics
    ///
    /// Panics when a map's channel count differs from the layer's.
    pub fn fit(&mut self, maps: &[Tensor]) {
        let channels = self.mean.len();
        let mut count = vec![0usize; channels];
        let mut sum = vec![0.0f64; channels];
        let mut sum_sq = vec![0.0f64; channels];
        for map in maps {
            assert_eq!(map.shape()[0], channels, "channel mismatch in fit");
            let (h, w) = (map.shape()[1], map.shape()[2]);
            for c in 0..channels {
                for y in 0..h {
                    for x in 0..w {
                        let v = map.at3(c, y, x);
                        count[c] += 1;
                        sum[c] += v;
                        sum_sq[c] += v * v;
                    }
                }
            }
        }
        for c in 0..channels {
            if count[c] > 0 {
                let n = count[c] as f64;
                self.mean[c] = sum[c] / n;
                self.var[c] = (sum_sq[c] / n - self.mean[c] * self.mean[c]).max(0.0);
            }
        }
    }

    /// Forward pass (frozen statistics — a per-channel affine map).
    pub fn forward(&self, input: &Tensor) -> (Tensor, LayerCache) {
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        assert_eq!(c, self.mean.len(), "channel mismatch");
        let mut out = input.clone();
        for ch in 0..c {
            let scale = self.gamma[ch] / (self.var[ch] + self.eps).sqrt();
            let shift = self.beta[ch] - self.mean[ch] * scale;
            for y in 0..h {
                for x in 0..w {
                    *out.at3_mut(ch, y, x) = input.at3(ch, y, x) * scale + shift;
                }
            }
        }
        (out, LayerCache::None)
    }

    /// Backward pass (statistics frozen, gamma/beta treated as constants —
    /// the gradient is the per-channel scale).
    pub fn backward(&self, grad_out: &Tensor) -> Tensor {
        let (c, h, w) = (
            grad_out.shape()[0],
            grad_out.shape()[1],
            grad_out.shape()[2],
        );
        let mut grad_in = grad_out.clone();
        for ch in 0..c {
            let scale = self.gamma[ch] / (self.var[ch] + self.eps).sqrt();
            for y in 0..h {
                for x in 0..w {
                    *grad_in.at3_mut(ch, y, x) = grad_out.at3(ch, y, x) * scale;
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod batchnorm_tests {
    use super::*;
    use hesgx_crypto::rng::ChaChaRng;

    #[test]
    fn identity_when_uninitialized() {
        let bn = BatchNorm::new(2);
        let input = Tensor::from_fn(&[2, 2, 2], |i| i as f64);
        let (out, _) = bn.forward(&input);
        for (a, b) in out.data().iter().zip(input.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn fit_normalizes_to_zero_mean_unit_var() {
        let mut rng = ChaChaRng::from_seed(1);
        let maps: Vec<Tensor> = (0..8)
            .map(|_| Tensor::from_fn(&[1, 4, 4], |_| rng.next_gaussian() * 3.0 + 7.0))
            .collect();
        let mut bn = BatchNorm::new(1);
        bn.fit(&maps);
        assert!((bn.mean[0] - 7.0).abs() < 0.5);
        assert!((bn.var[0].sqrt() - 3.0).abs() < 0.5);
        // Normalized outputs have ~zero mean.
        let (out, _) = bn.forward(&maps[0]);
        let m: f64 = out.data().iter().sum::<f64>() / out.len() as f64;
        assert!(m.abs() < 1.0);
    }

    #[test]
    fn backward_scales_gradient() {
        let mut bn = BatchNorm::new(1);
        bn.var = vec![3.0];
        bn.gamma = vec![2.0];
        let grad_out = Tensor::from_vec(&[1, 1, 2], vec![1.0, -1.0]);
        let grad_in = bn.backward(&grad_out);
        let scale = 2.0 / (3.0f64 + 1e-5).sqrt();
        assert!((grad_in.data()[0] - scale).abs() < 1e-9);
        assert!((grad_in.data()[1] + scale).abs() < 1e-9);
    }

    #[test]
    fn frozen_batchnorm_is_affine_hence_he_friendly() {
        // y(a·x1 + b·x2) relation: affine maps commute with linear
        // combinations up to the shift — verify y(x) - shift is linear.
        let mut bn = BatchNorm::new(1);
        bn.mean = vec![2.0];
        bn.var = vec![4.0];
        bn.gamma = vec![3.0];
        bn.beta = vec![1.0];
        let x1 = Tensor::from_vec(&[1, 1, 1], vec![5.0]);
        let x2 = Tensor::from_vec(&[1, 1, 1], vec![-3.0]);
        let y = |t: &Tensor| bn.forward(t).0.data()[0];
        let shift = y(&Tensor::from_vec(&[1, 1, 1], vec![0.0]));
        let lin = |v: f64| y(&Tensor::from_vec(&[1, 1, 1], vec![v])) - shift;
        assert!((lin(5.0 + -3.0) - (lin(5.0) + lin(-3.0))).abs() < 1e-9);
        let _ = (x1, x2);
    }
}
