//! A small dense tensor type (row-major, `f64`) sufficient for the paper's
//! CNN: rank ≤ 4, shape-checked operations, no external BLAS.

use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or zero-sized dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension");
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Builds a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f64) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..len).map(&mut f).collect(),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Panics
    ///
    /// Panics when the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape volume mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// 3-D indexing `[c][y][x]` for `(channels, height, width)` tensors.
    ///
    /// # Panics
    ///
    /// Panics on rank ≠ 3 or out-of-bounds indices (debug builds).
    #[inline]
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f64 {
        debug_assert_eq!(self.shape.len(), 3);
        let (h, w) = (self.shape[1], self.shape[2]);
        self.data[c * h * w + y * w + x]
    }

    /// Mutable 3-D accessor.
    #[inline]
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f64 {
        debug_assert_eq!(self.shape.len(), 3);
        let (h, w) = (self.shape[1], self.shape[2]);
        &mut self.data[c * h * w + y * w + x]
    }

    /// Index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Maximum absolute value (0 for empty).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_volume() {
        Tensor::from_vec(&[2, 2], vec![1.0; 5]);
    }

    #[test]
    fn at3_row_major() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f64);
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 2), 6.0);
        assert_eq!(t.at3(1, 2, 3), 23.0);
    }

    #[test]
    fn argmax_first_max() {
        let t = Tensor::from_vec(&[5], vec![1.0, 9.0, 3.0, 9.0, 2.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f64);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn map_and_max_abs() {
        let t = Tensor::from_vec(&[3], vec![-2.0, 1.0, 0.5]);
        assert_eq!(t.max_abs(), 2.0);
        assert_eq!(t.map(|v| v * 2.0).data(), &[-4.0, 2.0, 1.0]);
    }
}
