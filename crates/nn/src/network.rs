//! Sequential networks, softmax cross-entropy training, and evaluation.

use crate::layers::{Layer, LayerCache, ParamGrads};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A feed-forward network: an ordered list of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Network { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (weight surgery in tests).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Plain forward pass: logits for one input.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur).0;
        }
        cur
    }

    /// Predicted class (argmax of logits).
    pub fn predict(&self, input: &Tensor) -> usize {
        self.forward(input).argmax()
    }

    /// Forward with caches for training.
    fn forward_train(&self, input: &Tensor) -> (Tensor, Vec<LayerCache>) {
        let mut cur = input.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, cache) = layer.forward(&cur);
            caches.push(cache);
            cur = next;
        }
        (cur, caches)
    }

    /// One SGD step on a single example. Returns the cross-entropy loss.
    ///
    /// Parameter gradients are clamped element-wise to ±1 — essential for the
    /// square-activation variant, whose unbounded activations otherwise blow
    /// the gradients up mid-training.
    pub fn train_step(&mut self, input: &Tensor, label: usize, lr: f64) -> f64 {
        let (logits, caches) = self.forward_train(input);
        let (loss, mut grad) = softmax_cross_entropy(&logits, label);
        let mut grads: Vec<ParamGrads> = Vec::with_capacity(self.layers.len());
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (grad_in, mut pgrads) = layer.backward(cache, &grad);
            clip_grads(&mut pgrads);
            grads.push(pgrads);
            grad = grad_in;
        }
        grads.reverse();
        for (layer, g) in self.layers.iter_mut().zip(grads.iter()) {
            layer.apply_grads(g, lr);
        }
        loss
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, samples: &[(Tensor, usize)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(x, y)| self.predict(x) == *y)
            .count();
        correct as f64 / samples.len() as f64
    }
}

/// Clamps parameter gradients element-wise to ±1 (gradient clipping).
fn clip_grads(grads: &mut ParamGrads) {
    if let ParamGrads::WeightsBias(w, b) = grads {
        for g in w.data_mut().iter_mut() {
            *g = g.clamp(-1.0, 1.0);
        }
        for g in b.iter_mut() {
            *g = g.clamp(-1.0, 1.0);
        }
    }
}

/// Softmax cross-entropy loss and its gradient w.r.t. the logits.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f64, Tensor) {
    let max = logits
        .data()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    let probs: Vec<f64> = exps.iter().map(|&e| e / sum).collect();
    let loss = -probs[label].max(1e-12).ln();
    let mut grad = Tensor::zeros(logits.shape());
    for (i, g) in grad.data_mut().iter_mut().enumerate() {
        *g = probs[i] - if i == label { 1.0 } else { 0.0 };
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationKind, Dense};
    use hesgx_crypto::rng::ChaChaRng;

    #[test]
    fn softmax_gradient_sums_to_zero() {
        let logits = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, 2);
        assert!(loss > 0.0);
        assert!(grad.data().iter().sum::<f64>().abs() < 1e-12);
        // Gradient at the true label must be negative.
        assert!(grad.data()[2] < 0.0);
    }

    #[test]
    fn tiny_mlp_learns_xor_like_task() {
        // 2-bit parity with a small MLP — sanity check of full backprop.
        let mut rng = ChaChaRng::from_seed(9);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(2, 8, &mut rng)),
            Layer::Activation(Activation {
                kind: ActivationKind::Tanh,
            }),
            Layer::Dense(Dense::new(8, 2, &mut rng)),
        ]);
        let data: Vec<(Tensor, usize)> = [(0., 0., 0), (0., 1., 1), (1., 0., 1), (1., 1., 0)]
            .iter()
            .map(|&(a, b, y)| (Tensor::from_vec(&[2], vec![a, b]), y))
            .collect();
        for _ in 0..600 {
            for (x, y) in &data {
                net.train_step(x, *y, 0.1);
            }
        }
        assert_eq!(net.accuracy(&data), 1.0, "XOR must be learnable");
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = ChaChaRng::from_seed(10);
        let mut net = Network::new(vec![Layer::Dense(Dense::new(4, 3, &mut rng))]);
        let x = Tensor::from_vec(&[4], vec![0.5, -0.5, 0.25, 1.0]);
        let first = net.train_step(&x, 1, 0.05);
        let mut last = first;
        for _ in 0..50 {
            last = net.train_step(&x, 1, 0.05);
        }
        assert!(last < first, "loss must decrease: {first} -> {last}");
    }
}
