//! Property-based tests of the CNN substrate: layer algebra, pooling
//! invariants, and quantized-model consistency.

use hesgx_crypto::rng::ChaChaRng;
use hesgx_nn::layers::{Activation, ActivationKind, Conv2d, Pool, PoolKind};
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_nn::tensor::Tensor;
use proptest::prelude::*;

fn arb_map(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f64..10.0, c * h * w)
        .prop_map(move |data| Tensor::from_vec(&[c, h, w], data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_is_linear(input1 in arb_map(1, 6, 6), input2 in arb_map(1, 6, 6), seed in any::<u64>()) {
        // conv(x + y) == conv(x) + conv(y) when bias is zero.
        let mut rng = ChaChaRng::from_seed(seed);
        let mut conv = Conv2d::new(1, 2, 3, 1, &mut rng);
        conv.bias = vec![0.0; 2];
        let sum = Tensor::from_vec(
            input1.shape(),
            input1.data().iter().zip(input2.data()).map(|(a, b)| a + b).collect(),
        );
        let (out_sum, _) = conv.forward(&sum);
        let (o1, _) = conv.forward(&input1);
        let (o2, _) = conv.forward(&input2);
        for ((s, a), b) in out_sum.data().iter().zip(o1.data()).zip(o2.data()) {
            prop_assert!((s - (a + b)).abs() < 1e-9);
        }
    }

    #[test]
    fn scaled_mean_is_window_square_times_mean(input in arb_map(2, 4, 4)) {
        let mean = Pool { kind: PoolKind::Mean, window: 2 }.forward(&input).0;
        let scaled = Pool { kind: PoolKind::ScaledMean, window: 2 }.forward(&input).0;
        for (m, s) in mean.data().iter().zip(scaled.data()) {
            prop_assert!((s - 4.0 * m).abs() < 1e-9);
        }
    }

    #[test]
    fn max_pool_dominates_mean_pool(input in arb_map(1, 4, 4)) {
        let mean = Pool { kind: PoolKind::Mean, window: 2 }.forward(&input).0;
        let max = Pool { kind: PoolKind::Max, window: 2 }.forward(&input).0;
        for (m, x) in mean.data().iter().zip(max.data()) {
            prop_assert!(x >= m);
        }
    }

    #[test]
    fn sigmoid_bounded_monotone(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let sa = ActivationKind::Sigmoid.apply(a);
        let sb = ActivationKind::Sigmoid.apply(b);
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn activations_preserve_shape(input in arb_map(2, 3, 3)) {
        for kind in [ActivationKind::Sigmoid, ActivationKind::Relu, ActivationKind::Tanh, ActivationKind::Square, ActivationKind::LeakyRelu] {
            let (out, _) = Activation { kind }.forward(&input);
            prop_assert_eq!(out.shape(), input.shape());
        }
    }

    #[test]
    fn quantized_forward_deterministic_and_bounded(pixels in proptest::collection::vec(0i64..16, 64)) {
        let model = QuantizedCnn {
            pipeline: QuantPipeline::Hybrid,
            in_side: 8,
            conv_out: 2,
            kernel: 3,
            window: 2,
            classes: 4,
            conv_weights: (0..18).map(|i| (i % 7) as i64 - 3).collect(),
            conv_bias: vec![1, -2],
            fc_weights: (0..4 * 18).map(|i| (i % 5) as i64 - 2).collect(),
            fc_bias: vec![5, -5, 0, 2],
            weight_scale: 8,
            fc_scale: 8,
            act_scale: 16,
        };
        let l1 = model.forward_ints(&pixels);
        let l2 = model.forward_ints(&pixels);
        prop_assert_eq!(&l1, &l2);
        // Every intermediate bound from the range report must hold.
        let report = model.range_report();
        for &v in &model.conv_ints(&pixels) {
            prop_assert!(v.abs() <= report.conv_bound);
        }
        for &logit in &l1 {
            prop_assert!(logit.abs() <= report.logit_bound);
        }
        prop_assert!(model.predict_ints(&pixels) < 4);
    }

    #[test]
    fn enclave_mean_is_rounded_true_mean(sum in 0i64..10_000) {
        let model = QuantizedCnn {
            pipeline: QuantPipeline::Hybrid,
            in_side: 8,
            conv_out: 1,
            kernel: 3,
            window: 2,
            classes: 2,
            conv_weights: vec![1; 9],
            conv_bias: vec![0],
            fc_weights: vec![1; 18],
            fc_bias: vec![0, 0],
            weight_scale: 8,
            fc_scale: 8,
            act_scale: 16,
        };
        let mean = model.enclave_mean(sum);
        let true_mean = sum as f64 / 4.0;
        prop_assert!((mean as f64 - true_mean).abs() <= 0.5);
    }
}
