//! Criterion micro-benchmarks for the workloads behind Figures 3-6 and the
//! per-layer pieces of Figure 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hesgx_bench::experiments::figures::scale_stub;
use hesgx_bench::PaperEnv;
use hesgx_bfv::prelude::PolyArena;
use hesgx_henn::image::EncryptedMap;
use hesgx_henn::ops::{self, OpCounter};
use hesgx_henn::weights::{conv_weight_count, encode_weights};
use hesgx_nn::layers::ActivationKind;
use std::hint::black_box;

fn bench_weight_encoding(c: &mut Criterion) {
    let env = PaperEnv::new(11);
    let mut group = c.benchmark_group("fig3/weight_encoding");
    for kernels in [11usize, 26] {
        let count = conv_weight_count(kernels, 5);
        let weights: Vec<i64> = (0..count).map(|i| (i as i64 % 63) - 31).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kernels}kernels_5x5")),
            &weights,
            |b, w| b.iter(|| black_box(encode_weights(&env.sys, w).unwrap())),
        );
    }
    group.finish();
}

fn bench_conv_kernel(c: &mut Criterion) {
    let env = PaperEnv::new(12);
    let mut rng = env.rng.fork("bench-conv");
    let images = vec![(0..784).map(|p| (p % 16) as i64).collect::<Vec<i64>>()];
    let input =
        EncryptedMap::encrypt_images(&env.sys, &images, 28, &env.keys.public, &mut rng).unwrap();
    let mut group = c.benchmark_group("fig4/he_conv_28x28");
    group.sample_size(10);
    for k in [1usize, 5, 14, 28] {
        let weights: Vec<i64> = (0..k * k).map(|i| (i as i64 % 5) - 2).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut counter = OpCounter::default();
                black_box(
                    ops::he_conv2d(&env.sys, &input, &weights, &[0], 1, k, 1, &mut counter)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_sigmoid_variants(c: &mut Criterion) {
    let env = PaperEnv::new(13);
    let mut rng = env.rng.fork("bench-sigmoid");
    let side = 12;
    let images = vec![(0..side * side)
        .map(|p| (p as i64 % 31) - 15)
        .collect::<Vec<i64>>()];
    let input =
        EncryptedMap::encrypt_images(&env.sys, &images, side, &env.keys.public, &mut rng).unwrap();
    let model = scale_stub(2);
    let real = env.inference_enclave(false);
    let fake = env.inference_enclave(true);
    let mut group = c.benchmark_group("fig5/sigmoid_12x12");
    group.sample_size(10);
    group.bench_function("encrypt_sigmoid_square_relin", |b| {
        b.iter(|| {
            let mut counter = OpCounter::default();
            black_box(
                ops::he_square_activation(&env.sys, &input, &env.keys.evaluation, &mut counter)
                    .unwrap(),
            )
        })
    });
    group.bench_function("sgx_sigmoid", |b| {
        b.iter(|| {
            black_box(
                real.activation_map(&env.sys, &input, &model, ActivationKind::Sigmoid)
                    .unwrap(),
            )
        })
    });
    group.bench_function("fake_sgx_sigmoid", |b| {
        b.iter(|| {
            black_box(
                fake.activation_map(&env.sys, &input, &model, ActivationKind::Sigmoid)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_pooling_variants(c: &mut Criterion) {
    let env = PaperEnv::new(14);
    let arena = PolyArena::new();
    let mut rng = env.rng.fork("bench-pool");
    let images = vec![(0..576).map(|p| (p % 17) as i64).collect::<Vec<i64>>()];
    let input =
        EncryptedMap::encrypt_images(&env.sys, &images, 24, &env.keys.public, &mut rng).unwrap();
    let real = env.inference_enclave(false);
    let mut group = c.benchmark_group("fig6/pooling_24x24");
    group.sample_size(10);
    for window in [2usize, 4, 8] {
        let model = scale_stub(window);
        group.bench_with_input(
            BenchmarkId::new("sgx_div", window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let mut counter = OpCounter::default();
                    let summed =
                        ops::he_scaled_mean_pool(&env.sys, &input, window, &mut counter, &arena)
                            .unwrap();
                    black_box(real.divide_map(&env.sys, &summed, &model).unwrap())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sgx_pool", window), &window, |b, _| {
            b.iter(|| black_box(real.pool_full_map(&env.sys, &input, &model, false).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_weight_encoding,
    bench_conv_kernel,
    bench_sigmoid_variants,
    bench_pooling_variants
);
criterion_main!(figures);
