//! Criterion micro-benchmarks for the operations behind Tables I-V.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hesgx_bench::{PaperEnv, PAPER_BATCH_SIZE};
use hesgx_bfv::prelude::KeyGenerator;
use hesgx_henn::image::EncryptedMap;
use std::hint::black_box;

fn bench_keygen(c: &mut Criterion) {
    let env = PaperEnv::new(1);
    let ctx = env.sys.contexts()[0].clone();
    let mut rng = env.rng.fork("bench-keygen");
    c.bench_function("table1/keygen_outside", |b| {
        b.iter(|| black_box(KeyGenerator::new(ctx.clone(), &mut rng)))
    });
    let enclave = env.build_enclave("bench-keygen", false);
    c.bench_function("table1/keygen_inside_sgx", |b| {
        b.iter(|| {
            let (kg, cost) = enclave.ecall("ecall_generate_key", 0, 2048, |_| {
                KeyGenerator::new(ctx.clone(), &mut rng)
            });
            black_box((kg, cost.total_ns()))
        })
    });
}

fn bench_image_encryption(c: &mut Criterion) {
    let env = PaperEnv::new(2);
    let mut rng = env.rng.fork("bench-enc");
    let images: Vec<Vec<i64>> = (0..PAPER_BATCH_SIZE)
        .map(|b| (0..784).map(|p| ((p + b) % 16) as i64).collect())
        .collect();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("encrypt_10_images", |b| {
        b.iter(|| {
            black_box(
                EncryptedMap::encrypt_images(&env.sys, &images, 28, &env.keys.public, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_result_decryption(c: &mut Criterion) {
    let env = PaperEnv::new(3);
    let mut rng = env.rng.fork("bench-dec");
    let ct = env
        .sys
        .encrypt_slots(&[9; PAPER_BATCH_SIZE], &env.keys.public, &mut rng)
        .unwrap();
    c.bench_function("table3/decrypt_one_result", |b| {
        b.iter(|| black_box(env.sys.decrypt_slots(&ct, &env.keys.secret).unwrap()))
    });
}

fn bench_relinearization(c: &mut Criterion) {
    let env = PaperEnv::new(4);
    let mut rng = env.rng.fork("bench-relin");
    let fresh = env
        .sys
        .encrypt_slots(&[7; PAPER_BATCH_SIZE], &env.keys.public, &mut rng)
        .unwrap();
    let size3 = env.sys.square(&fresh).unwrap();
    c.bench_function("table5/relinearize", |b| {
        b.iter(|| black_box(env.sys.relinearize(&size3, &env.keys.evaluation).unwrap()))
    });
    let ie = env.inference_enclave(false);
    c.bench_function("table5/sgx_noise_reduction", |b| {
        b.iter(|| black_box(ie.refresh_one(&env.sys, &size3).unwrap()))
    });
    let batch: Vec<_> = (0..PAPER_BATCH_SIZE).map(|_| size3.clone()).collect();
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("sgx_noise_reduction_batched_10", |b| {
        b.iter_batched(
            || batch.clone(),
            |batch| black_box(ie.refresh_batch(&env.sys, &batch).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    tables,
    bench_keygen,
    bench_image_encryption,
    bench_result_decryption,
    bench_relinearization
);
criterion_main!(tables);
