//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p hesgx-bench --bin repro             # everything
//! cargo run --release -p hesgx-bench --bin repro -- table1   # one experiment
//! cargo run --release -p hesgx-bench --bin repro -- --quick  # reduced reps
//! ```

use hesgx_bench::experiments::{
    ablation, bench_trajectory, chaos_sweep, e2e, figures, ntt_bench, obs_report, par_sweep,
    profile, serve_load, tables, trace, transcipher, RunConfig,
};
use hesgx_bench::PaperEnv;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "model",
    "fig8",
    "ablation",
    "par_sweep",
    "chaos_sweep",
    "obs_report",
    "trace",
    "serve_load",
    "ntt_bench",
    "transcipher",
    "profile",
    "bench_trajectory",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    let run_all = selected.is_empty();
    let wanted = |name: &str| run_all || selected.contains(&name);

    for name in &selected {
        if !EXPERIMENTS.contains(name) {
            eprintln!("unknown experiment '{name}'; known: {EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }

    let cfg = RunConfig { quick };
    println!(
        "hesgx paper reproduction — ICDCS 2021 'Privacy-Preserving Neural Network Inference Framework via Homomorphic Encryption and SGX'"
    );
    println!(
        "mode: {} | FV n = {} | batchSize = {}",
        if quick { "quick" } else { "full" },
        hesgx_bench::PAPER_POLY_DEGREE,
        hesgx_bench::PAPER_BATCH_SIZE
    );

    let needs_env = [
        "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6",
        "ablation",
    ]
    .iter()
    .any(|e| wanted(e));
    let mut env = needs_env.then(|| PaperEnv::new(2021));

    if let Some(env) = env.as_mut() {
        // Each experiment's obs snapshot is cut (and the recorder reset) right
        // after it runs, so `target/obs/<name>.json` holds that experiment's
        // spans and counters alone.
        let snapshot = |name: &str, env: &PaperEnv| {
            if let Some(path) = hesgx_bench::write_obs_snapshot(name, &env.obs) {
                println!("obs snapshot written to {}", path.display());
            }
            env.obs.reset();
        };
        if wanted("table1") {
            tables::table1_keygen(env, cfg);
            snapshot("table1", env);
        }
        if wanted("table2") {
            tables::table2_image_encryption(env, cfg);
            snapshot("table2", env);
        }
        if wanted("table3") {
            tables::table3_result_decryption(env, cfg);
            snapshot("table3", env);
        }
        if wanted("table4") {
            tables::table4_enc_dec_costs(env, cfg);
            snapshot("table4", env);
        }
        if wanted("table5") {
            tables::table5_relinearization(env, cfg);
            snapshot("table5", env);
        }
        if wanted("fig3") {
            figures::fig3_weight_encoding(env, cfg);
            snapshot("fig3", env);
        }
        if wanted("fig4") {
            figures::fig4_conv_kernel(env, cfg);
            snapshot("fig4", env);
        }
        if wanted("fig5") {
            figures::fig5_sigmoid(env, cfg);
            snapshot("fig5", env);
        }
        if wanted("fig6") {
            figures::fig6_pooling(env, cfg);
            snapshot("fig6", env);
        }
        if wanted("ablation") {
            ablation::run_all(env, cfg);
            snapshot("ablation", env);
        }
    }
    if wanted("model") {
        e2e::print_model_table();
    }
    if wanted("fig8") {
        e2e::fig8_end_to_end(cfg);
    }
    if wanted("par_sweep") {
        par_sweep::par_sweep(cfg);
    }
    if wanted("chaos_sweep") {
        chaos_sweep::chaos_sweep(cfg);
    }
    if wanted("obs_report") {
        obs_report::obs_report(cfg);
    }
    if wanted("trace") {
        trace::trace(cfg);
    }
    if wanted("serve_load") {
        serve_load::serve_load(cfg);
    }
    if wanted("ntt_bench") {
        ntt_bench::ntt_bench(cfg);
    }
    if wanted("transcipher") {
        transcipher::transcipher(cfg);
    }
    if wanted("profile") {
        profile::profile(cfg);
    }
    // Explicit-only: appends a dated row to a checked-in results file, a
    // commit-time action — never part of the run-everything sweep.
    if selected.contains(&"bench_trajectory") {
        bench_trajectory::bench_trajectory(cfg);
    }
    println!();
    println!("done.");
}
