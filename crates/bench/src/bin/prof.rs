//! Micro-profiler for the FV primitive operations — a development tool for
//! tracking the per-operation costs that feed the paper experiments
//! (`cargo run --release -p hesgx-bench --bin prof`).

use hesgx_bfv::context::BfvContext;
use hesgx_bfv::ntt::NttTable;
use hesgx_bfv::prelude::*;
use hesgx_crypto::rng::ChaChaRng;
use std::hint::black_box;
use std::time::Instant;
fn main() {
    let params = EncryptionParameters::builder()
        .poly_degree(1024)
        .plain_modulus(8404993)
        .build()
        .unwrap();
    let ctx = BfvContext::new(params).unwrap();
    let mut rng = ChaChaRng::from_seed(1);
    let kg = KeyGenerator::new(ctx.clone(), &mut rng);
    let enc = Encryptor::new(ctx.clone(), kg.public_key());
    let pt = Plaintext::constant(5);
    let ct = enc.encrypt(&pt, &mut rng).unwrap();
    let n = 500;

    let t0 = Instant::now();
    for _ in 0..n {
        black_box(Decryptor::new(ctx.clone(), kg.secret_key()));
    }
    println!(
        "Decryptor::new: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let dec = Decryptor::new(ctx.clone(), kg.secret_key());
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(dec.decrypt(&ct).unwrap());
    }
    println!(
        "decrypt: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let t0 = Instant::now();
    for _ in 0..n {
        black_box(enc.encrypt(&pt, &mut rng).unwrap());
    }
    println!(
        "encrypt: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // raw NTT
    let table = NttTable::new(1024, 8404993);
    let mut data: Vec<u64> = (0..1024u64).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        table.forward(&mut data);
        table.inverse(&mut data);
    }
    println!(
        "fwd+inv NTT: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // rng throughput
    let mut buf = vec![0u8; 8192];
    let t0 = Instant::now();
    for _ in 0..n {
        rng.fill_bytes(&mut buf);
    }
    println!(
        "chacha 8KB: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // batch encoder
    let be = BatchEncoder::new(ctx.params()).unwrap();
    let vals: Vec<u64> = (0..1024).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(be.encode(&vals).unwrap());
    }
    println!(
        "batch encode: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );
    let p2 = be.encode(&vals).unwrap();
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(be.decode(&p2));
    }
    println!(
        "batch decode: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // u128 rescale loop
    let q = ctx.params().coeff_moduli()[0];
    let t_mod = ctx.params().plain_modulus();
    let xs: Vec<u64> = (0..1024u64).map(|i| i * 1_000_003 % q).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        let mut acc = 0u64;
        for &x in &xs {
            let quot = (t_mod as u128 * x as u128 + q as u128 / 2) / q as u128;
            acc = acc.wrapping_add(quot as u64);
        }
        black_box(acc);
    }
    println!(
        "u128 rescale 1024: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // raw_phase-free decrypt pieces: clone+to_ntt of ciphertext-sized poly
    use hesgx_bfv::sampler;
    let mut rng2 = ChaChaRng::from_seed(9);
    let poly = sampler::uniform_poly(&ctx, &mut rng2, hesgx_bfv::poly::PolyForm::Coeff);
    let t0 = Instant::now();
    for _ in 0..n {
        let mut p = poly.clone();
        p.to_ntt(&ctx);
        black_box(&p);
    }
    println!(
        "clone+to_ntt: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // gaussian + ternary sampling
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(sampler::gaussian_poly(
            &ctx,
            &mut rng2,
            hesgx_bfv::poly::PolyForm::Coeff,
        ));
    }
    println!(
        "gaussian_poly: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(sampler::ternary_poly(
            &ctx,
            &mut rng2,
            hesgx_bfv::poly::PolyForm::Ntt,
        ));
    }
    println!(
        "ternary_poly(ntt): {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let t0 = Instant::now();
    for _ in 0..n {
        black_box(poly.clone());
    }
    println!(
        "poly clone alone: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let signed: Vec<i64> = (0..1024).map(|i| (i % 3) as i64 - 1).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(hesgx_bfv::poly::RnsPoly::from_signed(
            &ctx,
            &signed,
            hesgx_bfv::poly::PolyForm::Coeff,
        ));
    }
    println!(
        "from_signed coeff: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    let t0 = Instant::now();
    for _ in 0..n {
        black_box(sampler::ternary_signed(1024, &mut rng2));
    }
    println!(
        "ternary_signed: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );

    // forward NTT on a fresh clone each time (mimics to_ntt usage)
    let mut limb: Vec<u64> = (0..1024u64).map(|i| i * 7 % q).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        table.forward(&mut limb);
    }
    println!(
        "fwd NTT alone: {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}
// appended second main? no — edit instead
