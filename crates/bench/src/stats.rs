//! Summary statistics matching the paper's reporting style
//! (average, standard deviation, 96 % confidence interval).

/// Mean / STD / 96 % CI of a sample, in the units of the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// 96 % confidence interval for the mean (normal approximation,
    /// z = 2.054 — the paper reports 96 % CIs in Tables I–V).
    pub ci96: (f64, f64),
    /// Sample count.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let half = 2.054 * std / (n as f64).sqrt();
        Stats {
            mean,
            std,
            ci96: (mean - half, mean + half),
            n,
        }
    }
}

impl Stats {
    /// Computes statistics after discarding the top and bottom 10 % of
    /// samples (scheduler/container noise protection; the reported tables
    /// note the trimming).
    pub fn from_samples_trimmed(samples: &[f64]) -> Stats {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let drop = sorted.len() / 10;
        let kept = &sorted[drop..sorted.len() - drop];
        Stats::from_samples(if kept.is_empty() { &sorted } else { kept })
    }
}

/// Measures `f` `reps` times and returns per-rep durations in milliseconds.
/// Two warm-up invocations precede the timed runs (allocator and cache
/// warm-up would otherwise dominate the first sample).
pub fn time_reps_ms(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    f();
    f();
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = std::time::Instant::now();
        f();
        out.push(start.elapsed().as_secs_f64() * 1e3);
    }
    out
}

/// Least-squares linear fit `y = a + b·x`; returns `(a, b, r²)`.
///
/// # Panics
///
/// Panics when fewer than two points are provided.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2);
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_sample() {
        let s = Stats::from_samples(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci96, (5.0, 5.0));
    }

    #[test]
    fn stats_of_known_sample() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!(s.ci96.0 < 2.0 && s.ci96.1 > 2.0);
    }

    #[test]
    fn linear_fit_perfect_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b, r2) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line_high_r2() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, 1.0 + 4.0 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            })
            .collect();
        let (_, b, r2) = linear_fit(&pts);
        assert!((b - 4.0).abs() < 0.01);
        assert!(r2 > 0.999);
    }
}

#[cfg(test)]
mod trim_tests {
    use super::*;

    #[test]
    fn trimmed_ignores_outliers() {
        let mut samples = vec![1.0; 18];
        samples.push(100.0);
        samples.push(0.001);
        let s = Stats::from_samples_trimmed(&samples);
        assert!((s.mean - 1.0).abs() < 1e-9);
    }
}
