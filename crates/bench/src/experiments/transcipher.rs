//! `transcipher` — transciphered ingress versus FV-ciphertext ingress
//! (DESIGN.md §17; the upload-bandwidth escape hatch the paper's client
//! cannot afford to skip at WAN link speeds).
//!
//! The same image batch is served twice per HE pool size: once uploaded the
//! classic way (one FV ciphertext per pixel — megabytes), once as a
//! ChaCha20-sealed stream payload that the enclave re-encrypts under FV
//! behind `ecall_Transcipher` (4 bytes per quantized pixel plus framing —
//! kilobytes). Three claims are asserted and written to the artifacts:
//!
//! 1. **Logit bit-identity** — both ingress modes produce byte-identical
//!    logits at every HE pool size (1/2/4); the in-enclave re-encryption
//!    decrypts to exactly the pixels the client packed.
//! 2. **Upload reduction** — the transciphered payload is at least 50×
//!    smaller than the FV upload (acceptance floor; the realized ratio at
//!    these parameters is far higher).
//! 3. **Cost reconciliation** — the new ECALL's modeled cost lands in the
//!    session's books ns-for-ns: folding the recorder's `infer.*.ecall`
//!    spans (now including `infer.ingress.ecall`) reproduces
//!    `total_enclave_cost` exactly.
//!
//! Artifacts: `target/bench/BENCH_transcipher.json` (wall times included —
//! informative, not replay-stable) and
//! `target/bench/BENCH_transcipher.deterministic.json` (upload bytes,
//! reduction ratio, identity/reconciliation flags, modeled ns — byte-stable;
//! CI runs the experiment twice and diffs it).

use super::{header, RunConfig};
use hesgx_core::pipeline::total_enclave_cost;
use hesgx_core::request::{InferRequest, Ingress};
use hesgx_core::session::{ParamsPreset, Session, SessionBuilder};
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_obs::{Recorder, SpanCost};
use hesgx_tee::enclave::Platform;
use hesgx_tee::wall::WallTimer;
use std::fmt::Write as _;

/// Session seed: both ingress modes provision from the same seed so the key
/// domain, the ingress key, and every RNG stream line up.
const SEED: u64 = 1721;

/// HE worker-pool sizes the identity claim is checked at.
const POOLS: [usize; 3] = [1, 2, 4];

/// One `(pool, ingress)` cell of the sweep.
#[derive(Debug, Clone)]
struct ServeRun {
    logits: Vec<Vec<i64>>,
    upload_bytes: u64,
    wall_ns: u64,
    ingress_model_ns: u64,
}

/// The experiment summary the integration tests assert on.
#[derive(Debug, Clone)]
pub struct TranscipherBench {
    /// FV-ciphertext upload bytes for the batch.
    pub fv_upload_bytes: u64,
    /// Transciphered payload bytes for the same batch.
    pub transcipher_upload_bytes: u64,
    /// Logits byte-identical across both modes and every pool size.
    pub logits_match: bool,
    /// Folded `infer.*.ecall` spans reproduced `total_enclave_cost` exactly
    /// on the transciphered serve.
    pub cost_reconciles: bool,
    /// Modeled ns of the `ecall_Transcipher` ingress stage.
    pub ingress_model_ns: u64,
}

impl TranscipherBench {
    /// Upload-bytes reduction of transciphered over FV ingress (integer).
    pub fn reduction(&self) -> u64 {
        self.fv_upload_bytes / self.transcipher_upload_bytes.max(1)
    }
}

/// The served model: the paper CNN's dimensions in full mode, a scaled-down
/// stand-in in quick mode. Deterministic formula weights — the A/B
/// comparison needs identical models, not trained ones.
fn model(quick: bool) -> QuantizedCnn {
    let (in_side, conv_out, kernel, window, classes) = if quick {
        (12, 2, 3, 2, 3)
    } else {
        (28, 5, 5, 2, 10)
    };
    let out_side = in_side - kernel + 1;
    let flat = conv_out * (out_side / window) * (out_side / window);
    QuantizedCnn {
        pipeline: QuantPipeline::Hybrid,
        in_side,
        conv_out,
        kernel,
        window,
        classes,
        conv_weights: (0..conv_out * kernel * kernel)
            .map(|i| (i % 7) as i64 - 3)
            .collect(),
        conv_bias: (0..conv_out).map(|i| (i as i64 % 5) - 2).collect(),
        fc_weights: (0..classes * flat).map(|i| (i % 5) as i64 - 2).collect(),
        fc_bias: (0..classes).map(|i| (i as i64 % 9) - 4).collect(),
        weight_scale: 8,
        fc_scale: 8,
        act_scale: 16,
    }
}

fn build_session(
    preset: ParamsPreset,
    threads: usize,
    model: &QuantizedCnn,
) -> (Session, Recorder) {
    let rec = Recorder::enabled();
    let session = SessionBuilder::new()
        .params(preset)
        .threads(threads)
        .seed(SEED)
        .recorder(rec.clone())
        .build(Platform::new(1721), model.clone())
        .expect("transcipher bench session provisions");
    (session, rec)
}

/// Serves `images` once on a fresh session and books the run. A fresh
/// session per serve keeps every RNG stream at its origin, so logits are
/// comparable bit-for-bit across cells of the sweep.
fn serve_once(
    preset: ParamsPreset,
    threads: usize,
    model: &QuantizedCnn,
    images: &[Vec<i64>],
    ingress: Ingress,
) -> (ServeRun, bool) {
    let (session, rec) = build_session(preset, threads, model);
    let timer = WallTimer::start();
    let response = session
        .serve(InferRequest::batch(images.to_vec()).ingress(ingress))
        .expect("transcipher bench serve succeeds");
    let wall_ns = timer.elapsed_ns();
    let metrics = session.metrics().expect("one inference ran");
    // Reconciliation: fold exactly the `.ecall` pipeline spans (the `.he`
    // spans carry wall time only) and compare against the session's books.
    let folded = rec
        .spans_with_prefix("infer.")
        .into_iter()
        .filter(|(name, _)| name.ends_with(".ecall"))
        .fold(SpanCost::default(), |acc, (_, s)| {
            acc.saturating_add(s.cost)
        });
    let reconciles = folded == total_enclave_cost(&metrics).span_cost();
    let ingress_model_ns = metrics
        .stages
        .iter()
        .find(|s| s.name.contains("Transciphered"))
        .and_then(|s| s.enclave.as_ref())
        .map(|c| c.span_cost().model_ns())
        .unwrap_or(0);
    (
        ServeRun {
            logits: response.logits,
            upload_bytes: response.upload_bytes,
            wall_ns,
            ingress_model_ns,
        },
        reconciles,
    )
}

/// Runs the transciphered-ingress experiment and writes both artifacts.
pub fn transcipher(cfg: RunConfig) -> TranscipherBench {
    header("TRANSCIPHER: stream-cipher ingress vs FV-ciphertext ingress (DESIGN.md §17)");
    let (preset, degree) = if cfg.quick {
        (ParamsPreset::Small, 256)
    } else {
        (ParamsPreset::Paper, crate::PAPER_POLY_DEGREE)
    };
    let m = model(cfg.quick);
    let pixels = m.in_side * m.in_side;
    let images: Vec<Vec<i64>> = (0..crate::PAPER_BATCH_SIZE)
        .map(|b| (0..pixels).map(|p| ((p * 3 + b * 7) % 16) as i64).collect())
        .collect();
    println!(
        "batch of {} {}x{} images at poly degree {degree}; fresh session per \
         serve, seed {SEED}",
        images.len(),
        m.in_side,
        m.in_side,
    );
    println!(
        "\n{:>5} {:>14} {:>18} {:>16} {:>14}",
        "pool", "ingress", "upload (bytes)", "wall (ns)", "logits"
    );

    let mut fv_upload = 0u64;
    let mut tc_upload = 0u64;
    let mut logits_match = true;
    let mut cost_reconciles = true;
    let mut ingress_model_ns = 0u64;
    let mut reference: Option<Vec<Vec<i64>>> = None;
    let mut rows: Vec<(usize, &'static str, u64, u64)> = Vec::new();
    for &threads in &POOLS {
        for ingress in [Ingress::FvCiphertext, Ingress::Transciphered] {
            let (run, reconciled) = serve_once(preset, threads, &m, &images, ingress);
            cost_reconciles &= reconciled;
            let matches = match &reference {
                None => {
                    reference = Some(run.logits.clone());
                    true
                }
                Some(reference) => reference == &run.logits,
            };
            logits_match &= matches;
            let label = match ingress {
                Ingress::FvCiphertext => {
                    fv_upload = run.upload_bytes;
                    "fv-ciphertext"
                }
                Ingress::Transciphered => {
                    tc_upload = run.upload_bytes;
                    ingress_model_ns = run.ingress_model_ns;
                    "transciphered"
                }
            };
            println!(
                "{:>5} {:>14} {:>18} {:>16} {:>14}",
                threads,
                label,
                run.upload_bytes,
                run.wall_ns,
                if matches { "identical" } else { "DIVERGED" }
            );
            rows.push((threads, label, run.upload_bytes, run.wall_ns));
        }
    }

    let summary = TranscipherBench {
        fv_upload_bytes: fv_upload,
        transcipher_upload_bytes: tc_upload,
        logits_match,
        cost_reconciles,
        ingress_model_ns,
    };
    println!(
        "\nupload reduction: {} bytes -> {} bytes ({}x; acceptance floor: 50x)",
        summary.fv_upload_bytes,
        summary.transcipher_upload_bytes,
        summary.reduction()
    );
    println!(
        "ecall_Transcipher modeled cost: {} ns; obs reconciliation: {}",
        summary.ingress_model_ns,
        if summary.cost_reconciles {
            "ns-for-ns"
        } else {
            "FAILED"
        }
    );

    // Full artifact: wall times included (informative, not replay-stable).
    let mut json = String::from("{\"experiment\":\"transcipher\",\"runs\":[");
    for (i, (pool, label, upload, wall)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"pool\":{pool},\"ingress\":\"{label}\",\"upload_bytes\":{upload},\
             \"wall_ns\":{wall}}}"
        );
    }
    let _ = write!(
        json,
        "],\"reduction\":{},\"logits_match\":{},\"cost_reconciles\":{}}}",
        summary.reduction(),
        summary.logits_match,
        summary.cost_reconciles
    );
    if let Some(path) = crate::write_bench_file("BENCH_transcipher.json", &json) {
        println!("bench table written to {}", path.display());
    }

    // Deterministic artifact: pure function of the seeds — CI runs the
    // experiment twice and byte-diffs this file.
    let det = format!(
        "{{\"experiment\":\"transcipher\",\"batch\":{},\"pixels\":{},\
         \"fv_upload_bytes\":{},\"transcipher_upload_bytes\":{},\
         \"reduction\":{},\"logits_match\":{},\"cost_reconciles\":{},\
         \"ingress_model_ns\":{}}}",
        images.len(),
        pixels,
        summary.fv_upload_bytes,
        summary.transcipher_upload_bytes,
        summary.reduction(),
        summary.logits_match,
        summary.cost_reconciles,
        summary.ingress_model_ns
    );
    if let Some(path) = crate::write_bench_file("BENCH_transcipher.deterministic.json", &det) {
        println!("deterministic table written to {}", path.display());
    }

    summary
}
