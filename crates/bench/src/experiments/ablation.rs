//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **ECALL batching** — whole-map vs per-pixel enclave crossings (the
//!   design choice behind `EncryptSGX` vs `EncryptSGX (single)`).
//! * **Polynomial degree** — how n scales the per-operation costs (the paper
//!   fixed n = 1024; this sweep shows what that choice buys).
//! * **Quantization scales** — fixed-point precision vs agreement with the
//!   float model (the knob that trades plaintext-modulus head-room for
//!   fidelity).
//! * **CRT modulus count** — single large vs multiple small plaintext moduli
//!   for a linear pipeline (the `for_range` fast path).

use super::{header, RunConfig};
use crate::experiments::figures::scale_stub;
use crate::PaperEnv;
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::crt::CrtPlainSystem;
use hesgx_henn::image::EncryptedMap;
use hesgx_nn::dataset;
use hesgx_nn::layers::{ActivationKind, PoolKind};
use hesgx_nn::model_zoo::paper_cnn;
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use std::time::Instant;

/// Ablation 1: ECALL batching granularity on a single feature map.
pub fn ablate_ecall_batching(env: &mut PaperEnv) {
    header("ABLATION: ECALL batching granularity (16x16 feature map)");
    let model = scale_stub(2);
    let ie = env.inference_enclave(false);
    let mut rng = env.rng.fork("ablate-batching");
    let images = vec![(0..256).map(|p| (p as i64 % 41) - 20).collect::<Vec<i64>>()];
    let input =
        EncryptedMap::encrypt_images(&env.sys, &images, 16, &env.keys.public, &mut rng).unwrap();
    let (_, batched) = ie
        .activation_map(&env.sys, &input, &model, ActivationKind::Sigmoid)
        .unwrap();
    let (_, single) = ie
        .activation_map_single_ecalls(&env.sys, &input, &model, ActivationKind::Sigmoid)
        .unwrap();
    println!("granularity   virtual (ms)  transitions (ms)");
    println!(
        "one ECALL     {:12.3}  {:16.3}",
        batched.total_ns() as f64 / 1e6,
        batched.transition_ns as f64 / 1e6
    );
    println!(
        "per pixel     {:12.3}  {:16.3}",
        single.total_ns() as f64 / 1e6,
        single.transition_ns as f64 / 1e6
    );
    println!(
        "per-pixel transition overhead: {:.0}x",
        single.transition_ns as f64 / batched.transition_ns.max(1) as f64
    );
}

/// Ablation 2: polynomial degree vs per-operation cost.
pub fn ablate_poly_degree(cfg: RunConfig) {
    header("ABLATION: polynomial degree n (per-op costs, single 65537 modulus)");
    let reps = cfg.reps(50);
    println!("n       slots   encrypt(ms)  decrypt(ms)  C×P mul(us)");
    for n in [256usize, 512, 1024, 2048] {
        // 65537 ≡ 1 mod 2n for n up to 32768 (65536 = 2^16).
        let sys = CrtPlainSystem::new(n, &[65537]).unwrap();
        let mut rng = ChaChaRng::from_seed(n as u64);
        let keys = sys.generate_keys(&mut rng);
        let values = vec![5i64; 10];
        let ct = sys.encrypt_slots(&values, &keys.public, &mut rng).unwrap();
        let start = Instant::now();
        for _ in 0..reps {
            let _ = sys.encrypt_slots(&values, &keys.public, &mut rng).unwrap();
        }
        let enc_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = sys.decrypt_slots(&ct, &keys.secret).unwrap();
        }
        let dec_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = sys.mul_scalar(&ct, 13).unwrap();
        }
        let mul_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!("{n:6}  {n:6}  {enc_ms:11.3}  {dec_ms:11.3}  {mul_us:11.2}");
    }
    println!("(the paper fixed n = 1024; costs scale ~n·log n, slots scale ~n)");
}

/// Ablation 3: quantization scales vs agreement with the float model.
pub fn ablate_quantization(cfg: RunConfig) {
    header("ABLATION: quantization scales vs float-model agreement");
    let samples = dataset::generate(if cfg.quick { 40 } else { 120 }, 17);
    let mut rng = ChaChaRng::from_seed(99);
    let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
    println!("weight_scale  fc_scale  act_scale  agreement  required plain bits");
    for (ws, fs, act) in [
        (4, 8, 4),
        (8, 16, 8),
        (16, 32, 16),
        (64, 64, 64),
        (256, 256, 256),
    ] {
        let q = QuantizedCnn::from_network(&net, QuantPipeline::Hybrid, ws, fs, act);
        let agree = samples
            .iter()
            .filter(|s| q.predict_image(&s.image) == net.predict(&dataset::normalize(&s.image)))
            .count();
        let report = q.range_report();
        println!(
            "{ws:12}  {fs:8}  {act:9}  {:6.1}%    {:8}",
            100.0 * agree as f64 / samples.len() as f64,
            report.required_plain_bits
        );
    }
    println!("(coarser scales shrink the plaintext modulus but drift from the float model)");
}

/// Ablation 4: one large plaintext modulus vs several small ones for the
/// hybrid (linear) pipeline.
pub fn ablate_crt_parts(cfg: RunConfig) {
    header("ABLATION: plaintext-CRT composition for a 24-bit linear pipeline");
    let reps = cfg.reps(50);
    let single = hesgx_bfv::arith::smallest_prime_congruent_one_above(1 << 24, 2048);
    let configs: [(&str, Vec<u64>); 3] = [
        ("1 x 25-bit prime", vec![single]),
        ("2 x 16-bit primes", vec![40961, 65537]),
        ("3 x 16-bit primes", vec![40961, 61441, 65537]),
    ];
    println!("composition          product bits  conv C×P (us)  refresh dec+enc (ms)");
    for (label, moduli) in configs {
        let sys = CrtPlainSystem::new(1024, &moduli).unwrap();
        let mut rng = ChaChaRng::from_seed(7);
        let keys = sys.generate_keys(&mut rng);
        let ct = sys.encrypt_slots(&[9; 10], &keys.public, &mut rng).unwrap();
        let start = Instant::now();
        for _ in 0..reps {
            let _ = sys.mul_scalar(&ct, 13).unwrap();
        }
        let mul_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let start = Instant::now();
        for _ in 0..reps {
            let slots = sys.decrypt_slots(&ct, &keys.secret).unwrap();
            let back: Vec<i64> = slots.iter().map(|&v| v as i64).collect();
            let _ = sys.encrypt_slots(&back, &keys.public, &mut rng).unwrap();
        }
        let refresh_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
        println!(
            "{label:20} {:12.1}  {mul_us:13.2}  {refresh_ms:19.3}",
            (sys.modulus_product() as f64).log2()
        );
    }
    println!("(every operation scales with the part count — why for_range prefers one modulus for linear pipelines)");
}

/// Runs all ablations.
pub fn run_all(env: &mut PaperEnv, cfg: RunConfig) {
    ablate_ecall_batching(env);
    ablate_poly_degree(cfg);
    ablate_quantization(cfg);
    ablate_crt_parts(cfg);
}
