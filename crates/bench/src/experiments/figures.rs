//! Figures 3–6: weight encoding, homomorphic convolution vs kernel size,
//! sigmoid with/without SGX, pooling with/without SGX.

use super::{header, RunConfig};
use crate::stats::linear_fit;
use crate::PaperEnv;
use hesgx_bfv::prelude::PolyArena;
use hesgx_henn::image::EncryptedMap;
use hesgx_henn::ops::{self, OpCounter};
use hesgx_henn::weights::{conv_weight_count, encode_weights};
use hesgx_nn::layers::ActivationKind;
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use std::time::Instant;

/// A model stub supplying the quantization scales the enclave operators need
/// (the figure sweeps exercise single operators, not a trained model).
pub fn scale_stub(window: usize) -> QuantizedCnn {
    QuantizedCnn {
        pipeline: QuantPipeline::Hybrid,
        in_side: 28,
        conv_out: 1,
        kernel: 5,
        window,
        classes: 10,
        conv_weights: vec![1; 25],
        conv_bias: vec![0],
        fc_weights: vec![1; 10 * 144],
        fc_bias: vec![0; 10],
        weight_scale: 16,
        fc_scale: 32,
        act_scale: 16,
    }
}

/// One Fig. 3 measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Point {
    /// Number of weights encoded.
    pub weights: usize,
    /// Encoding time in ms.
    pub ms: f64,
}

/// Fig. 3 result: the two fixed-kernel sweeps and the joint sweep, plus the
/// linearity of each (R² of a least-squares line).
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Fixed 11 kernels, kernel size sweep.
    pub kernels_11: Vec<Fig3Point>,
    /// Fixed 26 kernels, kernel size sweep.
    pub kernels_26: Vec<Fig3Point>,
    /// Joint sweep (kernel count and size grow together).
    pub joint: Vec<Fig3Point>,
    /// R² values for the three sweeps.
    pub r2: (f64, f64, f64),
}

/// Fig. 3 — "The time of weights coding against its number".
pub fn fig3_weight_encoding(env: &mut PaperEnv, cfg: RunConfig) -> Fig3 {
    header("FIG 3: weight-encoding time vs number of weights");
    let reps = cfg.reps(40);
    let run_sweep = |label: &str, configs: &[(usize, usize)]| -> Vec<Fig3Point> {
        let mut points = Vec::new();
        for &(kernels, side) in configs {
            let count = conv_weight_count(kernels, side);
            let weights: Vec<i64> = (0..count).map(|i| (i as i64 % 63) - 31).collect();
            let _ = encode_weights(&env.sys, &weights).unwrap();
            // Median over repetitions — robust against host scheduling spikes.
            let mut samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let start = Instant::now();
                let _ = encode_weights(&env.sys, &weights).unwrap();
                samples.push(start.elapsed().as_secs_f64() * 1e3);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let ms = samples[samples.len() / 2];
            points.push(Fig3Point { weights: count, ms });
        }
        println!("{label}:");
        for p in &points {
            println!("  {:6} weights -> {:8.3} ms", p.weights, p.ms);
        }
        points
    };

    let sizes: &[usize] = if cfg.quick {
        &[2, 4, 6, 8]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let cfg11: Vec<(usize, usize)> = sizes.iter().map(|&s| (11, s)).collect();
    let cfg26: Vec<(usize, usize)> = sizes.iter().map(|&s| (26, s)).collect();
    let joint: Vec<(usize, usize)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| (5 + 10 * i, s * 2))
        .collect();

    let kernels_11 = run_sweep("(a) 11 kernels, kernel size sweep", &cfg11);
    let kernels_26 = run_sweep("(a) 26 kernels, kernel size sweep", &cfg26);
    let joint = run_sweep("(b) joint kernel count + size sweep", &joint);

    let fit = |pts: &[Fig3Point]| {
        linear_fit(
            &pts.iter()
                .map(|p| (p.weights as f64, p.ms))
                .collect::<Vec<_>>(),
        )
        .2
    };
    let r2 = (fit(&kernels_11), fit(&kernels_26), fit(&joint));
    println!(
        "linearity: R² = {:.4} / {:.4} / {:.4}  (paper: encoding time linear in weight count)",
        r2.0, r2.1, r2.2
    );
    Fig3 {
        kernels_11,
        kernels_26,
        joint,
        r2,
    }
}

/// One Fig. 4 measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// Kernel side length.
    pub kernel: usize,
    /// `C×P` (= `C+C`+outputs) operation count.
    pub ops: u64,
    /// Convolution time in ms.
    pub ms: f64,
}

/// Fig. 4 — homomorphic convolution time and operation count vs kernel size
/// on a 28×28 feature map.
pub fn fig4_conv_kernel(env: &mut PaperEnv, cfg: RunConfig) -> Vec<Fig4Point> {
    header("FIG 4: homomorphic convolution time vs kernel size (28x28 map, stride 1)");
    let kernels: Vec<usize> = if cfg.quick {
        vec![1, 2, 4, 8, 14, 15, 20, 24, 28]
    } else {
        (1..=28).collect()
    };
    let mut rng = env.rng.fork("fig4");
    let images = vec![(0..784).map(|p| (p % 16) as i64).collect::<Vec<i64>>()];
    let input =
        EncryptedMap::encrypt_images(&env.sys, &images, 28, &env.keys.public, &mut rng).unwrap();
    let mut points = Vec::new();
    println!("kernel   C×P / C+C ops    time (ms)");
    for &k in &kernels {
        let weights: Vec<i64> = (0..k * k).map(|i| (i as i64 % 5) - 2).collect();
        let mut counter = OpCounter::default();
        let start = Instant::now();
        let _ = ops::he_conv2d(&env.sys, &input, &weights, &[0], 1, k, 1, &mut counter).unwrap();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let theoretical = OpCounter::conv_theoretical(28, k);
        assert_eq!(counter.ct_pt_mul, theoretical, "op count mismatch");
        println!("{k:6}   {theoretical:13}    {ms:9.3}");
        points.push(Fig4Point {
            kernel: k,
            ops: theoretical,
            ms,
        });
    }
    // Shape checks from the paper.
    let p1 = points.iter().find(|p| p.kernel == 1).unwrap();
    let p28 = points.iter().find(|p| p.kernel == 28);
    if let Some(p28) = p28 {
        println!(
            "k=1 vs k=28 (same op count {}): {:.3} ms vs {:.3} ms — small kernel pays {:.2}x loop overhead (paper: 16.66x of the k=28 time)",
            p1.ops, p1.ms, p28.ms, p1.ms / p28.ms
        );
    }
    points
}

/// One Fig. 5 measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Feature-map side length (calculations = side²).
    pub side: usize,
    /// Square+relinearize under HE (`EncryptSigmoid`), ms.
    pub encrypt_ms: f64,
    /// Exact sigmoid inside SGX (virtual time), ms.
    pub sgx_ms: f64,
    /// Same code outside (`FakeSGXSigmoid`), ms.
    pub fake_ms: f64,
}

/// Fig. 5 — "Sigmoid computing time with/without SGX".
pub fn fig5_sigmoid(env: &mut PaperEnv, cfg: RunConfig) -> Vec<Fig5Point> {
    header("FIG 5: sigmoid computing time with/without SGX");
    let sides: Vec<usize> = if cfg.quick {
        vec![8, 16, 24]
    } else {
        vec![4, 8, 12, 16, 20, 24]
    };
    let model = scale_stub(2);
    let real = env.inference_enclave(false);
    let fake = env.inference_enclave(true);
    let mut rng = env.rng.fork("fig5");
    let mut points = Vec::new();
    println!("map side   cells   EncryptSigmoid(ms)   SGXSigmoid(ms)   FakeSGXSigmoid(ms)");
    for &side in &sides {
        let images = vec![(0..side * side)
            .map(|p| (p as i64 % 41) - 20)
            .collect::<Vec<i64>>()];
        let input =
            EncryptedMap::encrypt_images(&env.sys, &images, side, &env.keys.public, &mut rng)
                .unwrap();

        // EncryptSigmoid: the HE pipeline's square + relinearization.
        let start = Instant::now();
        let mut counter = OpCounter::default();
        let _ = ops::he_square_activation(&env.sys, &input, &env.keys.evaluation, &mut counter)
            .unwrap();
        let encrypt_ms = start.elapsed().as_secs_f64() * 1e3;

        // SGXSigmoid: exact sigmoid, batched ECALL, virtual time.
        let (_, cost) = real
            .activation_map(&env.sys, &input, &model, ActivationKind::Sigmoid)
            .unwrap();
        let sgx_ms = cost.total_ns() as f64 / 1e6;

        // FakeSGXSigmoid: same code, zero-overhead model.
        let (_, cost) = fake
            .activation_map(&env.sys, &input, &model, ActivationKind::Sigmoid)
            .unwrap();
        let fake_ms = cost.total_ns() as f64 / 1e6;

        println!(
            "{side:8}   {:5}   {encrypt_ms:18.3}   {sgx_ms:14.3}   {fake_ms:18.3}",
            side * side
        );
        points.push(Fig5Point {
            side,
            encrypt_ms,
            sgx_ms,
            fake_ms,
        });
    }
    let ordered = points
        .iter()
        .all(|p| p.encrypt_ms > p.sgx_ms && p.sgx_ms > p.fake_ms);
    println!(
        "shape check — EncryptSigmoid > SGXSigmoid > FakeSGXSigmoid at every size: {ordered} (paper: same ordering)"
    );
    points
}

/// One Fig. 6 measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// Pooling window side.
    pub window: usize,
    /// HE window-sum time (`EncryptedSum`), ms.
    pub encrypted_sum_ms: f64,
    /// In-enclave division on the reduced map (`SGXDivide`), virtual ms.
    pub sgx_divide_ms: f64,
    /// Same division outside (`FakeSGXDivide`), ms.
    pub fake_divide_ms: f64,
    /// Whole map pooled inside (`SGXPool`), virtual ms.
    pub sgx_pool_ms: f64,
    /// Same pooling outside (`FakeSGXPool`), ms.
    pub fake_pool_ms: f64,
}

impl Fig6Point {
    /// Total `SGXDiv` strategy time (sum outside + divide inside).
    pub fn sgx_div_total(&self) -> f64 {
        self.encrypted_sum_ms + self.sgx_divide_ms
    }
}

/// Fig. 6 — "Pool computing time with/without SGX" on a 24×24 feature map.
pub fn fig6_pooling(env: &mut PaperEnv, _cfg: RunConfig) -> Vec<Fig6Point> {
    header("FIG 6: pooling time with/without SGX (24x24 input feature map)");
    let windows = [2usize, 3, 4, 6, 8, 12];
    let real = env.inference_enclave(false);
    let fake = env.inference_enclave(true);
    let arena = PolyArena::new();
    let mut rng = env.rng.fork("fig6");
    let images = vec![(0..576).map(|p| (p % 17) as i64).collect::<Vec<i64>>()];
    let input =
        EncryptedMap::encrypt_images(&env.sys, &images, 24, &env.keys.public, &mut rng).unwrap();
    let mut points = Vec::new();
    println!("window   EncSum(ms)  SGXDivide  FakeSGXDivide  SGXDiv(total)  SGXPool  FakeSGXPool");
    for &w in &windows {
        let model = scale_stub(w);

        let start = Instant::now();
        let mut counter = OpCounter::default();
        let summed = ops::he_scaled_mean_pool(&env.sys, &input, w, &mut counter, &arena).unwrap();
        let encrypted_sum_ms = start.elapsed().as_secs_f64() * 1e3;

        let (_, cost) = real.divide_map(&env.sys, &summed, &model).unwrap();
        let sgx_divide_ms = cost.total_ns() as f64 / 1e6;
        let (_, cost) = fake.divide_map(&env.sys, &summed, &model).unwrap();
        let fake_divide_ms = cost.total_ns() as f64 / 1e6;

        let (_, cost) = real.pool_full_map(&env.sys, &input, &model, false).unwrap();
        let sgx_pool_ms = cost.total_ns() as f64 / 1e6;
        let (_, cost) = fake.pool_full_map(&env.sys, &input, &model, false).unwrap();
        let fake_pool_ms = cost.total_ns() as f64 / 1e6;

        let p = Fig6Point {
            window: w,
            encrypted_sum_ms,
            sgx_divide_ms,
            fake_divide_ms,
            sgx_pool_ms,
            fake_pool_ms,
        };
        println!(
            "{:6}   {:9.3}  {:9.3}  {:13.3}  {:13.3}  {:7.3}  {:11.3}",
            w,
            p.encrypted_sum_ms,
            p.sgx_divide_ms,
            p.fake_divide_ms,
            p.sgx_div_total(),
            p.sgx_pool_ms,
            p.fake_pool_ms
        );
        points.push(p);
    }
    // Shape checks.
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    println!(
        "SGXDiv advantage grows with window: gap(w=2) = {:.3} ms, gap(w=12) = {:.3} ms (paper: SGXDiv wins for window ≥ 3)",
        first.sgx_pool_ms - first.sgx_div_total(),
        last.sgx_pool_ms - last.sgx_div_total()
    );
    println!(
        "SGXDivide -> FakeSGXDivide gap shrinks with window: {:.3} ms (w=2) vs {:.3} ms (w=12)",
        first.sgx_divide_ms - first.fake_divide_ms,
        last.sgx_divide_ms - last.fake_divide_ms
    );
    points
}
