//! `profile` — wall-clock profiling with modeled-vs-measured drift gating
//! (DESIGN.md §18; the observability counterpart to the virtual clock).
//!
//! One inference batch is served per HE pool size (1/2/4) on a session with
//! both the deterministic recorder *and* the wall-clock profiler installed.
//! Four claims are asserted and written to the artifacts:
//!
//! 1. **Deterministic face stability** — `Profiler::deterministic_json()`
//!    (tree shape, call counts, attributed bytes; no nanoseconds) is
//!    byte-identical across all three pool sizes. CI additionally runs the
//!    experiment twice and byte-diffs the file across runs.
//! 2. **Logit bit-identity** — the profiled serves produce logits
//!    byte-identical to an unprofiled serve from the same seed: installing
//!    the profiler observes the pipeline without perturbing it.
//! 3. **Drift budget** — joining the profiler's measured wall nanoseconds
//!    against the recorder's modeled `SpanCost` per stage yields a
//!    top-level measured/modeled ratio inside a generous checked-in band,
//!    so the cost model cannot silently rot away from reality.
//! 4. **Stack attribution** — the hotspot table names the top call paths
//!    with full `;`-joined stacks (the flamegraph export carries the same
//!    tree in collapsed-stack form).
//!
//! Artifacts: `target/bench/BENCH_profile.json` (wall times and the drift
//! join — informative, not replay-stable),
//! `target/bench/BENCH_profile.deterministic.json` (the replay-stable face;
//! CI runs the experiment twice and diffs it), plus
//! `target/bench/profile.collapsed.txt` (flamegraph input) and
//! `target/bench/profile_hotspots.txt` (the rendered table).

use super::{header, RunConfig};
use hesgx_core::request::InferRequest;
use hesgx_core::session::{ParamsPreset, Session, SessionBuilder};
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_obs::{Profiler, Recorder};
use hesgx_tee::enclave::Platform;
use hesgx_tee::wall::WallTimer;
use std::fmt::Write as _;

/// Session seed: profiled and unprofiled serves provision from the same
/// seed so every RNG stream lines up and logits compare bit-for-bit.
const SEED: u64 = 1897;

/// HE worker-pool sizes the deterministic-face identity is checked at.
const POOLS: [usize; 3] = [1, 2, 4];

/// Checked-in drift budget band, in permille of measured/modeled wall time
/// (1000 = the model predicts wall time exactly). Deliberately generous:
/// the modeled figures are calibrated to the paper's SEAL-on-SGX hardware,
/// not to this container, so only order-of-magnitude rot should trip it —
/// a stage silently becoming 100x slower than modeled, or the model
/// charging time for work that no longer happens.
const DRIFT_BAND_PERMILLE: (u64, u64) = (1, 20_000);

/// The experiment summary the integration tests assert on.
#[derive(Debug, Clone)]
pub struct ProfileBench {
    /// Top hotspot call paths (hottest self-time first, full stacks).
    pub top_paths: Vec<String>,
    /// `deterministic_json()` byte-identical across HE pools 1/2/4.
    pub pool_identical: bool,
    /// Profiled logits byte-identical to the unprofiled serve.
    pub logits_match: bool,
    /// Stages joined by the drift report (recorder ∩ profiler, by name).
    pub stages_joined: usize,
    /// Headline measured/modeled ratio in permille.
    pub drift_top_ratio_permille: u64,
    /// The headline ratio landed inside [`DRIFT_BAND_PERMILLE`].
    pub drift_within_band: bool,
}

/// The served model: the paper CNN's dimensions in full mode, a scaled-down
/// stand-in in quick mode. Deterministic formula weights — the profiled /
/// unprofiled comparison needs identical models, not trained ones.
fn model(quick: bool) -> QuantizedCnn {
    let (in_side, conv_out, kernel, window, classes) = if quick {
        (12, 2, 3, 2, 3)
    } else {
        (28, 5, 5, 2, 10)
    };
    let out_side = in_side - kernel + 1;
    let flat = conv_out * (out_side / window) * (out_side / window);
    QuantizedCnn {
        pipeline: QuantPipeline::Hybrid,
        in_side,
        conv_out,
        kernel,
        window,
        classes,
        conv_weights: (0..conv_out * kernel * kernel)
            .map(|i| (i % 7) as i64 - 3)
            .collect(),
        conv_bias: (0..conv_out).map(|i| (i as i64 % 5) - 2).collect(),
        fc_weights: (0..classes * flat).map(|i| (i % 5) as i64 - 2).collect(),
        fc_bias: (0..classes).map(|i| (i as i64 % 9) - 4).collect(),
        weight_scale: 8,
        fc_scale: 8,
        act_scale: 16,
    }
}

fn build_session(
    preset: ParamsPreset,
    threads: usize,
    model: &QuantizedCnn,
    profiler: Profiler,
) -> (Session, Recorder) {
    let rec = Recorder::enabled();
    let session = SessionBuilder::new()
        .params(preset)
        .threads(threads)
        .seed(SEED)
        .recorder(rec.clone())
        .profiler(profiler)
        .build(Platform::new(1897), model.clone())
        .expect("profile bench session provisions");
    (session, rec)
}

/// One profiled serve on a fresh session (fresh session per serve keeps
/// every RNG stream at its origin, so logits compare bit-for-bit across
/// pool sizes and against the unprofiled run).
fn serve_once(
    preset: ParamsPreset,
    threads: usize,
    model: &QuantizedCnn,
    images: &[Vec<i64>],
    profiler: Profiler,
) -> (Vec<Vec<i64>>, Recorder, u64) {
    let (session, rec) = build_session(preset, threads, model, profiler);
    let timer = WallTimer::start();
    let response = session
        .serve(InferRequest::batch(images.to_vec()))
        .expect("profile bench serve succeeds");
    (response.logits, rec, timer.elapsed_ns())
}

/// Runs the profiling experiment and writes all four artifacts.
pub fn profile(cfg: RunConfig) -> ProfileBench {
    header("PROFILE: wall-clock hotspots, flamegraph export, drift gating (DESIGN.md §18)");
    let (preset, degree) = if cfg.quick {
        (ParamsPreset::Small, 256)
    } else {
        (ParamsPreset::Paper, crate::PAPER_POLY_DEGREE)
    };
    let m = model(cfg.quick);
    let pixels = m.in_side * m.in_side;
    let images: Vec<Vec<i64>> = (0..crate::PAPER_BATCH_SIZE)
        .map(|b| {
            (0..pixels)
                .map(|p| ((p * 5 + b * 11) % 16) as i64)
                .collect()
        })
        .collect();
    println!(
        "batch of {} {}x{} images at poly degree {degree}; fresh session per \
         serve, seed {SEED}",
        images.len(),
        m.in_side,
        m.in_side,
    );

    // Profiled serves, one per pool size. The deterministic face must not
    // depend on the pool (worker roots merge), the logits must not depend
    // on the profiler at all.
    println!(
        "\n{:>5} {:>16} {:>14} {:>10}",
        "pool", "wall (ns)", "det bytes", "logits"
    );
    let mut reference: Option<Vec<Vec<i64>>> = None;
    let mut det_faces: Vec<String> = Vec::new();
    let mut rows: Vec<(usize, u64)> = Vec::new();
    let mut last: Option<(Profiler, Recorder)> = None;
    let mut logits_match = true;
    for &threads in &POOLS {
        let prof = Profiler::enabled();
        let (logits, rec, wall_ns) = serve_once(preset, threads, &m, &images, prof.clone());
        let matches = match &reference {
            None => {
                reference = Some(logits.clone());
                true
            }
            Some(reference) => reference == &logits,
        };
        logits_match &= matches;
        let det = prof.deterministic_json();
        println!(
            "{:>5} {:>16} {:>14} {:>10}",
            threads,
            wall_ns,
            det.len(),
            if matches { "identical" } else { "DIVERGED" }
        );
        rows.push((threads, wall_ns));
        det_faces.push(det);
        last = Some((prof, rec));
    }
    let pool_identical = det_faces.windows(2).all(|w| w[0] == w[1]);

    // Unprofiled control: same seed, disabled profiler — the profiled
    // pipeline must be observationally identical.
    let (plain_logits, _, _) = serve_once(preset, 2, &m, &images, Profiler::disabled());
    logits_match &= reference.as_ref() == Some(&plain_logits);

    let (prof, rec) = last.expect("POOLS is non-empty");
    let hotspots = prof.hotspots();
    let top_paths: Vec<String> = hotspots.iter().take(3).map(|h| h.path.clone()).collect();
    println!(
        "\nhotspots (pool {}, top 10 by self time):",
        POOLS[POOLS.len() - 1]
    );
    print!("{}", prof.hotspot_table(10));
    println!("top-3 stacks:");
    for (i, path) in top_paths.iter().enumerate() {
        println!("  {}. {path}", i + 1);
    }

    // Drift join: measured wall ns (profiler) vs modeled SpanCost ns
    // (recorder), per stage name, with a checked-in budget band on the
    // headline ratio.
    let drift = prof.drift_report(&rec);
    let ratio = drift.top_ratio_permille();
    let (lo, hi) = DRIFT_BAND_PERMILLE;
    let within = (lo..=hi).contains(&ratio);
    println!("\ndrift report (measured wall vs modeled virtual clock):");
    print!("{}", drift.render_table());
    println!(
        "drift budget: {ratio} permille within [{lo}, {hi}] -> {}",
        if within { "ok" } else { "EXCEEDED" }
    );

    let summary = ProfileBench {
        top_paths,
        pool_identical,
        logits_match,
        stages_joined: drift.entries.len(),
        drift_top_ratio_permille: ratio,
        drift_within_band: within,
    };
    println!(
        "deterministic face across pools {POOLS:?}: {}; logits vs unprofiled: {}",
        if summary.pool_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
        if summary.logits_match {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    // Full artifact: wall times and the drift join (informative, never
    // byte-diffed).
    let mut json = String::from("{\"experiment\":\"profile\",\"runs\":[");
    for (i, (pool, wall)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "{{\"pool\":{pool},\"wall_ns\":{wall}}}");
    }
    let _ = write!(
        json,
        "],\"drift_report\":{},\"drift_band_permille\":[{lo},{hi}],\
         \"drift_within_band\":{},\"wall\":{}}}",
        drift.to_json(),
        within,
        prof.wall_json()
    );
    if let Some(path) = crate::write_bench_file("BENCH_profile.json", &json) {
        println!("bench table written to {}", path.display());
    }

    // Deterministic artifact: tree shape, call counts, bytes, and the
    // identity flags — a pure function of the seeds. CI runs the experiment
    // twice and byte-diffs this file.
    let det = format!(
        "{{\"experiment\":\"profile\",\"batch\":{},\"pixels\":{},\
         \"pool_identical\":{},\"logits_match\":{},\"stages_joined\":{},\
         \"tree\":{}}}",
        images.len(),
        pixels,
        summary.pool_identical,
        summary.logits_match,
        summary.stages_joined,
        prof.deterministic_json()
    );
    if let Some(path) = crate::write_bench_file("BENCH_profile.deterministic.json", &det) {
        println!("deterministic table written to {}", path.display());
    }
    if let Some(path) = crate::write_bench_file("profile.collapsed.txt", &prof.export_collapsed()) {
        println!("collapsed-stack flamegraph written to {}", path.display());
    }
    if let Some(path) = crate::write_bench_file("profile_hotspots.txt", &prof.hotspot_table(25)) {
        println!("hotspot table written to {}", path.display());
    }

    // Hard gates (after the artifacts, so a failure leaves them on disk
    // for debugging): the acceptance contract of DESIGN.md §18.
    assert!(
        summary.pool_identical,
        "profiler deterministic face diverged across HE pools {POOLS:?}"
    );
    assert!(
        summary.logits_match,
        "profiled logits diverged from the unprofiled serve"
    );
    assert!(
        summary.top_paths.len() >= 3,
        "expected at least 3 hotspot stacks, got {:?}",
        summary.top_paths
    );
    assert!(
        summary.stages_joined > 0,
        "drift report joined no stages — profiler/recorder names diverged"
    );
    assert!(
        summary.drift_within_band,
        "drift budget exceeded: {ratio} permille outside [{lo}, {hi}]"
    );

    summary
}
