//! `ntt_bench` — wall-time microbenchmarks of the lazy-reduction NTT hot
//! path, plus the fig8-scale end-to-end payoff of the cached weight bank
//! (not in the paper; the speed pass behind every HE number in it).
//!
//! Three kernels per `(n, p)` tier, optimized versus the retained eager
//! reference: the Harvey/Shoup forward transform, the lazy inverse, and the
//! negacyclic multiply as the production hot path runs it — against a
//! cached evaluation-form operand ([`NttTable::prepare_cached_operand`],
//! the form provisioned weights take), one forward transform + Barrett
//! pointwise + lazy inverse, versus the seed's symmetric per-call eager
//! reference (forward ×2 + `u128 %` pointwise + eager inverse + scaling).
//! The symmetric lazy kernel (`negacyclic_multiply`, still two forward
//! transforms) is reported alongside for an apples-to-apples kernel ratio.
//! All wall times are median-of-k via the audited [`WallTimer`] shim; the
//! speedup headline is the reference/cached ratio at `n = 4096`.
//!
//! The end-to-end section provisions the hybrid pipeline twice — cached
//! weight banks on and off (`ProvisionConfig::cached_weights`) — on a
//! fig8-scale model and times `infer` over the paper's image batch. The two
//! variants must produce byte-identical logits; the wall-time gap is the
//! measured inference payoff of provision-time weight preparation.
//!
//! Artifacts: `target/bench/BENCH_ntt.json` (full tables including wall
//! times — informative, machine-readable, *not* replay-stable) and
//! `target/bench/BENCH_ntt.deterministic.json` (tier shapes, output
//! checksums, op counts, and identity flags only — byte-identical across
//! reruns, which CI checks by running the experiment twice and diffing).

use super::{header, RunConfig};
use hesgx_bfv::ntt::NttTable;
use hesgx_core::pipeline::{EcallBatching, HybridInference, ProvisionConfig};
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::image::EncryptedMap;
use hesgx_henn::ops::OpCounter;
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_tee::enclave::Platform;
use hesgx_tee::wall::WallTimer;
use std::fmt::Write as _;

/// Deterministic input generation seed (one domain per tier and operand).
const SEED: u64 = 4096;

/// The `(n, p)` tiers: every NTT-friendly prime the workspace's parameter
/// presets actually select, at the paper's degree and the acceptance
/// degree. Each prime satisfies `p ≡ 1 (mod 2n)`.
const TIERS: &[(usize, u64)] = &[
    (256, 12289),
    (1024, 12289),
    (1024, 65537),
    (4096, 40961),
    (4096, 65537),
];

/// Median wall times of one kernel, optimized and reference, nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct KernelTimes {
    /// Median of the lazy-reduction implementation.
    pub optimized_ns: u64,
    /// Median of the eager reference implementation.
    pub reference_ns: u64,
}

impl KernelTimes {
    /// Reference/optimized wall-time ratio (≥ 1.0 means the lazy path wins).
    pub fn speedup(&self) -> f64 {
        self.reference_ns as f64 / (self.optimized_ns.max(1)) as f64
    }
}

/// One `(n, p)` tier's results.
#[derive(Debug, Clone, Copy)]
pub struct TierResult {
    /// Transform length.
    pub n: usize,
    /// NTT-friendly prime modulus.
    pub p: u64,
    /// Forward transform medians.
    pub forward: KernelTimes,
    /// Inverse transform medians.
    pub inverse: KernelTimes,
    /// Negacyclic multiply medians: cached-operand hot path (optimized)
    /// versus the seed's symmetric eager per-call path (reference).
    pub negacyclic: KernelTimes,
    /// Median of the symmetric *lazy* multiply (two forward transforms) —
    /// the kernel-for-kernel comparison against the same reference.
    pub negacyclic_symmetric_ns: u64,
    /// Wrapping sum of the negacyclic product's coefficients — a
    /// deterministic witness that optimized and reference agreed exactly.
    pub product_checksum: u64,
}

/// The experiment summary the integration tests assert on.
#[derive(Debug, Clone)]
pub struct NttBench {
    /// Per-tier kernel tables.
    pub tiers: Vec<TierResult>,
    /// Lazy and eager paths agreed bit-for-bit on every tier.
    pub lazy_matches_reference: bool,
    /// Worst (smallest) negacyclic speedup across the `n = 4096` tiers —
    /// the acceptance headline.
    pub negacyclic_speedup_4096: f64,
    /// End-to-end inference medians, cached weight banks on/off.
    pub e2e: KernelTimes,
    /// Cached and uncached pipelines produced byte-identical logits.
    pub e2e_logits_match: bool,
    /// Per-request weight preparations of the uncached pipeline (cached is
    /// pinned to zero).
    pub e2e_uncached_weight_prep: u64,
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `k` runs of `f` and returns the median wall nanoseconds.
fn median_of<F: FnMut()>(k: usize, mut f: F) -> u64 {
    let mut samples = Vec::with_capacity(k);
    for _ in 0..k {
        let t = WallTimer::start();
        f();
        samples.push(t.elapsed_ns());
    }
    median(samples)
}

fn random_poly(rng: &mut ChaChaRng, n: usize, p: u64) -> Vec<u64> {
    (0..n).map(|_| rng.next_below(p)).collect()
}

fn bench_tier(n: usize, p: u64, reps: usize) -> TierResult {
    let table = NttTable::new(n, p);
    let domain = format!("tier-{n}-{p}");
    let mut rng = ChaChaRng::from_seed(SEED).fork(&domain);
    let a = random_poly(&mut rng, n, p);
    let b = random_poly(&mut rng, n, p);

    // Exactness first: the speedup claim is only meaningful because the
    // lazy path is bit-identical to the eager one on the same inputs.
    let mut fwd_opt = a.clone();
    let mut fwd_ref = a.clone();
    table.forward(&mut fwd_opt);
    table.forward_reference(&mut fwd_ref);
    let forward_exact = fwd_opt == fwd_ref;
    let mut inv_opt = fwd_opt.clone();
    let mut inv_ref = fwd_opt;
    table.inverse(&mut inv_opt);
    table.inverse_reference(&mut inv_ref);
    let cached_b = table.prepare_cached_operand(&b);
    let product_opt = table.negacyclic_multiply(&a, &b);
    let product_cached = table.negacyclic_multiply_cached(&a, &cached_b);
    let product_ref = table.negacyclic_multiply_reference(&a, &b);
    let exact = forward_exact
        && inv_opt == inv_ref
        && product_opt == product_ref
        && product_cached == product_ref;
    assert!(exact, "lazy NTT diverged from reference at n={n}, p={p}");
    let product_checksum = product_opt.iter().fold(0u64, |s, &c| s.wrapping_add(c));

    let forward = KernelTimes {
        optimized_ns: median_of(reps, || {
            let mut v = a.clone();
            table.forward(&mut v);
        }),
        reference_ns: median_of(reps, || {
            let mut v = a.clone();
            table.forward_reference(&mut v);
        }),
    };
    let inverse = KernelTimes {
        optimized_ns: median_of(reps, || {
            let mut v = a.clone();
            table.inverse(&mut v);
        }),
        reference_ns: median_of(reps, || {
            let mut v = a.clone();
            table.inverse_reference(&mut v);
        }),
    };
    // The cached operand is prepared outside the timed region: production
    // pays that forward transform once at weight provisioning, not per
    // request, so the hot path being timed is exactly what `infer` runs.
    let negacyclic = KernelTimes {
        optimized_ns: median_of(reps, || {
            std::hint::black_box(table.negacyclic_multiply_cached(&a, &cached_b));
        }),
        reference_ns: median_of(reps, || {
            std::hint::black_box(table.negacyclic_multiply_reference(&a, &b));
        }),
    };
    let negacyclic_symmetric_ns = median_of(reps, || {
        std::hint::black_box(table.negacyclic_multiply(&a, &b));
    });
    TierResult {
        n,
        p,
        forward,
        inverse,
        negacyclic,
        negacyclic_symmetric_ns,
        product_checksum,
    }
}

/// The end-to-end model: fig8 dimensions in full mode (the paper CNN's
/// 28×28 input, 5 feature maps, 5×5 kernel, 10 classes), a scaled-down
/// stand-in in quick mode. Weights follow deterministic formulas — the
/// A/B comparison needs identical models, not trained ones.
fn e2e_model(quick: bool) -> QuantizedCnn {
    let (in_side, conv_out, kernel, window, classes) = if quick {
        (12, 2, 3, 2, 3)
    } else {
        (28, 5, 5, 2, 10)
    };
    let out_side = in_side - kernel + 1;
    let flat = conv_out * (out_side / window) * (out_side / window);
    QuantizedCnn {
        pipeline: QuantPipeline::Hybrid,
        in_side,
        conv_out,
        kernel,
        window,
        classes,
        conv_weights: (0..conv_out * kernel * kernel)
            .map(|i| (i % 7) as i64 - 3)
            .collect(),
        conv_bias: (0..conv_out).map(|i| (i as i64 % 5) - 2).collect(),
        fc_weights: (0..classes * flat).map(|i| (i % 5) as i64 - 2).collect(),
        fc_bias: (0..classes).map(|i| (i as i64 % 9) - 4).collect(),
        weight_scale: 8,
        fc_scale: 8,
        act_scale: 16,
    }
}

struct E2eRun {
    median_ns: u64,
    logits: Vec<hesgx_henn::crt::CrtCiphertext>,
    ops: OpCounter,
}

fn run_e2e(model: &QuantizedCnn, poly_degree: usize, cached: bool, reps: usize) -> E2eRun {
    let (service, ceremony) = HybridInference::provision_with(
        Platform::new(4096),
        model.clone(),
        ProvisionConfig {
            poly_degree,
            seed: 17,
            cached_weights: cached,
            ..ProvisionConfig::default()
        },
    )
    .expect("ntt_bench e2e service provisions");
    let mut rng = ChaChaRng::from_seed(SEED).fork("e2e-images");
    let images: Vec<Vec<i64>> = (0..crate::PAPER_BATCH_SIZE)
        .map(|b| {
            (0..model.in_side * model.in_side)
                .map(|p| ((p * 3 + b * 7) % 16) as i64)
                .collect()
        })
        .collect();
    let enc = EncryptedMap::encrypt_images(
        service.system(),
        &images,
        model.in_side,
        &ceremony.public,
        &mut rng,
    )
    .expect("ntt_bench e2e batch encrypts");
    // Warm-up run: fills the arena free lists so the cached variant is
    // measured in its steady state, and yields the logits + op counts.
    let (logits, metrics) = service
        .infer(&enc, EcallBatching::Batched)
        .expect("ntt_bench e2e inference runs");
    let median_ns = median_of(reps, || {
        std::hint::black_box(service.infer(&enc, EcallBatching::Batched).unwrap());
    });
    E2eRun {
        median_ns,
        logits,
        ops: metrics.ops,
    }
}

/// Runs the NTT + end-to-end benchmark and writes both artifacts.
pub fn ntt_bench(cfg: RunConfig) -> NttBench {
    header("NTT BENCH: lazy-reduction hot path vs eager reference (not in the paper)");
    let reps = cfg.reps(30);
    let e2e_reps = if cfg.quick { 3 } else { 5 };
    println!("median of {reps} runs per kernel; exactness asserted per tier");
    println!(
        "mul opt = cached-operand hot path (weights provisioned in evaluation \
         form); mul sym = symmetric lazy kernel; mul ref = the seed's \
         symmetric eager per-call path\n"
    );
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>6} {:>12} {:>12} {:>6} {:>12} {:>12} {:>12} {:>6}",
        "n",
        "p",
        "fwd opt(ns)",
        "fwd ref(ns)",
        "x",
        "inv opt(ns)",
        "inv ref(ns)",
        "x",
        "mul opt(ns)",
        "mul sym(ns)",
        "mul ref(ns)",
        "x"
    );
    let tiers: Vec<TierResult> = TIERS
        .iter()
        .map(|&(n, p)| {
            let t = bench_tier(n, p, reps);
            println!(
                "{:>6} {:>8} {:>12} {:>12} {:>6.2} {:>12} {:>12} {:>6.2} {:>12} {:>12} {:>12} {:>6.2}",
                t.n,
                t.p,
                t.forward.optimized_ns,
                t.forward.reference_ns,
                t.forward.speedup(),
                t.inverse.optimized_ns,
                t.inverse.reference_ns,
                t.inverse.speedup(),
                t.negacyclic.optimized_ns,
                t.negacyclic_symmetric_ns,
                t.negacyclic.reference_ns,
                t.negacyclic.speedup()
            );
            t
        })
        .collect();
    let negacyclic_speedup_4096 = tiers
        .iter()
        .filter(|t| t.n == 4096)
        .map(|t| t.negacyclic.speedup())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nnegacyclic multiply speedup at n=4096, cached hot path vs per-call \
         reference (worst tier): {negacyclic_speedup_4096:.2}x (acceptance floor: 2.00x)"
    );

    let model = e2e_model(cfg.quick);
    let poly_degree = if cfg.quick {
        256
    } else {
        crate::PAPER_POLY_DEGREE
    };
    println!(
        "\nend-to-end: hybrid inference at fig8 scale (poly n={poly_degree}, \
         {}x{} input, batch {}), cached weight banks vs per-request preparation",
        model.in_side,
        model.in_side,
        crate::PAPER_BATCH_SIZE
    );
    let cached = run_e2e(&model, poly_degree, true, e2e_reps);
    let uncached = run_e2e(&model, poly_degree, false, e2e_reps);
    let e2e = KernelTimes {
        optimized_ns: cached.median_ns,
        reference_ns: uncached.median_ns,
    };
    let e2e_logits_match = cached.logits == uncached.logits;
    assert_eq!(
        cached.ops.weight_prep, 0,
        "cached pipeline must prepare no weights per request"
    );
    println!(
        "cached {} ns vs uncached {} ns — {:.2}x; logits byte-identical: {}; \
         uncached weight preps/request: {}",
        e2e.optimized_ns,
        e2e.reference_ns,
        e2e.speedup(),
        e2e_logits_match,
        uncached.ops.weight_prep
    );

    // Full artifact: wall times included (informative, not replay-stable).
    let mut json = String::from("{\"experiment\":\"ntt_bench\",");
    let _ = write!(json, "\"reps\":{reps},\"tiers\":[");
    for (i, t) in tiers.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"n\":{},\"p\":{},\"forward\":{{\"optimized_ns\":{},\"reference_ns\":{}}},\
             \"inverse\":{{\"optimized_ns\":{},\"reference_ns\":{}}},\
             \"negacyclic_multiply\":{{\"cached_ns\":{},\"symmetric_lazy_ns\":{},\
             \"reference_ns\":{}}},\
             \"product_checksum\":{}}}",
            t.n,
            t.p,
            t.forward.optimized_ns,
            t.forward.reference_ns,
            t.inverse.optimized_ns,
            t.inverse.reference_ns,
            t.negacyclic.optimized_ns,
            t.negacyclic_symmetric_ns,
            t.negacyclic.reference_ns,
            t.product_checksum
        );
    }
    let _ = write!(
        json,
        "],\"e2e\":{{\"poly_degree\":{poly_degree},\"batch\":{},\"cached_ns\":{},\
         \"uncached_ns\":{},\"logits_match\":{e2e_logits_match},\
         \"uncached_weight_prep\":{}}}}}",
        crate::PAPER_BATCH_SIZE,
        e2e.optimized_ns,
        e2e.reference_ns,
        uncached.ops.weight_prep
    );
    if let Some(path) = crate::write_bench_file("BENCH_ntt.json", &json) {
        println!("bench table written to {}", path.display());
    }

    // Deterministic artifact: everything here is a pure function of the
    // seeds — CI runs the experiment twice and byte-diffs this file.
    let mut det = String::from("{\"experiment\":\"ntt_bench\",\"tiers\":[");
    for (i, t) in tiers.iter().enumerate() {
        if i > 0 {
            det.push(',');
        }
        let _ = write!(
            det,
            "{{\"n\":{},\"p\":{},\"product_checksum\":{}}}",
            t.n, t.p, t.product_checksum
        );
    }
    let ops = &uncached.ops;
    let _ = write!(
        det,
        "],\"lazy_matches_reference\":true,\"e2e\":{{\"poly_degree\":{poly_degree},\
         \"batch\":{},\"logits_match\":{e2e_logits_match},\
         \"cached_weight_prep\":{},\"uncached_weight_prep\":{},\
         \"ct_pt_mul\":{},\"ct_pt_add\":{},\"ct_ct_add\":{}}}}}",
        crate::PAPER_BATCH_SIZE,
        cached.ops.weight_prep,
        ops.weight_prep,
        ops.ct_pt_mul,
        ops.ct_pt_add,
        ops.ct_ct_add
    );
    if let Some(path) = crate::write_bench_file("BENCH_ntt.deterministic.json", &det) {
        println!("deterministic table written to {}", path.display());
    }

    NttBench {
        tiers,
        lazy_matches_reference: true,
        negacyclic_speedup_4096,
        e2e,
        e2e_logits_match,
        e2e_uncached_weight_prep: uncached.ops.weight_prep,
    }
}
