//! `chaos_sweep` — resilience of the hybrid pipeline under injected faults
//! (not in the paper).
//!
//! Drives the `Session` API through a fixed set of transient-only fault
//! plans — every plan seed crossed with several per-site fault rates — and
//! reports what the recovery layer absorbed: injected faults, retries, and
//! the latency each point paid versus the fault-free baseline. The full
//! machine-readable [`FaultReport`] of every point is written to
//! `target/chaos-report.json` so CI can archive it as an artifact.
//!
//! Two claims are checked and printed honestly:
//!
//! 1. **Exactness under recovery** — every transient-only point must match
//!    the fault-free logits bit for bit (the chaos determinism contract).
//! 2. **Report stability** — each point's `FaultReport` is re-derived on a
//!    second run and must be byte-identical (same plan seed → same report).

use super::{header, RunConfig};
use hesgx_core::prelude::*;
use hesgx_crypto::rng::ChaChaRng;
use hesgx_nn::layers::PoolKind;
use hesgx_nn::model_zoo::paper_cnn;
use hesgx_obs::Recorder;
use std::path::Path;
use std::time::Instant;

/// The fixed plan seeds CI sweeps; chosen once, never derived from time.
pub const PLAN_SEEDS: [u64; 6] = [2, 11, 23, 42, 77, 101];
/// Per-site injection probabilities swept in quick mode (full mode keeps the
/// middle rate only — the paper-sized model makes each point expensive).
const RATES: [f64; 3] = [0.1, 0.25, 0.5];
/// Per-site injection cap (keeps every run inside the retry budget).
const CAP: u64 = 1;

/// One sweep point: a session run under one fault plan.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// The plan seed.
    pub seed: u64,
    /// Per-site injection probability of the plan.
    pub rate: f64,
    /// Faults injected across all sites.
    pub injected: u64,
    /// Retries the recovery layer spent.
    pub retries: u64,
    /// End-to-end inference wall milliseconds under this plan.
    pub wall_ms: f64,
    /// Whether logits matched the fault-free baseline bit for bit.
    pub exact: bool,
    /// Whether a re-run of the same plan reproduced the report byte for byte.
    pub report_stable: bool,
    /// The machine-readable fault report.
    pub report_json: String,
}

/// Sweep summary.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// One entry per (seed, rate) pair.
    pub points: Vec<ChaosPoint>,
    /// Fault-free inference wall milliseconds (the latency reference).
    pub baseline_ms: f64,
    /// Conjunction of every point's `exact`.
    pub all_exact: bool,
    /// Conjunction of every point's `report_stable`.
    pub all_stable: bool,
    /// Where the JSON report landed (unset when the write failed).
    pub report_path: Option<String>,
}

pub(crate) fn sweep_model(quick: bool) -> QuantizedCnn {
    if quick {
        // Reduced instance of the paper architecture: same layer types,
        // 8×8 input so a sweep point takes well under a second.
        QuantizedCnn {
            pipeline: QuantPipeline::Hybrid,
            in_side: 8,
            conv_out: 2,
            kernel: 3,
            window: 2,
            classes: 3,
            conv_weights: (0..2 * 9).map(|i| (i % 5) as i64 - 2).collect(),
            conv_bias: vec![1, -2],
            fc_weights: (0..3 * 2 * 9).map(|i| (i % 7) as i64 - 3).collect(),
            fc_bias: vec![4, -1, 2],
            weight_scale: 8,
            fc_scale: 8,
            act_scale: 16,
        }
    } else {
        let mut rng = ChaChaRng::from_seed(7);
        let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
        QuantizedCnn::from_network(&net, QuantPipeline::Hybrid, 16, 32, 16)
    }
}

fn build_session(model: &QuantizedCnn, plan: Option<FaultPlan>, obs: &Recorder) -> Session {
    let mut builder = SessionBuilder::new()
        .params(ParamsPreset::Small)
        .threads(2)
        .seed(7)
        .noise_refresh(true)
        .recorder(obs.clone());
    if let Some(plan) = plan {
        builder = builder.chaos(plan);
    }
    builder
        .build(Platform::new(700), model.clone())
        .expect("chaos sweep provisioning")
}

fn run_point(
    model: &QuantizedCnn,
    image: &[i64],
    seed: u64,
    rate: f64,
    obs: &Recorder,
) -> (Vec<i64>, FaultReport, f64) {
    let session = build_session(model, Some(FaultPlan::transient_only(seed, rate, CAP)), obs);
    let start = Instant::now();
    let logits = session
        .serve(InferRequest::single(image.to_vec()))
        .expect("transient-only run recovers")
        .logits
        .remove(0);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = session
        .fault_report()
        .expect("chaos session carries a report");
    (logits, report, wall_ms)
}

/// Runs the sweep, prints the table, and writes `target/chaos-report.json`.
pub fn chaos_sweep(cfg: RunConfig) -> ChaosSweep {
    header("CHAOS SWEEP: fault injection + recovery in the hybrid pipeline (not in the paper)");
    let model = sweep_model(cfg.quick);
    let rates: &[f64] = if cfg.quick { &RATES } else { &RATES[1..2] };
    println!(
        "input {}×{} | FV n = {} | rates {rates:?} | cap {CAP}/site | seeds {PLAN_SEEDS:?}",
        model.in_side,
        model.in_side,
        256 // ParamsPreset::Small
    );

    let image: Vec<i64> = (0..model.in_side * model.in_side)
        .map(|p| ((p * 3) % 16) as i64)
        .collect();
    let obs = Recorder::enabled();
    let baseline_session = build_session(&model, None, &obs);
    let start = Instant::now();
    let baseline = baseline_session
        .serve(InferRequest::single(image.clone()))
        .expect("fault-free baseline")
        .logits
        .remove(0);
    let baseline_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut points = Vec::with_capacity(PLAN_SEEDS.len() * rates.len());
    for &rate in rates {
        for &seed in &PLAN_SEEDS {
            let (logits, report, wall_ms) = run_point(&model, &image, seed, rate, &obs);
            let (_, repeat, _) = run_point(&model, &image, seed, rate, &obs);
            let report_json = report.to_json();
            points.push(ChaosPoint {
                seed,
                rate,
                injected: report.injected_total(),
                retries: report.retries(),
                wall_ms,
                exact: logits == baseline,
                report_stable: report_json == repeat.to_json(),
                report_json,
            });
        }
    }

    let all_exact = points.iter().all(|p| p.exact);
    let all_stable = points.iter().all(|p| p.report_stable);

    println!();
    println!("fault-free baseline latency: {baseline_ms:.1} ms");
    println!("rate   seed   injected   retries   latency (ms)   vs base   exact   stable");
    for p in &points {
        println!(
            "{:<4}   {:>4}   {:>8}   {:>7}   {:>12.1}   {:>6.2}x   {:>5}   {:>6}",
            p.rate,
            p.seed,
            p.injected,
            p.retries,
            p.wall_ms,
            p.wall_ms / baseline_ms.max(1e-9),
            p.exact,
            p.report_stable
        );
    }
    println!("all points bit-identical to the fault-free baseline: {all_exact}");
    println!("all fault reports byte-stable across re-runs: {all_stable}");

    // Machine-readable artifact for CI: each point's full FaultReport.
    let body = points
        .iter()
        .map(|p| {
            format!(
                "{{\"seed\":{},\"rate\":{},\"wall_ms\":{:.3},\"exact\":{},\"report_stable\":{},\"report\":{}}}",
                p.seed, p.rate, p.wall_ms, p.exact, p.report_stable, p.report_json
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"cap\":{CAP},\"baseline_ms\":{baseline_ms:.3},\"all_exact\":{all_exact},\"all_stable\":{all_stable},\"points\":[{body}]}}"
    );
    let path = Path::new("target").join("chaos-report.json");
    let report_path = match std::fs::create_dir_all("target")
        .and_then(|()| std::fs::write(&path, json.as_bytes()))
    {
        Ok(()) => {
            println!("fault reports written to {}", path.display());
            Some(path.display().to_string())
        }
        Err(e) => {
            println!("could not write {}: {e}", path.display());
            None
        }
    };

    if let Some(path) = crate::write_obs_snapshot("chaos_sweep", &obs) {
        println!("obs snapshot written to {}", path.display());
    }

    ChaosSweep {
        points,
        baseline_ms,
        all_exact,
        all_stable,
        report_path,
    }
}
