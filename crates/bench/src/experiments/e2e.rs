//! Table VI and Fig. 8 — the CAV edge-computing case study: the full 4-layer
//! CNN under the four schemes of Fig. 8.

use super::{header, RunConfig};
use crate::{PAPER_BATCH_SIZE, PAPER_POLY_DEGREE};
use hesgx_core::pipeline::{total_enclave_cost, EcallBatching, HybridInference, ProvisionConfig};
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::cryptonets::CryptoNets;
use hesgx_henn::image::EncryptedMap;
use hesgx_nn::dataset;
use hesgx_nn::layers::{ActivationKind, PoolKind};
use hesgx_nn::model_zoo::{architecture_table, paper_cnn};
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_nn::train::{train_paper_cnn, TrainConfig, TrainedModel};
use hesgx_obs::Recorder;
use hesgx_tee::cost::CostModel;
use hesgx_tee::enclave::Platform;
use std::time::Instant;

/// Prints Table VI (the CNN architecture of Fig. 7).
pub fn print_model_table() {
    header("TABLE VI / FIG 7: the case-study CNN architecture");
    let mut rng = ChaChaRng::from_seed(0);
    let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
    println!(
        "{:<16} {:<24} {:<8} {:<16} {:<16}",
        "Input", "Layer", "Stride", "Kernel", "Output"
    );
    for row in architecture_table(&net) {
        println!(
            "{:<16} {:<24} {:<8} {:<16} {:<16}",
            row.input, row.layer, row.stride, row.kernel, row.output
        );
    }
}

/// Fig. 8 result: per-image prediction time for each scheme, seconds.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Pure HE (CryptoNets baseline, `Encrypted`).
    pub encrypted_s: f64,
    /// Hybrid with per-pixel ECALLs (`EncryptSGX (single)`).
    pub encrypt_sgx_single_s: f64,
    /// Hybrid, batched ECALLs (`EncryptSGX` — the framework).
    pub encrypt_sgx_s: f64,
    /// Hybrid with the zero-overhead enclave (`EncryptFakeSGX`).
    pub encrypt_fake_sgx_s: f64,
    /// Whether every encrypted prediction matched the plaintext quantized
    /// reference exactly (the paper's "accuracy rates are consistent" claim).
    pub predictions_exact: bool,
    /// Hybrid (sigmoid) model float test accuracy.
    pub hybrid_float_accuracy: f64,
    /// CryptoNets (square) model float test accuracy.
    pub cryptonets_float_accuracy: f64,
    /// Relative saving of EncryptSGX over Encrypted.
    pub saving: f64,
}

/// Trains both model variants (scaled-down in quick mode).
pub fn train_models(cfg: RunConfig) -> (TrainedModel, TrainedModel) {
    let train_cfg = if cfg.quick {
        TrainConfig {
            train_samples: 600,
            test_samples: 100,
            epochs: 2,
            ..Default::default()
        }
    } else {
        TrainConfig::default()
    };
    let sigmoid_cfg = train_cfg.clone();
    let hybrid = train_paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &sigmoid_cfg);
    let square_cfg = TrainConfig {
        learning_rate: 0.01,
        ..train_cfg
    };
    let cryptonets = train_paper_cnn(ActivationKind::Square, PoolKind::ScaledMean, &square_cfg);
    (hybrid, cryptonets)
}

/// Fig. 8 — "Prediction time with/without SGX" over a batch of 10 encrypted
/// images, plus the accuracy-consistency check.
pub fn fig8_end_to_end(cfg: RunConfig) -> Fig8 {
    header("FIG 8: end-to-end prediction time with/without SGX (batch of 10 images)");
    println!("training the two model variants on the synthetic digit set...");
    let (hybrid_trained, cryptonets_trained) = train_models(cfg);
    println!(
        "float test accuracy: sigmoid/mean-pool {:.1}%, square/scaled-mean-pool {:.1}%",
        hybrid_trained.test_accuracy * 100.0,
        cryptonets_trained.test_accuracy * 100.0
    );

    let hybrid_model =
        QuantizedCnn::from_network(&hybrid_trained.network, QuantPipeline::Hybrid, 16, 32, 16);
    let cryptonets_model = QuantizedCnn::from_network(
        &cryptonets_trained.network,
        QuantPipeline::CryptoNets,
        8,
        8,
        16,
    );

    // Test batch.
    let batch: Vec<&dataset::Sample> = hybrid_trained
        .test_set
        .iter()
        .take(PAPER_BATCH_SIZE)
        .collect();
    let images: Vec<Vec<i64>> = batch
        .iter()
        .map(|s| dataset::quantize_pixels(&s.image))
        .collect();
    let mut rng = ChaChaRng::from_seed(2021).fork("fig8");

    // ---- Encrypted: the CryptoNets pure-HE baseline. ----
    println!("running Encrypted (pure HE, CryptoNets baseline)...");
    let engine = CryptoNets::new(cryptonets_model.clone(), PAPER_POLY_DEGREE).unwrap();
    let keys = engine.system().generate_keys(&mut rng);
    let enc = engine.encrypt_batch(&images, &keys, &mut rng).unwrap();
    let start = Instant::now();
    let (logits, _) = engine.infer(&enc, &keys).unwrap();
    let encrypted_s = start.elapsed().as_secs_f64();
    let baseline_preds = engine
        .decrypt_predictions(&logits, &keys, PAPER_BATCH_SIZE)
        .unwrap();
    let baseline_exact = images
        .iter()
        .zip(&baseline_preds)
        .all(|(img, &p)| p == cryptonets_model.predict_ints(img));

    // ---- EncryptSGX: the hybrid framework (batched ECALLs). ----
    println!("running EncryptSGX (hybrid framework)...");
    let obs = Recorder::enabled();
    let (service, ceremony) = HybridInference::provision_with(
        Platform::new(99),
        hybrid_model.clone(),
        ProvisionConfig {
            poly_degree: PAPER_POLY_DEGREE,
            seed: 13,
            recorder: obs.clone(),
            ..ProvisionConfig::default()
        },
    )
    .unwrap();
    let enc = EncryptedMap::encrypt_images(
        service.system(),
        &images,
        hybrid_model.in_side,
        &ceremony.public,
        &mut rng,
    )
    .unwrap();
    let start = Instant::now();
    let (logits, metrics) = service.infer(&enc, EcallBatching::Batched).unwrap();
    let wall = start.elapsed().as_secs_f64();
    let overhead = {
        let c = total_enclave_cost(&metrics);
        (c.total_ns().saturating_sub(c.real_ns)) as f64 / 1e9
    };
    let encrypt_sgx_s = wall + overhead;
    // Accuracy consistency: decrypt with the user's keys, compare to reference.
    let mut hybrid_exact = true;
    for (b, img) in images.iter().enumerate() {
        let expect = hybrid_model.forward_ints(img);
        for (class, ct) in logits.iter().enumerate() {
            let slots = service
                .system()
                .decrypt_slots(ct, &ceremony.user_secret)
                .unwrap();
            if slots[b] != expect[class] as i128 {
                hybrid_exact = false;
            }
        }
    }

    // ---- EncryptSGX (single): per-pixel ECALLs. ----
    println!("running EncryptSGX (single) (per-pixel ECALLs)...");
    let start = Instant::now();
    let (_, metrics_single) = service.infer(&enc, EcallBatching::PerPixel).unwrap();
    let wall_single = start.elapsed().as_secs_f64();
    let overhead_single = {
        let c = total_enclave_cost(&metrics_single);
        (c.total_ns().saturating_sub(c.real_ns)) as f64 / 1e9
    };
    let encrypt_sgx_single_s = wall_single + overhead_single;

    // ---- EncryptFakeSGX: the same pipeline, zero-overhead enclave. ----
    println!("running EncryptFakeSGX (control: same code outside the enclave)...");
    let (fake_service, fake_ceremony) = HybridInference::provision_with(
        Platform::new(100),
        hybrid_model.clone(),
        ProvisionConfig {
            poly_degree: PAPER_POLY_DEGREE,
            seed: 14,
            cost_model: Some(CostModel::fake_sgx()),
            recorder: obs.clone(),
            ..ProvisionConfig::default()
        },
    )
    .unwrap();
    let enc_fake = EncryptedMap::encrypt_images(
        fake_service.system(),
        &images,
        hybrid_model.in_side,
        &fake_ceremony.public,
        &mut rng,
    )
    .unwrap();
    let start = Instant::now();
    let _ = fake_service
        .infer(&enc_fake, EcallBatching::Batched)
        .unwrap();
    let encrypt_fake_sgx_s = start.elapsed().as_secs_f64();

    let per_image = |total: f64| total / PAPER_BATCH_SIZE as f64;
    let saving = (encrypted_s - encrypt_sgx_s) / encrypted_s;
    println!();
    println!("scheme                 total (s)   per image (s)");
    println!(
        "Encrypted              {encrypted_s:9.3}   {:13.4}",
        per_image(encrypted_s)
    );
    println!(
        "EncryptSGX (single)    {encrypt_sgx_single_s:9.3}   {:13.4}",
        per_image(encrypt_sgx_single_s)
    );
    println!(
        "EncryptSGX             {encrypt_sgx_s:9.3}   {:13.4}",
        per_image(encrypt_sgx_s)
    );
    println!(
        "EncryptFakeSGX         {encrypt_fake_sgx_s:9.3}   {:13.4}",
        per_image(encrypt_fake_sgx_s)
    );
    println!(
        "paper: Encrypted 450.7 s/img, EncryptSGX(single) +152.5 s/img penalty, EncryptSGX 272.1 s/img, EncryptFakeSGX 240.4 s/img"
    );
    println!(
        "hybrid saving over pure HE: {:.1}% (paper: 39.615%)",
        saving * 100.0
    );
    println!(
        "encrypted predictions exactly match plaintext quantized reference: hybrid {hybrid_exact}, baseline {baseline_exact} (paper: 'accuracy rates are consistent with the plaintext predictions')"
    );

    if let Some(path) = crate::write_obs_snapshot("fig8", &obs) {
        println!("obs snapshot written to {}", path.display());
    }

    // The deterministic face of Fig. 8: modeled enclave cost terms and HE
    // operation counts only — wall seconds stay out, so CI can diff this
    // artifact across reruns.
    let batched_cost = total_enclave_cost(&metrics);
    let single_cost = total_enclave_cost(&metrics_single);
    let cost_json = |c: &hesgx_tee::cost::CostBreakdown| {
        format!(
            "{{\"transition_ns\":{},\"copy_ns\":{},\"paging_ns\":{},\"model_ns\":{}}}",
            c.transition_ns,
            c.copy_ns,
            c.paging_ns,
            c.span_cost().model_ns()
        )
    };
    let fig8_json = format!(
        "{{\"experiment\":\"fig8\",\"batch_size\":{},\"batched\":{},\"per_pixel\":{},\"ops\":{{\"ct_pt_mul\":{},\"ct_ct_add\":{},\"ct_pt_add\":{},\"ct_ct_mul\":{},\"relin\":{}}},\"predictions_exact\":{}}}",
        PAPER_BATCH_SIZE,
        cost_json(&batched_cost),
        cost_json(&single_cost),
        metrics.ops.ct_pt_mul,
        metrics.ops.ct_ct_add,
        metrics.ops.ct_pt_add,
        metrics.ops.ct_ct_mul,
        metrics.ops.relin,
        hybrid_exact && baseline_exact
    );
    if let Some(path) = crate::write_bench_file("BENCH_fig8.json", &fig8_json) {
        println!("bench table written to {}", path.display());
    }

    Fig8 {
        encrypted_s,
        encrypt_sgx_single_s,
        encrypt_sgx_s,
        encrypt_fake_sgx_s,
        predictions_exact: hybrid_exact && baseline_exact,
        hybrid_float_accuracy: hybrid_trained.test_accuracy,
        cryptonets_float_accuracy: cryptonets_trained.test_accuracy,
        saving,
    }
}
