//! `serve_load` — latency under multi-tenant load, batched vs unbatched
//! (not in the paper; the serving-layer consequence of its §V batching
//! design).
//!
//! Sweeps the offered arrival rate of a seeded open-loop trace through two
//! brokers that differ in exactly one knob: cross-request SIMD batching on
//! (`max_batch` = 8) versus off (`max_batch` = 1). Everything runs on the
//! virtual clock — modeled HE evaluator costs plus modeled enclave terms —
//! so every number printed or written here is a pure function of the seed
//! and replays byte-identically, which CI checks by running the experiment
//! twice and diffing the artifacts.
//!
//! The claim under test: a SIMD batch's evaluator cost does not grow with
//! its fill, so at high arrival rates (where the queue actually fills and
//! batches pack) the modeled per-request HE cost of the batched broker
//! drops well below the unbatched one, and tail latency follows.
//!
//! Artifacts: `target/obs/serve-load.json` / `.prom` (observability
//! snapshot and Prometheus export of the high-rate batched run) and
//! `target/bench/BENCH_serve.json` (the sweep table, integers only).

use super::{chaos_sweep::sweep_model, header, RunConfig};
use hesgx_core::request::Ingress;
use hesgx_core::session::ParamsPreset;
use hesgx_obs::Recorder;
use hesgx_serve::{Broker, BrokerConfig, HeCostModel, LoadReport, LoadSpec, LoadTrace};
use std::fmt::Write as _;

/// Broker seed: one key domain for the whole sweep.
const SEED: u64 = 2021;
/// HE worker-pool sizes the byte-identity check replays at.
const POOLS: [usize; 3] = [1, 2, 4];

/// One broker configuration's results at one arrival rate.
#[derive(Debug, Clone, Copy)]
pub struct PointStats {
    /// Requests admitted past the bounded queue.
    pub admitted: usize,
    /// Requests completed (exact + degraded).
    pub completed: usize,
    /// Requests dropped (backpressure + deadline + oversize).
    pub dropped: usize,
    /// Mean images per dispatched batch, permille.
    pub fill_permille: u64,
    /// Modeled HE evaluator cost per completed request (the amortization
    /// headline).
    pub he_ns_per_request: u64,
    /// Median latency on the virtual clock.
    pub p50_ns: u64,
    /// Tail latency on the virtual clock.
    pub p99_ns: u64,
}

impl PointStats {
    fn from_report(report: &LoadReport) -> PointStats {
        PointStats {
            admitted: report.admitted,
            completed: report.completed(),
            dropped: report.dropped_queue_full + report.dropped_oversize + report.dropped_deadline,
            fill_permille: report.mean_fill_permille(),
            he_ns_per_request: report.he_ns_per_request(),
            p50_ns: report.latency.p50_ns,
            p99_ns: report.latency.p99_ns,
        }
    }
}

/// One arrival-rate point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServeLoadPoint {
    /// Mean inter-arrival gap of the trace (offered rate = 1e9 / gap).
    pub mean_gap_ns: u64,
    /// The batching broker (`max_batch` = 8).
    pub batched: PointStats,
    /// The control broker (`max_batch` = 1).
    pub unbatched: PointStats,
}

/// Machine-checkable summary of the experiment.
#[derive(Debug, Clone)]
pub struct ServeLoad {
    /// Sweep points, lowest offered rate first.
    pub points: Vec<ServeLoadPoint>,
    /// At the highest arrival rate, batching cut the modeled per-request
    /// HE cost below the unbatched control.
    pub batching_amortizes_he: bool,
    /// At the highest arrival rate, batched p99 latency is no worse than
    /// the unbatched control's.
    pub batching_helps_tail: bool,
    /// The high-rate batched report replayed byte-identically at HE pools
    /// 1/2/4.
    pub pool_identical: bool,
    /// WAN scenario: the saturated trace under WAN-priced ingress, FV
    /// ciphertext uploads.
    pub wan_fv: PointStats,
    /// WAN scenario: the same trace, transciphered uploads.
    pub wan_transciphered: PointStats,
    /// The per-byte ingress price at which transciphered ingress starts to
    /// beat FV uploads for this traffic (0 = no crossover computed).
    pub wan_crossover_byte_ns: u64,
    /// At WAN prices (80 ns/B), transciphered ingress yields lower mean
    /// modeled latency than FV-ciphertext uploads.
    pub transcipher_wins_at_wan: bool,
}

fn broker(max_batch: usize, he_threads: usize, quick: bool, recorder: Recorder) -> Broker {
    Broker::new(
        BrokerConfig::new()
            .workers(2)
            .max_batch(max_batch)
            .queue_cap(64),
        sweep_model(quick),
        ParamsPreset::Small,
        SEED,
        he_threads,
        recorder,
    )
    .expect("serve_load broker provisions on the deterministic platform")
}

/// A batching broker with ingress priced at WAN rates (80 ns/byte) — the
/// bandwidth-constrained-client scenario.
fn wan_broker(quick: bool) -> Broker {
    Broker::new(
        BrokerConfig::new()
            .workers(2)
            .max_batch(8)
            .queue_cap(64)
            .he_costs(HeCostModel::wan()),
        sweep_model(quick),
        ParamsPreset::Small,
        SEED,
        2,
        Recorder::disabled(),
    )
    .expect("serve_load WAN broker provisions on the deterministic platform")
}

/// The same trace with every request switched to transciphered ingress.
fn transciphered(trace: &LoadTrace) -> LoadTrace {
    let mut wan = trace.clone();
    for arrival in &mut wan.arrivals {
        arrival.request = arrival.request.clone().ingress(Ingress::Transciphered);
    }
    wan
}

fn spec(quick: bool, mean_gap_ns: u64, requests: usize) -> LoadSpec {
    let model = sweep_model(quick);
    let mut spec = LoadSpec::new(SEED);
    spec.requests = requests;
    spec.mean_gap_ns = mean_gap_ns;
    spec.tenants = 3;
    spec.image_len = model.in_side * model.in_side;
    spec
}

/// Runs the sweep, prints the latency-vs-load table, writes the artifacts.
pub fn serve_load(cfg: RunConfig) -> ServeLoad {
    header("SERVE LOAD: multi-tenant latency under load, SIMD batching on/off (not in the paper)");
    let requests = if cfg.quick { 24 } else { 48 };

    // Calibrate the rate axis to the modeled service time: a one-request
    // trace measures the single-batch service cost S, then the sweep offers
    // arrivals at gaps of 4S (idle), S (saturated), and S/4 (overloaded).
    let calibration = broker(8, 2, cfg.quick, Recorder::disabled())
        .run(&LoadTrace::generate(&spec(cfg.quick, 1, 1)));
    let service_ns = calibration.total_service_ns.max(4);
    println!("calibrated single-request modeled service time: {service_ns} ns");
    let gaps = [
        service_ns.saturating_mul(4),
        service_ns,
        (service_ns / 4).max(1),
    ];

    println!();
    println!(
        "{:>14}  {:>9}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}",
        "gap (ns)", "mode", "done/drop", "fill (‰)", "HE ns/req", "p50 (ns)", "p99 (ns)"
    );
    let mut points = Vec::new();
    for &gap in &gaps {
        let trace = LoadTrace::generate(&spec(cfg.quick, gap, requests));
        let batched =
            PointStats::from_report(&broker(8, 2, cfg.quick, Recorder::disabled()).run(&trace));
        let unbatched =
            PointStats::from_report(&broker(1, 2, cfg.quick, Recorder::disabled()).run(&trace));
        for (mode, s) in [("batched", &batched), ("unbatched", &unbatched)] {
            println!(
                "{:>14}  {:>9}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}",
                gap,
                mode,
                format!("{}/{}", s.completed, s.dropped),
                s.fill_permille,
                s.he_ns_per_request,
                s.p50_ns,
                s.p99_ns
            );
        }
        points.push(ServeLoadPoint {
            mean_gap_ns: gap,
            batched,
            unbatched,
        });
    }

    let high = points.last().expect("sweep has points");
    let batching_amortizes_he = high.batched.he_ns_per_request < high.unbatched.he_ns_per_request;
    let batching_helps_tail = high.batched.p99_ns <= high.unbatched.p99_ns;
    println!();
    println!(
        "high-rate HE cost per request: batched {} ns vs unbatched {} ns ({})",
        high.batched.he_ns_per_request,
        high.unbatched.he_ns_per_request,
        if batching_amortizes_he {
            "SIMD batching amortizes"
        } else {
            "NO amortization — check batch fill"
        }
    );

    // Byte-identity across HE pool sizes: the high-rate batched replay must
    // export the same report and observability bytes at pools 1/2/4.
    let high_trace = LoadTrace::generate(&spec(cfg.quick, gaps[2], requests));
    let replays: Vec<(String, String, String)> = POOLS
        .iter()
        .map(|&threads| {
            let recorder = Recorder::enabled();
            let report = broker(8, threads, cfg.quick, recorder.clone()).run(&high_trace);
            (
                report.to_json(),
                recorder.snapshot_json(),
                recorder.export_prometheus(),
            )
        })
        .collect();
    let pool_identical = replays.iter().all(|r| r == &replays[0]);
    println!(
        "byte-identity across HE pools {POOLS:?}: {}",
        if pool_identical { "ok" } else { "DIVERGED" }
    );

    // WAN ingress scenario (ROADMAP item 2 follow-on): replay the
    // saturated trace with ingress priced at WAN rates, once with FV
    // ciphertext uploads and once transciphered, and solve for the
    // per-byte price where the modes cross over.
    let wan = HeCostModel::wan();
    let wan_trace = LoadTrace::generate(&spec(cfg.quick, gaps[1], requests));
    let mut wan_fv_report = wan_broker(cfg.quick).run(&wan_trace);
    let mut wan_tc_report = wan_broker(cfg.quick).run(&transciphered(&wan_trace));
    let wan_crossover_byte_ns =
        LoadReport::ingress_crossover_byte_ns(&wan_fv_report, &wan_tc_report, wan.ingress_byte_ns);
    wan_fv_report.crossover_byte_ns = wan_crossover_byte_ns;
    wan_tc_report.crossover_byte_ns = wan_crossover_byte_ns;
    let wan_fv = PointStats::from_report(&wan_fv_report);
    let wan_transciphered = PointStats::from_report(&wan_tc_report);
    let transcipher_wins_at_wan = wan_tc_report.latency.mean_ns < wan_fv_report.latency.mean_ns;
    println!();
    println!(
        "WAN ingress ({} ns/B): FV mean latency {} ns ({} B up) vs transciphered {} ns ({} B up)",
        wan.ingress_byte_ns,
        wan_fv_report.latency.mean_ns,
        wan_fv_report.total_upload_bytes,
        wan_tc_report.latency.mean_ns,
        wan_tc_report.total_upload_bytes,
    );
    println!(
        "ingress price crossover: transciphering wins above {wan_crossover_byte_ns} ns/B ({})",
        if transcipher_wins_at_wan {
            "WAN is past the crossover — transciphered ingress wins"
        } else {
            "WAN is below the crossover — FV upload still fine"
        }
    );

    // Artifacts: obs snapshot + Prometheus export of the high-rate batched
    // run, and the sweep table for CI to archive and diff.
    if let Some(path) = crate::write_obs_file("serve-load.json", &replays[0].1) {
        println!("obs snapshot written to {}", path.display());
    }
    if let Some(path) = crate::write_obs_file("serve-load.prom", &replays[0].2) {
        println!("prometheus export written to {}", path.display());
    }
    let mut json = String::from("{\"experiment\":\"serve_load\",");
    let _ = write!(
        json,
        "\"seed\":{SEED},\"requests\":{requests},\"calibrated_service_ns\":{service_ns},\"points\":["
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let stat = |s: &PointStats| {
            format!(
                "{{\"admitted\":{},\"completed\":{},\"dropped\":{},\"fill_permille\":{},\"he_ns_per_request\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                s.admitted, s.completed, s.dropped, s.fill_permille, s.he_ns_per_request, s.p50_ns, s.p99_ns
            )
        };
        let _ = write!(
            json,
            "{{\"mean_gap_ns\":{},\"batched\":{},\"unbatched\":{}}}",
            p.mean_gap_ns,
            stat(&p.batched),
            stat(&p.unbatched)
        );
    }
    let stat = |s: &PointStats| {
        format!(
            "{{\"admitted\":{},\"completed\":{},\"dropped\":{},\"fill_permille\":{},\"he_ns_per_request\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            s.admitted, s.completed, s.dropped, s.fill_permille, s.he_ns_per_request, s.p50_ns, s.p99_ns
        )
    };
    let _ = write!(
        json,
        "],\"wan\":{{\"ingress_byte_ns\":{},\"fv\":{},\"transciphered\":{},\"crossover_byte_ns\":{wan_crossover_byte_ns},\"transcipher_wins\":{transcipher_wins_at_wan}}},",
        wan.ingress_byte_ns,
        stat(&wan_fv),
        stat(&wan_transciphered)
    );
    let _ = write!(
        json,
        "\"batching_amortizes_he\":{batching_amortizes_he},\"batching_helps_tail\":{batching_helps_tail},\"pool_identical\":{pool_identical}}}"
    );
    if let Some(path) = crate::write_bench_file("BENCH_serve.json", &json) {
        println!("bench table written to {}", path.display());
    }

    ServeLoad {
        points,
        batching_amortizes_he,
        batching_helps_tail,
        pool_identical,
        wan_fv,
        wan_transciphered,
        wan_crossover_byte_ns,
        transcipher_wins_at_wan,
    }
}
