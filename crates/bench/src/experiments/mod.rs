//! The paper-reproduction experiments, one module per evaluation section.
//!
//! Each function prints the regenerated table/figure with the paper's
//! reported values alongside, and returns a machine-checkable summary used by
//! the integration tests (shape claims: who wins, ratios, crossovers).

pub mod ablation;
pub mod bench_trajectory;
pub mod chaos_sweep;
pub mod e2e;
pub mod figures;
pub mod ntt_bench;
pub mod obs_report;
pub mod par_sweep;
pub mod profile;
pub mod serve_load;
pub mod tables;
pub mod trace;
pub mod transcipher;

/// Repetition policy: `quick` trades statistical depth for runtime.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Reduced repetitions / sweep points.
    pub quick: bool,
}

impl RunConfig {
    /// Repetitions, scaled.
    pub fn reps(&self, full: usize) -> usize {
        if self.quick {
            (full / 10).max(3)
        } else {
            full
        }
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}
