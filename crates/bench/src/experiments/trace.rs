//! `trace` — deterministic per-request trace timelines and the noise-budget
//! decision table (not in the paper).
//!
//! Runs a fixed-seed session at worker-pool sizes 1/2/4 with a
//! timeline-enabled [`Recorder`] and checks the three contracts DESIGN.md
//! §13 pins:
//!
//! 1. **Timeline determinism** — the Chrome trace-event JSON and the
//!    Prometheus exposition are byte-identical across pool sizes, because
//!    every timestamp comes from the modeled virtual trace clock and the
//!    ECALL path is selected by [`EcallBatching`], never by thread count.
//! 2. **Noise-decision soundness** — in `Auto` mode the refresh fires *iff*
//!    the enclave-measured pre-refresh budget is below the plan's
//!    `refresh_threshold_bits`. Both outcomes are exercised: the planner
//!    default (10 bits) skips, a raised override (80 bits) refreshes.
//! 3. **Zero-cost-when-off** — logits from the traced run are bit-identical
//!    to an untraced run of the same seed: telemetry probes never touch the
//!    ciphertext path.
//!
//! Artifacts land in `target/obs/`: `trace-<seed>.json` loads directly in
//! Perfetto / `chrome://tracing`, `trace-<seed>.prom` is Prometheus text
//! exposition. CI runs this experiment twice and diffs the outputs.

use super::{chaos_sweep::sweep_model, header, RunConfig};
use hesgx_core::pipeline::NoiseDecision;
use hesgx_core::prelude::*;
use hesgx_obs::Recorder;

/// Seed every session in this experiment uses (also in the artifact names).
pub const TRACE_SEED: u64 = 7;

/// Machine-checkable summary of the trace experiment.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Chrome trace-event JSON identical across pool sizes 1/2/4.
    pub chrome_identical: bool,
    /// Prometheus exposition identical across pool sizes 1/2/4.
    pub prometheus_identical: bool,
    /// Traced logits equal the untraced run's logits (zero-cost-when-off).
    pub logits_match_untraced: bool,
    /// Every decision satisfies `refreshed == (before_bits < threshold)`.
    pub decisions_sound: bool,
    /// Noise decisions from both threshold configs, execution order.
    pub decisions: Vec<NoiseDecision>,
    /// Trace events in the pool-1 timeline.
    pub events: usize,
    /// Where the Perfetto trace landed (unset when the write failed).
    pub trace_path: Option<String>,
    /// Where the Prometheus snapshot landed (unset when the write failed).
    pub prom_path: Option<String>,
}

/// One traced run: returns (logits, noise decisions, chrome JSON,
/// Prometheus text, event count, recorder).
#[allow(clippy::type_complexity)]
fn traced_run(
    threads: usize,
    threshold: Option<u32>,
    model: &hesgx_nn::quantize::QuantizedCnn,
    image: &[i64],
    platform_id: u64,
) -> (
    Vec<Vec<i64>>,
    Vec<NoiseDecision>,
    String,
    String,
    usize,
    Recorder,
) {
    let rec = Recorder::with_timeline();
    let mut builder = SessionBuilder::new()
        .params(ParamsPreset::Small)
        .threads(threads)
        .seed(TRACE_SEED)
        .noise_refresh_auto(true)
        .recorder(rec.clone());
    if let Some(bits) = threshold {
        builder = builder.refresh_threshold_bits(bits);
    }
    let session = builder
        .build(Platform::new(platform_id), model.clone())
        .expect("trace experiment provisioning");
    let logits = session
        .serve(InferRequest::single(image.to_vec()))
        .expect("fault-free inference")
        .logits;
    let decisions = session.metrics().expect("inference ran").noise;
    let chrome = rec.export_chrome_trace();
    let prom = rec.export_prometheus();
    let events = rec.trace_events().len();
    (logits, decisions, chrome, prom, events, rec)
}

/// Runs the report, prints the noise table, writes `target/obs/trace-7.*`.
pub fn trace(cfg: RunConfig) -> TraceReport {
    header("TRACE: deterministic timelines + noise-budget telemetry (not in the paper)");
    let model = sweep_model(cfg.quick);
    let image: Vec<i64> = (0..model.in_side * model.in_side)
        .map(|p| ((p * 3) % 16) as i64)
        .collect();

    // Reference run with the no-op recorder: tracing must not change bits.
    let untraced = SessionBuilder::new()
        .params(ParamsPreset::Small)
        .threads(1)
        .seed(TRACE_SEED)
        .noise_refresh_auto(true)
        .build(Platform::new(703), model.clone())
        .expect("untraced provisioning");
    let untraced_logits = untraced
        .serve(InferRequest::single(image.clone()))
        .expect("untraced inference")
        .logits;

    // Traced runs across pool sizes, planner-default threshold (10 bits —
    // the small model keeps far more budget than that, so Auto skips).
    let mut chrome_outs = Vec::new();
    let mut prom_outs = Vec::new();
    #[allow(clippy::type_complexity)]
    let mut first: Option<(Vec<Vec<i64>>, Vec<NoiseDecision>, usize, Recorder)> = None;
    for threads in [1usize, 2, 4] {
        let (logits, decisions, chrome, prom, events, rec) =
            traced_run(threads, None, &model, &image, 703);
        chrome_outs.push(chrome);
        prom_outs.push(prom);
        if first.is_none() {
            first = Some((logits, decisions, events, rec));
        }
    }
    let chrome_identical = chrome_outs.windows(2).all(|w| w[0] == w[1]);
    let prometheus_identical = prom_outs.windows(2).all(|w| w[0] == w[1]);
    let (logits, skip_decisions, events, rec) = first.expect("at least one pool size ran");
    let logits_match_untraced = logits == untraced_logits;

    // Second config: threshold raised above the live budget, so the same
    // pipeline must take the refresh — and still agree on the logits.
    let (forced_logits, take_decisions, ..) = traced_run(1, Some(80), &model, &image, 704);
    let forced_match = forced_logits == untraced_logits;

    let mut decisions = skip_decisions;
    decisions.extend(take_decisions.iter().copied());
    let decisions_sound = !decisions.is_empty()
        && decisions
            .iter()
            .all(|d| d.refreshed == (d.before_bits < d.threshold_bits));

    println!(
        "input {}×{} | FV n = 256 | pools 1/2/4 | seed {TRACE_SEED} | auto refresh",
        model.in_side, model.in_side
    );
    println!();
    println!("noise-budget decisions (bits measured inside the enclave):");
    println!("layer   threshold   before   after   margin   decision");
    for d in &decisions {
        let after = d
            .after_bits
            .map_or_else(|| "-".to_string(), |b| b.to_string());
        let margin = i64::from(d.before_bits) - i64::from(d.threshold_bits);
        let verdict = if d.refreshed { "REFRESH" } else { "skip" };
        println!(
            "{:>5} {:>11} {:>8} {:>7} {:>8} {:>10}",
            d.layer, d.threshold_bits, d.before_bits, after, margin, verdict
        );
    }
    println!();
    println!("trace events (pool 1): {events}");
    println!("chrome trace byte-identical across pools 1/2/4: {chrome_identical}");
    println!("prometheus text byte-identical across pools 1/2/4: {prometheus_identical}");
    println!(
        "logits bit-identical to untraced run: {}",
        logits_match_untraced && forced_match
    );

    let trace_path = crate::write_obs_file(
        &format!("trace-{TRACE_SEED}.json"),
        &rec.export_chrome_trace(),
    )
    .map(|p| p.display().to_string());
    let prom_path = crate::write_obs_file(
        &format!("trace-{TRACE_SEED}.prom"),
        &rec.export_prometheus(),
    )
    .map(|p| p.display().to_string());
    if let Some(path) = &trace_path {
        println!("perfetto trace written to {path} (open in ui.perfetto.dev)");
    }
    if let Some(path) = &prom_path {
        println!("prometheus snapshot written to {path}");
    }

    // CI gates on this experiment: a broken contract must fail the run.
    assert!(
        chrome_identical,
        "chrome trace diverged across pool sizes 1/2/4"
    );
    assert!(
        prometheus_identical,
        "prometheus exposition diverged across pool sizes 1/2/4"
    );
    assert!(
        logits_match_untraced && forced_match,
        "tracing changed the inference result"
    );
    assert!(
        decisions_sound,
        "refresh decision disagrees with the recorded budget/threshold: {decisions:?}"
    );
    assert!(
        decisions.iter().any(|d| !d.refreshed) && decisions.iter().any(|d| d.refreshed),
        "expected both a skipped and a taken refresh across the two thresholds"
    );

    TraceReport {
        chrome_identical,
        prometheus_identical,
        logits_match_untraced: logits_match_untraced && forced_match,
        decisions_sound,
        decisions,
        events,
        trace_path,
        prom_path,
    }
}
