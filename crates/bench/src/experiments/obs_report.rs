//! `obs_report` — the deterministic observability layer's per-layer cost
//! table (not in the paper).
//!
//! Runs a fixed-seed session at worker-pool sizes 1/2/4 with an enabled
//! [`Recorder`], then checks the two contracts DESIGN.md §12 pins:
//!
//! 1. **Snapshot determinism** — `Recorder::snapshot_json` is byte-identical
//!    across runs and pool sizes (only modeled cost terms and entry counts
//!    reach the file; wall-derived terms stay in memory).
//! 2. **Reconciliation** — summing the in-memory `infer.layer[i].ecall`
//!    spans reproduces `total_enclave_cost(&metrics)` exactly, nanosecond
//!    for nanosecond, because both sides are fed the same `CostBreakdown`.
//!
//! The snapshot is written to `target/obs/obs_report.json` for CI to archive.

use super::{chaos_sweep::sweep_model, header, RunConfig};
use hesgx_core::pipeline::total_enclave_cost;
use hesgx_core::prelude::*;
use hesgx_obs::{counters, Recorder, SpanCost};

/// One row of the per-layer cost table.
#[derive(Debug, Clone)]
pub struct LayerCost {
    /// Span path (`infer.layer[i].he` / `infer.layer[i].ecall`).
    pub span: String,
    /// Recorded entries (one per inference for pipeline spans).
    pub entries: u64,
    /// Modeled boundary-transition nanoseconds.
    pub transition_ns: u64,
    /// Modeled marshalling-copy nanoseconds.
    pub copy_ns: u64,
    /// Modeled EPC-paging nanoseconds.
    pub paging_ns: u64,
    /// Full six-term virtual-clock total (in-memory only).
    pub total_ns: u64,
}

/// Machine-checkable summary of the report.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Snapshot bytes identical across pool sizes 1/2/4.
    pub snapshots_identical: bool,
    /// Obs `.ecall` fold equals `total_enclave_cost` exactly.
    pub reconciled: bool,
    /// Absolute reconciliation gap in nanoseconds (zero when `reconciled`).
    pub delta_ns: u128,
    /// Per-layer rows, span-name order.
    pub per_layer: Vec<LayerCost>,
    /// Where the snapshot landed (unset when the write failed).
    pub snapshot_path: Option<String>,
}

/// Runs the report, prints the table, writes `target/obs/obs_report.json`.
pub fn obs_report(cfg: RunConfig) -> ObsReport {
    header("OBS REPORT: deterministic per-layer cost accounting (not in the paper)");
    let model = sweep_model(cfg.quick);
    let image: Vec<i64> = (0..model.in_side * model.in_side)
        .map(|p| ((p * 3) % 16) as i64)
        .collect();

    let mut snaps = Vec::new();
    let mut first: Option<(Session, Recorder)> = None;
    for threads in [1usize, 2, 4] {
        let rec = Recorder::enabled();
        let session = SessionBuilder::new()
            .params(ParamsPreset::Small)
            .threads(threads)
            .seed(7)
            .noise_refresh(true)
            .recorder(rec.clone())
            .build(Platform::new(702), model.clone())
            .expect("obs report provisioning");
        session
            .serve(InferRequest::single(image.clone()))
            .expect("fault-free inference");
        snaps.push(session.obs_snapshot_json());
        if first.is_none() {
            first = Some((session, rec));
        }
    }
    let snapshots_identical = snaps.windows(2).all(|w| w[0] == w[1]);
    let (session, rec) = first.expect("at least one pool size ran");

    let metrics = session.metrics().expect("inference ran");
    let total = total_enclave_cost(&metrics);
    let spans = rec.spans_with_prefix("infer.");
    let folded = spans
        .iter()
        .filter(|(name, _)| name.ends_with(".ecall"))
        .fold(SpanCost::default(), |acc, (_, s)| {
            acc.saturating_add(s.cost)
        });
    let reconciled = folded == total.span_cost();
    let delta_ns = u128::from(folded.total_ns()).abs_diff(u128::from(total.total_ns()));

    println!(
        "input {}×{} | FV n = 256 | pools 1/2/4 | seed 7",
        model.in_side, model.in_side
    );
    println!();
    println!("span                          entries   transition(ns)    copy(ns)   paging(ns)     total(ns)");
    let per_layer: Vec<LayerCost> = spans
        .iter()
        .map(|(name, s)| LayerCost {
            span: name.clone(),
            entries: s.entries,
            transition_ns: s.cost.transition_ns,
            copy_ns: s.cost.copy_ns,
            paging_ns: s.cost.paging_ns,
            total_ns: s.cost.total_ns(),
        })
        .collect();
    for row in &per_layer {
        println!(
            "{:<28} {:>8} {:>16} {:>11} {:>12} {:>13}",
            row.span, row.entries, row.transition_ns, row.copy_ns, row.paging_ns, row.total_ns
        );
    }
    println!();
    println!(
        "total_enclave_cost(metrics): {} ns | obs .ecall fold: {} ns | Δ = {} ns",
        total.total_ns(),
        folded.total_ns(),
        delta_ns
    );
    println!("reconciles ns-for-ns: {reconciled}");
    println!("snapshots byte-identical across pools 1/2/4: {snapshots_identical}");
    println!(
        "ecalls {} | transitions {} | bytes marshalled {} | page faults {} | par tasks {}",
        rec.counter(counters::ECALLS),
        rec.counter(counters::ECALL_TRANSITIONS),
        rec.counter(counters::BYTES_MARSHALLED),
        rec.counter(counters::EPC_PAGE_FAULTS),
        rec.counter(counters::PAR_TASKS),
    );

    let snapshot_path =
        crate::write_obs_snapshot("obs_report", &rec).map(|p| p.display().to_string());
    if let Some(path) = &snapshot_path {
        println!("obs snapshot written to {path}");
    }

    // CI gates on this experiment: a broken contract must fail the run, not
    // just print `false` in a table nobody re-reads.
    assert!(
        snapshots_identical,
        "obs snapshots diverged across pool sizes 1/2/4"
    );
    assert!(
        reconciled,
        "obs .ecall fold diverged from total_enclave_cost by {delta_ns} ns"
    );

    ObsReport {
        snapshots_identical,
        reconciled,
        delta_ns,
        per_layer,
        snapshot_path,
    }
}
