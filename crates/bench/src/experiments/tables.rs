//! Tables I–V: basic-operation timings inside vs outside SGX.

use super::{header, RunConfig};
use crate::stats::{time_reps_ms, Stats};
use crate::{PaperEnv, PAPER_BATCH_SIZE};
use hesgx_bfv::prelude::KeyGenerator;
use hesgx_henn::image::EncryptedMap;

/// Table I result: key-generation time inside vs outside SGX (ms).
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Statistics measured inside the enclave (virtual time).
    pub inside: Stats,
    /// Statistics measured outside.
    pub outside: Stats,
}

/// Table I — "A pair of public/private keys generation time".
pub fn table1_keygen(env: &mut PaperEnv, cfg: RunConfig) -> Table1 {
    header("TABLE I: public/private key generation time (ms), inside vs outside SGX");
    let reps = cfg.reps(200);
    let ctx = env.sys.contexts()[0].clone();
    let enclave = env.build_enclave("table1", false);

    let mut rng_out = env.rng.fork("keygen-outside");
    let outside_ms = time_reps_ms(reps, || {
        let _ = KeyGenerator::new(ctx.clone(), &mut rng_out);
    });

    let mut rng_in = env.rng.fork("keygen-inside");
    let mut inside_ms = Vec::with_capacity(reps);
    // Warm-up ecall before timing.
    let _ = enclave.ecall("ecall_generate_key", 0, 2048, |_| {
        KeyGenerator::new(ctx.clone(), &mut rng_in)
    });
    for _ in 0..reps {
        let (_, cost) = enclave.ecall("ecall_generate_key", 0, 2048, |_| {
            KeyGenerator::new(ctx.clone(), &mut rng_in)
        });
        inside_ms.push(cost.total_ns() as f64 / 1e6);
    }

    let inside = Stats::from_samples_trimmed(&inside_ms);
    let outside = Stats::from_samples_trimmed(&outside_ms);
    println!("             Average     STD     96% CI              (n = {reps})");
    println!(
        "Inside SGX   {:8.3}  {:6.3}  [{:.3}, {:.3}]",
        inside.mean, inside.std, inside.ci96.0, inside.ci96.1
    );
    println!(
        "Outside SGX  {:8.3}  {:6.3}  [{:.3}, {:.3}]",
        outside.mean, outside.std, outside.ci96.0, outside.ci96.1
    );
    println!(
        "ratio inside/outside = {:.2}x   (paper: 49.593 / 20.201 = 2.45x)",
        inside.mean / outside.mean
    );
    Table1 { inside, outside }
}

/// Table II result: batch image encoding+encryption time (ms).
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Statistics for the whole batch (ms).
    pub batch: Stats,
    /// Batch size used.
    pub batch_size: usize,
}

/// Table II — "Image encoding and encryption time" (batchSize images).
pub fn table2_image_encryption(env: &mut PaperEnv, cfg: RunConfig) -> Table2 {
    header("TABLE II: image encoding + encryption time for a batch of 10 images");
    let reps = cfg.reps(20);
    let images: Vec<Vec<i64>> = (0..PAPER_BATCH_SIZE)
        .map(|b| (0..784).map(|p| ((p + b) % 16) as i64).collect())
        .collect();
    let mut rng = env.rng.fork("table2");
    let sys = &env.sys;
    let public = &env.keys.public;
    let samples = time_reps_ms(reps, || {
        let _ = EncryptedMap::encrypt_images(sys, &images, 28, public, &mut rng).unwrap();
    });
    let batch = Stats::from_samples_trimmed(&samples);
    println!("batchSize  Average(ms)   STD      96% CI             (n = {reps})");
    println!(
        "{:9}  {:10.3}  {:7.3}  [{:.3}, {:.3}]",
        PAPER_BATCH_SIZE, batch.mean, batch.std, batch.ci96.0, batch.ci96.1
    );
    println!(
        "per image: {:.3} ms    (paper: 157.013 s per batch, 15.7 s per image on SEAL 2.1 / 2017 Xeon)",
        batch.mean / PAPER_BATCH_SIZE as f64
    );
    Table2 {
        batch,
        batch_size: PAPER_BATCH_SIZE,
    }
}

/// Table III result: decryption+decoding of inference results (ms).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Statistics for decrypting 100 result ciphertexts (ms).
    pub batch: Stats,
}

/// Table III — "Decryption and decoding of batchSize image inference
/// results" (10 images × 10 logits = 100 ciphertexts).
pub fn table3_result_decryption(env: &mut PaperEnv, cfg: RunConfig) -> Table3 {
    header("TABLE III: decryption + decoding of 10 image inference results (100 ciphertexts)");
    let reps = cfg.reps(20);
    let mut rng = env.rng.fork("table3");
    let cts: Vec<_> = (0..100)
        .map(|i| {
            env.sys
                .encrypt_slots(&[i as i64; PAPER_BATCH_SIZE], &env.keys.public, &mut rng)
                .unwrap()
        })
        .collect();
    let sys = &env.sys;
    let secret = &env.keys.secret;
    let samples = time_reps_ms(reps, || {
        for ct in &cts {
            let _ = sys.decrypt_slots(ct, secret).unwrap();
        }
    });
    let batch = Stats::from_samples_trimmed(&samples);
    println!("batchSize  Average(ms)   STD      96% CI             (n = {reps})");
    println!(
        "{:9}  {:10.3}  {:7.3}  [{:.3}, {:.3}]",
        PAPER_BATCH_SIZE, batch.mean, batch.std, batch.ci96.0, batch.ci96.1
    );
    println!(
        "per image: {:.3} ms    (paper: 62.391 ms per batch, 6.239 ms per image)",
        batch.mean / PAPER_BATCH_SIZE as f64
    );
    Table3 { batch }
}

/// Table IV result: single encode+encrypt / decode+decrypt, inside vs
/// outside SGX (ms).
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Encode+encrypt inside the enclave.
    pub enc_inside: f64,
    /// Encode+encrypt outside.
    pub enc_outside: f64,
    /// Decode+decrypt inside the enclave.
    pub dec_inside: f64,
    /// Decode+decrypt outside.
    pub dec_outside: f64,
}

/// Table IV — one Encoding+Encryption vs one Decoding+Decryption, inside and
/// outside SGX.
pub fn table4_enc_dec_costs(env: &mut PaperEnv, cfg: RunConfig) -> Table4 {
    header("TABLE IV: one encode+encrypt vs one decode+decrypt, inside vs outside SGX (ms)");
    let reps = cfg.reps(100);
    let mut rng = env.rng.fork("table4");
    let enclave = env.build_enclave("table4", false);
    let sys = &env.sys;
    let keys = &env.keys;
    let values = [5i64; PAPER_BATCH_SIZE];
    let sample = sys.encrypt_slots(&values, &keys.public, &mut rng).unwrap();
    let bytes = sample.byte_len();

    // Outside (real time).
    let mut rng2 = env.rng.fork("table4-out");
    let enc_out = Stats::from_samples_trimmed(&time_reps_ms(reps, || {
        let _ = sys.encrypt_slots(&values, &keys.public, &mut rng2).unwrap();
    }));
    let dec_out = Stats::from_samples_trimmed(&time_reps_ms(reps, || {
        let _ = sys.decrypt_slots(&sample, &keys.secret).unwrap();
    }));

    // Inside (virtual time).
    let mut rng3 = env.rng.fork("table4-in");
    let mut enc_in = Vec::with_capacity(reps);
    let mut dec_in = Vec::with_capacity(reps);
    let _ = enclave.ecall("warmup", 64, bytes, |_| {
        sys.encrypt_slots(&values, &keys.public, &mut rng3).unwrap()
    });
    for _ in 0..reps {
        let (_, cost) = enclave.ecall("ecall_encrypt", 64, bytes, |_| {
            sys.encrypt_slots(&values, &keys.public, &mut rng3).unwrap()
        });
        enc_in.push(cost.total_ns() as f64 / 1e6);
        let (_, cost) = enclave.ecall("ecall_decrypt", bytes, 64, |_| {
            sys.decrypt_slots(&sample, &keys.secret).unwrap()
        });
        dec_in.push(cost.total_ns() as f64 / 1e6);
    }
    let enc_in = Stats::from_samples_trimmed(&enc_in);
    let dec_in = Stats::from_samples_trimmed(&dec_in);

    println!("              Encoding+Encryption   Decoding+Decryption      (n = {reps})");
    println!(
        "Inside SGX    {:16.3} ms   {:16.3} ms",
        enc_in.mean, dec_in.mean
    );
    println!(
        "Outside SGX   {:16.3} ms   {:16.3} ms",
        enc_out.mean, dec_out.mean
    );
    println!("paper:        18.167 / 12.125 ms        5.250 / 0.368 ms");
    println!(
        "inside-SGX premium: enc +{:.3} ms, dec +{:.3} ms (paper: +6.042 / +4.882 ms)",
        enc_in.mean - enc_out.mean,
        dec_in.mean - dec_out.mean
    );
    Table4 {
        enc_inside: enc_in.mean,
        enc_outside: enc_out.mean,
        dec_inside: dec_in.mean,
        dec_outside: dec_out.mean,
    }
}

/// Table V result: relinearization vs SGX noise reduction (ms).
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Relinearization time.
    pub relin: Stats,
    /// Single-ciphertext SGX noise reduction (virtual).
    pub sgx_single: Stats,
    /// Amortized per-ciphertext time of a batched SGX noise reduction.
    pub sgx_batched_per_ct: f64,
}

/// Table V — relinearization vs `ecall_DecreaseNoise`, plus the batched
/// amortization of §VI-E.
pub fn table5_relinearization(env: &mut PaperEnv, cfg: RunConfig) -> Table5 {
    header("TABLE V: relinearization vs SGX noise reduction (ms)");
    let reps = cfg.reps(50);
    let mut rng = env.rng.fork("table5");
    let sys = &env.sys;
    let keys = &env.keys;
    let fresh = sys
        .encrypt_slots(&[7; PAPER_BATCH_SIZE], &keys.public, &mut rng)
        .unwrap();
    let size3 = sys.square(&fresh).unwrap();

    let relin = Stats::from_samples_trimmed(&time_reps_ms(reps, || {
        let _ = sys.relinearize(&size3, &keys.evaluation).unwrap();
    }));

    let ie = env.inference_enclave(false);
    // Apples-to-apples amortization measurement: the SAME ten ciphertexts are
    // refreshed either with one ECALL each or all in one ECALL; measurements
    // interleave so host drift hits both groups equally.
    let batch: Vec<_> = (0..PAPER_BATCH_SIZE).map(|_| size3.clone()).collect();
    let _ = ie.refresh_batch(sys, &batch).unwrap();
    let mut single = Vec::with_capacity(reps);
    let mut per_ct = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut total = 0u64;
        for ct in &batch {
            let (_, cost) = ie.refresh_one(sys, ct).unwrap();
            total += cost.total_ns();
        }
        single.push(total as f64 / 1e6 / PAPER_BATCH_SIZE as f64);
        let (_, cost) = ie.refresh_batch(sys, &batch).unwrap();
        per_ct.push(cost.total_ns() as f64 / 1e6 / PAPER_BATCH_SIZE as f64);
    }
    let sgx_single = Stats::from_samples_trimmed(&single);
    let batched = Stats::from_samples_trimmed(&per_ct);

    println!("                       Average(ms)   STD      96% CI       (n = {reps})");
    println!(
        "Relinearization        {:10.3}  {:7.3}  [{:.3}, {:.3}]",
        relin.mean, relin.std, relin.ci96.0, relin.ci96.1
    );
    println!(
        "SGX noise reduction    {:10.3}  {:7.3}  [{:.3}, {:.3}]",
        sgx_single.mean, sgx_single.std, sgx_single.ci96.0, sgx_single.ci96.1
    );
    println!("SGX batched, per ct    {:10.3}", batched.mean);
    println!("paper: relin 65.216 ms, SGX 95.55 ms, batched 23.429 ms per ciphertext");
    println!(
        "shape check: relinearization cheaper than one SGX refresh: {} (paper: 65.2 < 95.6)",
        relin.mean < sgx_single.mean
    );
    println!(
        "batched/single ratio: {:.2} (paper: 23.4/95.6 = 0.25; ours ≈ 1 because the \
paper's per-ECALL cost was SEAL's ~70 ms in-enclave key reload, which has no \
expensive analogue here — only the {}-ns transition amortizes)",
        batched.mean / sgx_single.mean,
        hesgx_tee::cost::CostModel::default().transition_ns * 2
    );
    Table5 {
        relin,
        sgx_single,
        sgx_batched_per_ct: batched.mean,
    }
}
