//! `par_sweep` — the parallel-execution-engine sweep (not in the paper).
//!
//! Runs the hybrid pipeline at several worker-pool sizes and reports the
//! per-stage and total wall-clock alongside the modeled enclave overhead.
//! Two claims are checked and printed honestly:
//!
//! 1. **Determinism** — the encrypted logits are bit-identical for every
//!    pool size (the engine's scheduling-independence contract).
//! 2. **Speedup** — parallel over serial, which is physically bounded by the
//!    machine's core count. On a single-core machine the sweep reports ~1×
//!    and says so, rather than inventing numbers.

use super::{header, RunConfig};
use crate::PAPER_POLY_DEGREE;
use hesgx_core::pipeline::{EcallBatching, HybridInference, ProvisionConfig};
use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::image::EncryptedMap;
use hesgx_nn::layers::{ActivationKind, PoolKind};
use hesgx_nn::model_zoo::paper_cnn;
use hesgx_nn::quantize::{QuantPipeline, QuantizedCnn};
use hesgx_obs::Recorder;
use hesgx_tee::enclave::Platform;
use std::num::NonZeroUsize;
use std::time::Instant;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct ParPoint {
    /// Worker threads.
    pub threads: usize,
    /// End-to-end wall seconds (best of the repetitions).
    pub wall_s: f64,
    /// Per-stage wall seconds, in pipeline order.
    pub stage_s: Vec<f64>,
    /// Speedup vs. the 1-thread point.
    pub speedup: f64,
}

/// Sweep summary.
#[derive(Debug, Clone)]
pub struct ParSweep {
    /// One entry per pool size.
    pub points: Vec<ParPoint>,
    /// Whether every pool size produced bit-identical encrypted logits.
    pub bit_identical: bool,
    /// Cores the machine actually has (the speedup ceiling).
    pub available_cores: usize,
}

fn sweep_model(quick: bool) -> QuantizedCnn {
    if quick {
        // A reduced instance of the paper architecture: same layer types,
        // 16×16 input so a sweep point takes seconds, not minutes.
        QuantizedCnn {
            pipeline: QuantPipeline::Hybrid,
            in_side: 16,
            conv_out: 4,
            kernel: 5,
            window: 2,
            classes: 10,
            conv_weights: (0..4 * 25).map(|i| (i % 9) as i64 - 4).collect(),
            conv_bias: (0..4).map(|i| i * 3 - 5).collect(),
            fc_weights: (0..10 * 4 * 36).map(|i| (i % 7) as i64 - 3).collect(),
            fc_bias: (0..10).map(|i| i * 2 - 9).collect(),
            weight_scale: 8,
            fc_scale: 8,
            act_scale: 16,
        }
    } else {
        let mut rng = ChaChaRng::from_seed(7);
        let net = paper_cnn(ActivationKind::Sigmoid, PoolKind::Mean, &mut rng);
        QuantizedCnn::from_network(&net, QuantPipeline::Hybrid, 16, 32, 16)
    }
}

/// Runs the sweep and prints the table.
pub fn par_sweep(cfg: RunConfig) -> ParSweep {
    header("PAR SWEEP: work-stealing HE engine, serial vs parallel (not in the paper)");
    let available_cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let model = sweep_model(cfg.quick);
    let poly_degree = if cfg.quick { 512 } else { PAPER_POLY_DEGREE };
    let reps = cfg.reps(5);
    println!(
        "machine: {available_cores} core(s) | FV n = {poly_degree} | input {}×{} | best of {reps} reps per point",
        model.in_side, model.in_side
    );

    let thread_counts = [1usize, 2, 4, 8];
    let mut points: Vec<ParPoint> = Vec::new();
    // Reference logits per repetition index: consecutive inferences on one
    // service advance the enclave's ECALL stream counter, so rep r is only
    // comparable to rep r of another pool size, never to rep r+1.
    let mut reference_logits: Vec<Vec<hesgx_henn::crt::CrtCiphertext>> = Vec::new();
    let mut bit_identical = true;
    let mut stage_names: Vec<String> = Vec::new();

    let obs = Recorder::enabled();
    for &threads in &thread_counts {
        // Fresh, identically-seeded service per pool size: only the worker
        // count varies between sweep points.
        let (service, ceremony) = HybridInference::provision_with(
            Platform::new(7),
            model.clone(),
            ProvisionConfig {
                poly_degree,
                seed: 7,
                threads,
                recorder: obs.clone(),
                ..ProvisionConfig::default()
            },
        )
        .unwrap();
        let images: Vec<Vec<i64>> = (0..4)
            .map(|b| {
                (0..model.in_side * model.in_side)
                    .map(|p| ((p * 3 + b * 11) % 16) as i64)
                    .collect()
            })
            .collect();
        let enc = EncryptedMap::encrypt_images(
            service.system(),
            &images,
            model.in_side,
            &ceremony.public,
            &mut ChaChaRng::from_seed(70),
        )
        .unwrap();

        let mut best_wall = f64::INFINITY;
        let mut best_stages: Vec<f64> = Vec::new();
        for rep in 0..reps {
            let start = Instant::now();
            let (logits, metrics) = service.infer(&enc, EcallBatching::Batched).unwrap();
            let wall = start.elapsed().as_secs_f64();
            if wall < best_wall {
                best_wall = wall;
                best_stages = metrics
                    .stages
                    .iter()
                    .map(|s| s.wall.as_secs_f64())
                    .collect();
                stage_names = metrics.stages.iter().map(|s| s.name.clone()).collect();
            }
            match reference_logits.get(rep) {
                None => reference_logits.push(logits),
                Some(cts) => bit_identical &= &logits == cts,
            }
        }
        points.push(ParPoint {
            threads,
            wall_s: best_wall,
            stage_s: best_stages,
            speedup: 0.0,
        });
    }

    let serial = points[0].wall_s;
    for p in &mut points {
        p.speedup = serial / p.wall_s;
    }

    println!();
    println!("threads   total (s)   speedup   per-stage (s)");
    for p in &points {
        let stages = p
            .stage_s
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(" / ");
        println!(
            "{:>7}   {:9.3}   {:6.2}x   {stages}",
            p.threads, p.wall_s, p.speedup
        );
    }
    println!("stages: {}", stage_names.join(" / "));
    println!("encrypted logits bit-identical across all pool sizes: {bit_identical}");
    let best = points
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("non-empty sweep");
    println!(
        "best speedup {:.2}x at {} threads; the ceiling on this machine is its {} physical core(s){}",
        best.speedup,
        best.threads,
        available_cores,
        if available_cores == 1 {
            " — parallel ~= serial here by construction; run on a multi-core host to see the scaling"
        } else {
            ""
        }
    );

    if let Some(path) = crate::write_obs_snapshot("par_sweep", &obs) {
        println!("obs snapshot written to {}", path.display());
    }

    ParSweep {
        points,
        bit_identical,
        available_cores,
    }
}
