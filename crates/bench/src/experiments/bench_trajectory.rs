//! `bench_trajectory` — appends the current headline bench numbers as a
//! dated row to `results/bench_trajectory.md`, the longitudinal record of
//! how the hot-path wall times move across commits.
//!
//! Reads the *already written* artifacts (`target/bench/BENCH_ntt.json`,
//! `target/bench/BENCH_transcipher.json`) rather than re-running the
//! benches, so a trajectory entry always describes exactly the run that
//! produced the artifacts. Run `repro ntt_bench` and `repro transcipher`
//! first; this helper prints guidance and appends nothing when either
//! artifact is missing.
//!
//! Deliberately *not* part of `repro` run-all: it mutates a checked-in
//! results file and stamps a wall-clock date, both of which are commit-time
//! actions, not CI actions.

use super::{header, RunConfig};
use std::fmt::Write as _;
use std::path::Path;

/// What the helper did, for the caller and the integration tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryAppend {
    /// A dated section was appended to `results/bench_trajectory.md`.
    pub appended: bool,
    /// NTT tiers parsed out of `BENCH_ntt.json`.
    pub tiers: usize,
}

/// One parsed `ntt_bench` tier: `(n, p, cached_ns, reference_ns)` of the
/// negacyclic-multiply table.
type Tier = (u64, u64, u64, u64);

/// Finds `"key":<integer>` at or after `from` and parses the integer.
fn num_after(s: &str, key: &str, from: usize) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = s[from..].find(&needle)? + from + needle.len();
    let digits: String = s[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Pulls the negacyclic-multiply rows out of the `BENCH_ntt.json` text with
/// a string scan (the artifact writer is ours; the shape is fixed).
fn parse_ntt_tiers(json: &str) -> Vec<Tier> {
    let mut tiers = Vec::new();
    for chunk in json.split("{\"n\":").skip(1) {
        let digits: String = chunk.chars().take_while(char::is_ascii_digit).collect();
        let Ok(n) = digits.parse::<u64>() else {
            continue;
        };
        let Some(p) = num_after(chunk, "p", 0) else {
            continue;
        };
        let Some(neg) = chunk.find("\"negacyclic_multiply\":{") else {
            continue;
        };
        let (Some(cached), Some(reference)) = (
            num_after(chunk, "cached_ns", neg),
            num_after(chunk, "reference_ns", neg),
        ) else {
            continue;
        };
        tiers.push((n, p, cached, reference));
    }
    tiers
}

/// Days-since-epoch to civil `(year, month, day)` (Gregorian; Howard
/// Hinnant's `civil_from_days` algorithm, integer-only).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    let y = yoe as i64 + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

/// Today's date as `YYYY-MM-DD` from the system clock (the bench crate is
/// inside the wall-clock lint's allow list; trajectory rows are dated by
/// design — this file is the one place wall-clock dates are the point).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Appends the dated headline row; see the module docs for the contract.
pub fn bench_trajectory(_cfg: RunConfig) -> TrajectoryAppend {
    header("BENCH TRAJECTORY: append dated headline numbers to results/bench_trajectory.md");
    let ntt_path = Path::new("target/bench/BENCH_ntt.json");
    let tc_path = Path::new("target/bench/BENCH_transcipher.json");
    let Ok(ntt) = std::fs::read_to_string(ntt_path) else {
        println!(
            "missing {}; run `repro ntt_bench` first, then re-run bench_trajectory",
            ntt_path.display()
        );
        return TrajectoryAppend {
            appended: false,
            tiers: 0,
        };
    };
    let tiers = parse_ntt_tiers(&ntt);
    if tiers.is_empty() {
        println!(
            "no tiers parsed from {}; artifact malformed?",
            ntt_path.display()
        );
        return TrajectoryAppend {
            appended: false,
            tiers: 0,
        };
    }

    let mut section = String::new();
    let _ = writeln!(
        section,
        "\n## {} — `repro bench_trajectory` snapshot",
        today()
    );
    let _ = writeln!(
        section,
        "\n| n    | p     | mul cached (ns) | mul ref (ns) | speedup |"
    );
    let _ = writeln!(
        section,
        "|------|-------|-----------------|--------------|---------|"
    );
    let mut worst_permille = u64::MAX;
    for &(n, p, cached, reference) in &tiers {
        let permille = reference.saturating_mul(1000) / cached.max(1);
        worst_permille = worst_permille.min(permille);
        let _ = writeln!(
            section,
            "| {n:<4} | {p:<5} | {cached:<15} | {reference:<12} | {}.{:02}× |",
            permille / 1000,
            (permille % 1000) / 10
        );
    }
    let _ = writeln!(
        section,
        "\n- Headline: **{}.{:02}× worst-tier negacyclic speedup** (cached vs eager reference).",
        worst_permille / 1000,
        (worst_permille % 1000) / 10
    );
    match std::fs::read_to_string(tc_path) {
        Ok(tc) => {
            let fv = tc
                .find("\"ingress\":\"fv-ciphertext\"")
                .and_then(|at| num_after(&tc, "upload_bytes", at))
                .unwrap_or(0);
            let reduction = num_after(&tc, "reduction", 0).unwrap_or(0);
            let _ = writeln!(
                section,
                "- Transciphered ingress: FV upload {fv} bytes, reduction {reduction}× \
                 (from `BENCH_transcipher.json`)."
            );
        }
        Err(_) => {
            println!(
                "missing {}; transcipher line omitted (run `repro transcipher` to include it)",
                tc_path.display()
            );
        }
    }

    let out = Path::new("results/bench_trajectory.md");
    let existing = std::fs::read_to_string(out).unwrap_or_else(|_| {
        String::from("# Bench trajectory\n\nLongitudinal record of headline bench numbers.\n")
    });
    let appended = std::fs::write(out, existing + &section).is_ok();
    if appended {
        println!("appended {} tier rows to {}", tiers.len(), out.display());
        print!("{section}");
    } else {
        println!("could not write {}", out.display());
    }
    TrajectoryAppend {
        appended,
        tiers: tiers.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tiers_out_of_the_ntt_artifact_shape() {
        let json = "{\"experiment\":\"ntt_bench\",\"reps\":3,\"tiers\":[\
            {\"n\":256,\"p\":12289,\"forward\":{\"optimized_ns\":1,\"reference_ns\":2},\
            \"negacyclic_multiply\":{\"cached_ns\":3220,\"symmetric_lazy_ns\":4855,\
            \"reference_ns\":7094},\"product_checksum\":1},\
            {\"n\":1024,\"p\":65537,\"negacyclic_multiply\":{\"cached_ns\":13656,\
            \"symmetric_lazy_ns\":21740,\"reference_ns\":28949}}]}";
        let tiers = parse_ntt_tiers(json);
        assert_eq!(
            tiers,
            vec![(256, 12289, 3220, 7094), (1024, 65537, 13656, 28949)]
        );
    }

    #[test]
    fn tier_reference_ns_comes_from_the_negacyclic_table_not_forward() {
        let json = "{\"tiers\":[{\"n\":8,\"p\":17,\
            \"forward\":{\"optimized_ns\":1,\"reference_ns\":999},\
            \"negacyclic_multiply\":{\"cached_ns\":10,\"reference_ns\":20}}]}";
        assert_eq!(parse_ntt_tiers(json), vec![(8, 17, 10, 20)]);
    }

    #[test]
    fn civil_from_days_hits_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // Leap day.
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
    }
}
