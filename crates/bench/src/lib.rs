//! # hesgx-bench
//!
//! Benchmark harness and paper-reproduction driver.
//!
//! * Criterion benches (`benches/paper_tables.rs`, `benches/paper_figures.rs`)
//!   micro-benchmark every operation the paper's Tables I–V and Figures 3–6
//!   time.
//! * The `repro` binary regenerates each table and figure end to end and
//!   checks the paper's *shape claims* (who wins, ratios, crossovers) —
//!   see `EXPERIMENTS.md` for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod stats;

use hesgx_crypto::rng::ChaChaRng;
use hesgx_henn::crt::{CrtKeys, CrtPlainSystem};
use hesgx_obs::Recorder;
use hesgx_tee::cost::CostModel;
use hesgx_tee::enclave::{Enclave, EnclaveBuilder, Platform};
use std::path::PathBuf;
use std::sync::Arc;

/// Polynomial degree used throughout (the paper's n = 1024, §V-A).
pub const PAPER_POLY_DEGREE: usize = 1024;

/// Batch size used throughout (the paper's batchSize = 10, §V-B).
pub const PAPER_BATCH_SIZE: usize = 10;

/// A ready-made environment shared by the experiments: one platform, a
/// single-modulus FV system at the paper's degree, and keys. Enclaves are
/// minted per experiment via [`PaperEnv::build_enclave`].
pub struct PaperEnv {
    /// The simulated SGX platform.
    pub platform: Arc<Platform>,
    /// Single-modulus FV system at n = 1024 (t = 65537).
    pub sys: CrtPlainSystem,
    /// Keys for `sys`.
    // hesgx-lint: allow(secret-pub-api, reason = "bench harness plays the user role and legitimately holds the keys")
    pub keys: CrtKeys,
    /// Deterministic randomness for the experiment.
    pub rng: ChaChaRng,
    /// Observability recorder attached to every enclave this environment
    /// mints; the `repro` driver snapshots and resets it per experiment.
    pub obs: Recorder,
}

impl PaperEnv {
    /// Builds the environment (deterministic in `seed`).
    pub fn new(seed: u64) -> Self {
        let platform = Platform::new(seed);
        let sys = CrtPlainSystem::new(PAPER_POLY_DEGREE, &[65537]).expect("valid parameters");
        let mut rng = ChaChaRng::from_seed(seed).fork("paper-env");
        let keys = sys.generate_keys(&mut rng);
        PaperEnv {
            platform,
            sys,
            keys,
            rng,
            obs: Recorder::enabled(),
        }
    }

    /// Mints a fresh enclave on the platform; `fake` selects the zero-overhead
    /// `FakeSGX` control model.
    pub fn build_enclave(&self, name: &str, fake: bool) -> Enclave {
        let mut builder = EnclaveBuilder::new(name)
            .add_code(b"bench-enclave-v1")
            .heap_bytes(512 * 1024 * 1024)
            .seed(7);
        if fake {
            builder = builder.cost_model(CostModel::fake_sgx());
        }
        builder
            .recorder(self.obs.clone())
            .build(self.platform.clone())
    }

    /// Wraps this environment's keys in an [`hesgx_core::InferenceEnclave`].
    pub fn inference_enclave(&self, fake: bool) -> hesgx_core::InferenceEnclave {
        let name = if fake { "bench-fake" } else { "bench-real" };
        hesgx_core::InferenceEnclave::new(
            self.build_enclave(name, fake),
            self.keys.secret.clone(),
            self.keys.public.clone(),
            11,
        )
    }
}

/// Writes `recorder`'s deterministic snapshot to
/// `target/obs/<experiment>.json` and returns the path. A failed write is
/// reported on stdout and returns `None` — observability must never fail an
/// experiment run.
pub fn write_obs_snapshot(experiment: &str, recorder: &Recorder) -> Option<PathBuf> {
    write_obs_file(&format!("{experiment}.json"), &recorder.snapshot_json())
}

/// Writes arbitrary exporter output (Chrome trace JSON, Prometheus text) to
/// `target/obs/<file_name>` and returns the path. Same never-fail contract
/// as [`write_obs_snapshot`].
pub fn write_obs_file(file_name: &str, contents: &str) -> Option<PathBuf> {
    write_artifact(
        std::path::Path::new("target").join("obs"),
        file_name,
        contents,
    )
}

/// Writes a deterministic benchmark table (`BENCH_*.json`) to
/// `target/bench/<file_name>` and returns the path. Same never-fail contract
/// as [`write_obs_snapshot`] — CI archives these and diffs them across
/// reruns, so their contents must be integer-only modeled figures.
pub fn write_bench_file(file_name: &str, contents: &str) -> Option<PathBuf> {
    write_artifact(
        std::path::Path::new("target").join("bench"),
        file_name,
        contents,
    )
}

fn write_artifact(dir: PathBuf, file_name: &str, contents: &str) -> Option<PathBuf> {
    let path = dir.join(file_name);
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, contents.as_bytes())) {
        Ok(()) => Some(path),
        Err(e) => {
            println!("could not write {}: {e}", path.display());
            None
        }
    }
}
