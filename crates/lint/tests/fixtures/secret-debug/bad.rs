// Fixture: deriving Debug on a registry secret type must be flagged.

#[derive(Debug, Clone)]
pub struct SigningKey {
    sk: u64,
    pk: u64,
}

impl std::fmt::Display for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key")
    }
}
