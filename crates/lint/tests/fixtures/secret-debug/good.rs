// Fixture: a manual, redacting Debug impl is the sanctioned pattern, and
// deriving Debug on non-registry types is fine.

#[derive(Clone)]
pub struct SigningKey {
    sk: u64,
    pk: u64,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("pk", &self.pk)
            .field("sk", &"<redacted>")
            .finish()
    }
}

#[derive(Debug, Clone)]
pub struct PlainConfig {
    pub degree: usize,
}
