// Fixture: malformed and stale suppression markers are themselves
// diagnosed, independent of any rule scope.

// hesgx-lint: allow(enclave-panic)
pub fn missing_reason(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

// hesgx-lint: allow(no-such-rule, reason = "typo in the rule name")
pub fn unknown_rule() {}

// hesgx-lint: allow(secret-log, reason = "nothing is logged here at all")
pub fn stale_marker() {}
