// Fixture: format/log macros touching secret-named values, and dbg!.

pub fn trace_keys(secret_key: &[u8], count: usize) {
    println!("loaded {} keys: {:?}", count, secret_key);
    let msg = format!("sk bytes: {:?}", secret_key);
    dbg!(msg.len());
}
