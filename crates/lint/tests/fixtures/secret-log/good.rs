// Fixture: logging sizes and public metadata is fine; dbg! in tests is
// fine.

pub fn trace_keys(key_count: usize, byte_len: usize) {
    println!("loaded {key_count} keys ({byte_len} bytes)");
    let _msg = format!("{key_count} keys ready");
}

#[cfg(test)]
mod tests {
    #[test]
    fn debugging_in_tests_is_allowed() {
        dbg!(21 + 21);
    }
}
