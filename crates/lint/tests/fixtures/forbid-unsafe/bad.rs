// Fixture: an unsafe-free crate root without #![forbid(unsafe_code)].

pub fn safe_code(x: u64) -> u64 {
    x + 1
}
