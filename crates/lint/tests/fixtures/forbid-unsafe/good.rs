// Fixture: the crate root declares the forbid, locking unsafe out.

#![forbid(unsafe_code)]

pub fn safe_code(x: u64) -> u64 {
    x + 1
}
