//! Seeded defects: HashMap/HashSet iteration feeding serialized output.
//! Hash-iteration order varies across runs, so these bytes are not
//! replayable.

use std::collections::{HashMap, HashSet};

fn render_counters(counters: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in counters.iter() {
        // finding: unordered-iter (sink-named fn, tagged `.iter()`)
        out.push_str(&format!("{name}={value};"));
    }
    out
}

fn summarize(map: &HashMap<String, u64>) -> String {
    let mut s = String::new();
    for v in map.values() {
        // finding: unordered-iter (body calls push_str, a sink)
        s.push_str(&v.to_string());
    }
    s
}

fn export_labels(set: &HashSet<String>) -> String {
    let mut out = String::new();
    for label in set {
        // finding: unordered-iter (for-in over a tagged set in a sink fn)
        out.push_str(label);
    }
    out
}
