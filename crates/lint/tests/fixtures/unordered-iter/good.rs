//! Clean counterpart: ordered containers feed the serializers; hash
//! containers are only used for point lookups or away from exported bytes.

use std::collections::{BTreeMap, HashMap};

fn render_counters(counters: &BTreeMap<String, u64>) -> String {
    // BTreeMap iterates in key order — deterministic by construction.
    let mut out = String::new();
    for (name, value) in counters.iter() {
        out.push_str(&format!("{name}={value};"));
    }
    out
}

fn lookup(map: &HashMap<String, u64>, key: &str) -> u64 {
    // Point operations never observe iteration order.
    map.get(key).copied().unwrap_or(0)
}

fn total(map: &HashMap<String, u64>) -> u64 {
    // Iteration is fine when the fold is order-insensitive and nothing
    // here feeds serialized bytes.
    map.values().sum()
}
