// Fixture: labels named after pipeline stages and public operations are
// fine, as are secret-named bindings on lines that record nothing. Trace
// events and gauge/histogram names are held to the same standard: stage
// paths and public metadata only.

pub fn record_costs(rec: &Recorder, cost: SpanCost, attempts: u64) {
    rec.record_span("infer.layer[1].ecall", cost);
    rec.record_zero_attempt("recovery.retry");
    rec.incr("recovery.attempts", attempts); // the count is public metadata
}

pub fn record_telemetry(rec: &Recorder, bits: u32, bytes: u64) {
    rec.trace_begin("session.request", &[("api", "infer_batch".to_string())]);
    rec.trace_instant("epc.load", &[("page", 7.to_string())]);
    rec.gauge("noise.budget.layer[3].pre", u64::from(bits)); // bit-count only
    rec.observe("ecall.bytes", bytes);
    rec.trace_end("session.request");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_labels_are_exempt() {
        let rec = Recorder::enabled();
        rec.incr("sk", 1);
        rec.trace_begin("sk", &[]);
    }
}
