// Fixture: labels named after pipeline stages and public operations are
// fine, as are secret-named bindings on lines that record nothing.

pub fn record_costs(rec: &Recorder, cost: SpanCost, attempts: u64) {
    rec.record_span("infer.layer[1].ecall", cost);
    rec.record_zero_attempt("recovery.retry");
    rec.incr("recovery.attempts", attempts); // the count is public metadata
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_labels_are_exempt() {
        let rec = Recorder::enabled();
        rec.incr("sk", 1);
    }
}
