// Fixture: secret-bearing identifiers in obs span/counter labels — the
// label literal, a formatted binding, and a registry type name.

pub fn record_costs(rec: &Recorder, cost: SpanCost) {
    rec.record_span("seal.secret_key", cost);
    rec.record_zero_attempt("SealedBlob.open");
    rec.incr("private_key.uses", 1);
}
