// Fixture: secret-bearing identifiers in obs span/counter labels — the
// label literal, a formatted binding, and a registry type name — plus the
// PR-5 exported surfaces: trace-event names/args (Chrome trace JSON) and
// gauge/histogram names (Prometheus label values).

pub fn record_costs(rec: &Recorder, cost: SpanCost) {
    rec.record_span("seal.secret_key", cost);
    rec.record_zero_attempt("SealedBlob.open");
    rec.incr("private_key.uses", 1);
}

pub fn record_telemetry(rec: &Recorder, secret_key: u64) {
    rec.trace_begin("seal.secret_key", &[]);
    rec.trace_instant("epc.load", &[("key", secret_key.to_string())]);
    rec.trace_end("seal.secret_key");
    rec.gauge("private_key.bits", 62);
    rec.observe("SealedBlob.bytes", 4096);
}
