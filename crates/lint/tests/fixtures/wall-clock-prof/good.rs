//! Clean counterpart: the profiler file itself (`crates/obs/src/prof.rs`)
//! is on the `wall-clock` allow list — it sits below `hesgx-tee`, so it
//! cannot route through the `WallTimer` shim without a dependency cycle,
//! and its wall numbers are quarantined to non-deterministic exports
//! (DESIGN.md §18). The self-test scans this file under the prof.rs path
//! and expects no `wall-clock` finding.

use std::time::Instant;

pub struct SpanGuard {
    started: Instant,
}

pub fn open_span() -> SpanGuard {
    SpanGuard {
        started: Instant::now(), // sanctioned: prof.rs is the audited reader
    }
}

pub fn close_span(guard: SpanGuard) -> u64 {
    guard.started.elapsed().as_nanos() as u64
}
