//! Seeded defect: the profiler's wall-clock exemption is *file*-scoped to
//! `crates/obs/src/prof.rs` — the same raw clock read anywhere else in the
//! obs crate must still fire. The self-test scans this file under a
//! non-exempt obs path and expects a `wall-clock` finding.

use std::time::Instant;

pub fn observe_wall_ns() -> u64 {
    let t0 = Instant::now(); // finding: wall-clock (outside prof.rs)
    t0.elapsed().as_nanos() as u64
}
