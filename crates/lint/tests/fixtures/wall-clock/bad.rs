//! Seeded defects: raw clock reads outside the audited wall module.
//! Wall time that reaches exported bytes breaks the replay contract.

use std::time::{Instant, SystemTime};

fn stamp_attempt() -> u128 {
    let t0 = Instant::now(); // finding: wall-clock
    t0.elapsed().as_nanos()
}

fn seed_material() -> u64 {
    let now = SystemTime::now(); // finding: wall-clock
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
