//! Clean counterpart: wall time flows through the audited `WallTimer`
//! accessor, which the `wall-clock` rule's path allowlist sanctions, and
//! never reaches exported bytes.

use hesgx_tee::wall::WallTimer;

fn stamp_attempt() -> u128 {
    let timer = WallTimer::start();
    timer.elapsed_ns() as u128
}

fn virtual_clock(step: u64, ticks: u64) -> u64 {
    // Deterministic virtual time: a pure function of the schedule.
    step * ticks
}
