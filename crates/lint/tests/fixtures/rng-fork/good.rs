//! Clean counterpart: each attempt forks a child stream from the base
//! generator, so attempt N's randomness is a pure function of (seed,
//! attempt) no matter how many draws earlier attempts consumed.

use hesgx_crypto::rng::ChaChaRng;

fn reprovision_with_backoff(base: &ChaChaRng) -> u64 {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut local = base.fork(b"reprovision-attempt");
        let noise = local.next_u64(); // fine: `local` is bound inside the attempt
        if noise != 0 || attempt > 3 {
            return noise;
        }
    }
}

fn rejection_sample(rng: &mut ChaChaRng, bound: u64) -> u64 {
    // Not a retry loop: rejection sampling legitimately draws from the
    // caller's stream until a candidate lands under the bound.
    loop {
        let candidate = rng.next_u64();
        if candidate < bound {
            return candidate;
        }
    }
}
