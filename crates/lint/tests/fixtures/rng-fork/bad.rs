//! Seeded defects: drawing from an outside-bound ChaChaRng inside a retry
//! body. Attempt N's randomness then depends on how many draws attempt
//! N-1 consumed — the PR 4 replay-divergence bug class.

use hesgx_crypto::rng::ChaChaRng;

fn reprovision_with_backoff(base: &mut ChaChaRng) -> u64 {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let noise = base.next_u64(); // finding: rng-fork (shared stream advanced per attempt)
        if noise != 0 || attempt > 3 {
            return noise;
        }
    }
}

fn resilient_encrypt(base: &mut ChaChaRng, payload: &[u8]) -> u64 {
    retry_with_cost(3, payload, base.next_u64()) // finding: rng-fork (draw inside a retry call)
}
