// Fixture: ECALL-surface functions either return a CostBreakdown or carry
// a justified allow for cost-free accessors.

pub fn refresh_ciphertext(ct: &Ciphertext) -> Result<(Ciphertext, CostBreakdown)> {
    run_ecall(ct)
}

// hesgx-lint: allow(ecall-cost, reason = "accessor; performs no enclave computation")
pub fn measurement(&self) -> [u8; 32] {
    self.mr
}

fn helper(ct: &Ciphertext) -> Ciphertext {
    ct.clone()
}
