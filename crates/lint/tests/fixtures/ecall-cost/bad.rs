// Fixture: an ECALL-surface pub fn that does not charge the cost model.

pub fn refresh_ciphertext(ct: &Ciphertext) -> Result<Ciphertext> {
    run_ecall(ct)
}
