//! Seeded defects: secret material laundered through innocuously named
//! aliases before being formatted. The dataflow pass propagates the
//! registry-type tag through `let` chains and tag-preserving methods, so
//! renaming a secret does not sanitize it.

use hesgx_bfv::keys::SecretKey;
use hesgx_tee::seal::SealedBlob;

fn audit(key: &SecretKey) {
    let material = key.clone();
    println!("session material: {:?}", material); // finding: secret-log (alias of SecretKey)
}

fn relay(blob: &SealedBlob) {
    let payload = blob;
    let envelope = payload;
    eprintln!("shipping {:?}", envelope); // finding: secret-log (alias chain of SealedBlob)
}
