//! Clean counterpart: only public facts derived from the secret — never
//! the secret or an alias of it — reach a format macro, and a rebinding
//! through a non-preserving call drops the taint.

use hesgx_bfv::keys::SecretKey;

fn audit(key: &SecretKey) {
    let len = key.byte_len();
    println!("sealed payload: {len} bytes"); // fine: a usize, not the key
}

fn rotate(key: &SecretKey) {
    let material = key.clone();
    let material = material.byte_len(); // shadowing rebind: the tag dies here
    eprintln!("rotated, {material} bytes");
}
