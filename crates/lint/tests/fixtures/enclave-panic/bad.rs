// Fixture: panics inside enclave-scoped code must be flagged.

pub fn ecall_transform(values: &mut Vec<u64>) -> u64 {
    let first = values.pop().unwrap();
    let second = values.pop().expect("at least two values");
    if first == 0 {
        panic!("zero input");
    }
    if second == 0 {
        todo!();
    }
    first + second
}
