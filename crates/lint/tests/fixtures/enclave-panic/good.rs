// Fixture: enclave code that propagates errors instead of panicking.
// Mentions of .unwrap() in comments, doc comments, strings, and test
// modules must not trip the rule.

/// Never call `.unwrap()` on attacker-influenced data.
pub fn ecall_transform(values: &mut Vec<u64>) -> Result<u64, &'static str> {
    let first = values.pop().ok_or("missing first value")?;
    let second = values.pop().ok_or("missing second value")?;
    let note = "this string says panic!(now) and means nothing";
    let fallback = values.pop().unwrap_or(0);
    let _ = (note, fallback);
    Ok(first + second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms() {
        let mut v = vec![1, 2];
        assert_eq!(ecall_transform(&mut v).unwrap(), 3);
    }
}
