//! Clean counterpart: `Session::serve` carries every request, and `infer`
//! on a non-Session engine is a different, legitimate API.

use hesgx_core::session::Session;

fn classify(session: &Session, image: &[i64]) {
    let request = InferRequest::single(image.to_vec());
    let response = session.serve(request);
    consume(response);
}

fn hybrid(engine: &HybridInference, image: &[i64]) {
    // `CryptoNetsHE::infer` / `HybridInference::infer` keep the name; only
    // the Session shims are deprecated.
    engine.infer(image);
}
