//! Seeded defects: calls to the deprecated `Session` inference shims.
//! `Session::serve` is the one request/response entry point; the shims
//! only forward there and will be removed.

use hesgx_core::session::{Session, SessionBuilder};

fn classify(session: &Session, image: &[i64]) {
    session.infer(image); // finding: deprecated-api
}

fn warm_up(cfg: Config) {
    let session = SessionBuilder::new(cfg).build();
    session.infer_batch(&images()); // finding: deprecated-api
}
