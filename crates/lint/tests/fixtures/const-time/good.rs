// Fixture: constant-time comparison via ct_eq, and == over public values.

pub fn verify(tag: &[u8], expected_tag: &[u8]) -> bool {
    crate::ct::ct_eq(tag, expected_tag)
}

pub fn same_shape(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
}

pub fn classify(kind: u8) -> &'static str {
    match kind {
        0 => "fresh",
        _ => "other",
    }
}
