// Fixture: variable-time comparison of secret-derived bytes.

pub fn verify(tag: &[u8], expected_tag: &[u8]) -> bool {
    tag == expected_tag
}

pub fn check_mac(computed_mac: [u8; 32], stored: [u8; 32]) -> bool {
    if computed_mac != stored {
        return false;
    }
    true
}
