//! Seeded defects: per-iteration allocation inside the loops of a
//! `hot`-marked function. On the conv/FC/NTT paths this multiplies by
//! cells × CRT limbs and lands straight in the ECALL cost model.

// hesgx-lint: hot
fn accumulate_rows(rows: &[Vec<u64>]) -> Vec<u64> {
    let mut out = Vec::new();
    for row in rows {
        let scratch = row.to_vec(); // finding: hot-path-alloc
        let doubled: Vec<u64> = scratch.iter().map(|v| v * 2).collect(); // finding: hot-path-alloc
        out.push(doubled[0]);
    }
    out
}
