//! Clean counterpart: buffers are hoisted out of the hot loops and reused;
//! unmarked functions are free to allocate (the marker is an opt-in
//! contract).

// hesgx-lint: hot
fn accumulate_rows(rows: &[Vec<u64>]) -> Vec<u64> {
    let mut out = Vec::with_capacity(rows.len());
    let mut scratch = vec![0u64; 4]; // hoisted: allocated once, outside the loop
    for row in rows {
        scratch[0] = row[0] * 2;
        out.push(scratch[0]);
    }
    out
}

fn setup_tables(rows: &[Vec<u64>]) -> Vec<Vec<u64>> {
    // Unmarked cold path: allocation per iteration is acceptable here.
    let mut tables = Vec::new();
    for row in rows {
        tables.push(row.to_vec());
    }
    tables
}

// hesgx-lint: hot
fn accumulate_with_arena(rows: &[Vec<u64>], arena: &PolyArena) -> Vec<u64> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        // Arena borrows recycle pooled buffers — not allocations: the
        // handle clone bumps an Arc and copy_poly draws from the free list.
        let handle = arena.clone();
        let scratch = handle.copy_poly(row);
        out.push(scratch[0]);
    }
    out
}
