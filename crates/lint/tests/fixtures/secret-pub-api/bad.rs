// Fixture: secret key material crossing a public API outside the
// sanctioned modules must be flagged (both signatures and fields).

pub fn export_key(slot: usize) -> SecretKey {
    lookup(slot)
}

pub struct Harness {
    pub keys: CrtKeys,
}
