// Fixture: crate-private signatures, unrestricted handle types, and
// non-registry types in public APIs are all fine.

pub(crate) fn secret_keys(slot: usize) -> SecretKey {
    lookup(slot)
}

pub fn rng_handle(rng: &mut ChaChaRng) -> u64 {
    rng.next_u64()
}

pub fn public_half(slot: usize) -> PublicKey {
    lookup_public(slot)
}

pub struct Harness {
    keys: CrtKeys,
}
