// Fixture: unsafe with the invariant documented directly above.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *bytes.as_ptr() }
}
