//! Self-test corpus: every rule must fire on its `bad.rs` fixture and stay
//! silent on its `good.rs` fixture, and the live workspace must lint clean.

use hesgx_lint::diag::Report;
use hesgx_lint::lexer::SourceFile;
use hesgx_lint::lint_sources;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Lints one fixture file, keyed by its path relative to the workspace so
/// the `fixtures/<rule>` scopes in the config match.
fn lint_fixture(rule: &str, which: &str) -> Report {
    let path = fixture_dir().join(rule).join(which);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let rel = format!("crates/lint/tests/fixtures/{rule}/{which}");
    lint_sources(&[SourceFile::scan(&rel, &text)])
}

/// `(fixture_dir, rule_id)` — most directories are named after their rule;
/// `secret-taint` exercises the dataflow-alias upgrade to `secret-log`.
const RULES: &[(&str, &str)] = &[
    ("enclave-panic", "enclave-panic"),
    ("secret-debug", "secret-debug"),
    ("secret-pub-api", "secret-pub-api"),
    ("secret-log", "secret-log"),
    ("const-time", "const-time"),
    ("unsafe-safety", "unsafe-safety"),
    ("forbid-unsafe", "forbid-unsafe"),
    ("ecall-cost", "ecall-cost"),
    ("obs-secret-label", "obs-secret-label"),
    ("wall-clock", "wall-clock"),
    ("unordered-iter", "unordered-iter"),
    ("rng-fork", "rng-fork"),
    ("secret-taint", "secret-log"),
    ("hot-path-alloc", "hot-path-alloc"),
    ("deprecated-api", "deprecated-api"),
];

#[test]
fn every_bad_fixture_triggers_its_rule() {
    for (dir, rule) in RULES {
        let report = lint_fixture(dir, "bad.rs");
        assert!(
            report.findings.iter().any(|d| d.rule == *rule),
            "fixture {dir}/bad.rs produced no `{rule}` finding; got: {:?}",
            report.findings
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for (dir, _) in RULES {
        let report = lint_fixture(dir, "good.rs");
        assert!(
            report.is_clean(),
            "fixture {dir}/good.rs should be clean; got: {:?}",
            report.findings
        );
    }
}

#[test]
fn bad_fixtures_report_expected_counts() {
    // Spot-check that rules find *all* the seeded defects, not just one.
    let panic_report = lint_fixture("enclave-panic", "bad.rs");
    assert_eq!(
        panic_report
            .findings
            .iter()
            .filter(|d| d.rule == "enclave-panic")
            .count(),
        4,
        "unwrap + expect + panic! + todo!"
    );
    let log_report = lint_fixture("secret-log", "bad.rs");
    assert_eq!(
        log_report
            .findings
            .iter()
            .filter(|d| d.rule == "secret-log")
            .count(),
        3,
        "println + format + dbg"
    );
    let debug_report = lint_fixture("secret-debug", "bad.rs");
    assert_eq!(
        debug_report
            .findings
            .iter()
            .filter(|d| d.rule == "secret-debug")
            .count(),
        2,
        "derive(Debug) + impl Display"
    );
}

#[test]
fn dataflow_bad_fixtures_report_expected_counts() {
    let count = |dir: &str, rule: &str| {
        lint_fixture(dir, "bad.rs")
            .findings
            .iter()
            .filter(|d| d.rule == rule)
            .count()
    };
    assert_eq!(count("wall-clock", "wall-clock"), 2, "Instant + SystemTime");
    assert_eq!(
        count("unordered-iter", "unordered-iter"),
        3,
        "named sink + body sink + for-in header"
    );
    assert_eq!(count("rng-fork", "rng-fork"), 2, "retry loop + retry call");
    assert_eq!(
        count("secret-taint", "secret-log"),
        2,
        "clone alias + let chain"
    );
    assert_eq!(
        count("hot-path-alloc", "hot-path-alloc"),
        2,
        "to_vec + collect"
    );
    assert_eq!(
        count("deprecated-api", "deprecated-api"),
        2,
        "param session + builder-bound session"
    );
}

#[test]
fn taint_findings_name_the_alias_and_the_registry_type() {
    let report = lint_fixture("secret-taint", "bad.rs");
    assert!(
        report
            .findings
            .iter()
            .any(|d| d.message.contains("`material`") && d.message.contains("`SecretKey`")),
        "{:?}",
        report.findings
    );
}

#[test]
fn suppression_fixture_diagnoses_all_marker_defects() {
    let report = lint_fixture("suppression", "bad.rs");
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|d| d.rule == "suppression")
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("no reason")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unknown rule")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("suppresses nothing")),
        "{msgs:?}"
    );
}

#[test]
fn ecall_good_fixture_exercises_a_used_suppression() {
    let report = lint_fixture("ecall-cost", "good.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 1, "the accessor allow must be consumed");
}

#[test]
fn findings_carry_location_rule_and_hint() {
    let report = lint_fixture("enclave-panic", "bad.rs");
    let d = &report.findings[0];
    assert!(d.file.ends_with("enclave-panic/bad.rs"));
    assert!(d.line > 0);
    assert!(!d.hint.is_empty());
}

#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let paths = hesgx_lint::collect_workspace_files(&root).expect("walk workspace");
    assert!(
        paths.len() > 40,
        "expected the full workspace, got {} files",
        paths.len()
    );
    let files: Vec<SourceFile> = paths
        .iter()
        .map(|p| hesgx_lint::load_file(&root, p).expect("readable source"))
        .collect();
    let report = lint_sources(&files);
    assert!(
        report.is_clean(),
        "the workspace must lint clean:\n{}",
        report.render_human()
    );
    assert!(
        report.suppressed >= 10,
        "the documented inline allows should be active, got {}",
        report.suppressed
    );
}

#[test]
fn json_report_round_trips_key_fields() {
    let report = lint_fixture("const-time", "bad.rs");
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"const-time\""));
    assert!(json.contains("\"suppressed\": 0"));
    assert!(json.contains("bad.rs"));
}

#[test]
fn workspace_json_and_sarif_are_byte_deterministic() {
    // Two fully independent passes over the live tree must serialize to
    // identical bytes — the property `ci.sh` gates with a binary-level diff.
    let root = workspace_root();
    let render = || {
        let paths = hesgx_lint::collect_workspace_files(&root).expect("walk workspace");
        let files: Vec<SourceFile> = paths
            .iter()
            .map(|p| hesgx_lint::load_file(&root, p).expect("readable source"))
            .collect();
        let report = lint_sources(&files);
        (
            report.render_json(),
            hesgx_lint::sarif::render_sarif(&report),
        )
    };
    let (json_a, sarif_a) = render();
    let (json_b, sarif_b) = render();
    assert_eq!(json_a, json_b, "--json must be byte-stable across runs");
    assert_eq!(sarif_a, sarif_b, "--sarif must be byte-stable across runs");
}

#[test]
fn stale_suppressions_are_itemized_in_json() {
    let src = "fn f() {\n    // hesgx-lint: allow(enclave-panic, reason = \"nothing here\")\n    let x = 1;\n}\n";
    let report = lint_sources(&[SourceFile::scan("crates/tee/src/x.rs", src)]);
    assert_eq!(report.stale.len(), 1);
    let json = report.render_json();
    assert!(json.contains("\"stale_suppressions\": ["));
    assert!(json.contains("\"rule\": \"enclave-panic\""));
    assert!(json.contains("\"stale_count\": 1"));
}

#[test]
fn wall_clock_exemption_is_scoped_to_the_profiler_file() {
    // The profiler's wall-clock exemption (`WALL_OK_PATHS`) is file-scoped:
    // the fixture pair is scanned under *remapped* workspace paths (not the
    // fixtures/ directory, which the RULES table covers) so the test proves
    // the boundary itself — the same tokens are clean at prof.rs and a
    // finding one file over.
    let dir = fixture_dir().join("wall-clock-prof");
    let read = |which: &str| {
        let path = dir.join(which);
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    };
    let good = read("good.rs");
    let report = lint_sources(&[SourceFile::scan("crates/obs/src/prof.rs", &good)]);
    assert!(
        report.findings.iter().all(|d| d.rule != "wall-clock"),
        "prof.rs is on the wall-clock allow list; got: {:?}",
        report.findings
    );
    // The identical sanctioned pattern leaks nowhere else in the obs crate…
    let report = lint_sources(&[SourceFile::scan("crates/obs/src/hist.rs", &good)]);
    assert!(
        report.findings.iter().any(|d| d.rule == "wall-clock"),
        "the exemption must not cover the rest of crates/obs"
    );
    // …and the seeded defect fires under a non-exempt path as usual.
    let bad = read("bad.rs");
    let report = lint_sources(&[SourceFile::scan("crates/obs/src/export.rs", &bad)]);
    assert!(
        report.findings.iter().any(|d| d.rule == "wall-clock"),
        "bad fixture must fire outside prof.rs; got: {:?}",
        report.findings
    );
}

#[test]
fn baseline_roundtrip_grandfathers_current_findings() {
    // Render the bad fixture's findings as a baseline, re-lint with it
    // applied: everything is grandfathered and the report turns clean.
    let mut report = lint_fixture("wall-clock", "bad.rs");
    let n = report.findings.len();
    assert!(n > 0);
    let text = hesgx_lint::baseline::render(&report);
    let entries = hesgx_lint::baseline::parse(&text).expect("well-formed baseline");
    hesgx_lint::baseline::apply(&mut report, &entries);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.grandfathered, n);
    // A *new* finding (not in the baseline) still fails.
    let mut fresh = lint_fixture("rng-fork", "bad.rs");
    hesgx_lint::baseline::apply(&mut fresh, &entries);
    assert!(!fresh.is_clean());
}
