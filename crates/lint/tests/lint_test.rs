//! Self-test corpus: every rule must fire on its `bad.rs` fixture and stay
//! silent on its `good.rs` fixture, and the live workspace must lint clean.

use hesgx_lint::diag::Report;
use hesgx_lint::lexer::SourceFile;
use hesgx_lint::lint_sources;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Lints one fixture file, keyed by its path relative to the workspace so
/// the `fixtures/<rule>` scopes in the config match.
fn lint_fixture(rule: &str, which: &str) -> Report {
    let path = fixture_dir().join(rule).join(which);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let rel = format!("crates/lint/tests/fixtures/{rule}/{which}");
    lint_sources(&[SourceFile::scan(&rel, &text)])
}

const RULES: &[&str] = &[
    "enclave-panic",
    "secret-debug",
    "secret-pub-api",
    "secret-log",
    "const-time",
    "unsafe-safety",
    "forbid-unsafe",
    "ecall-cost",
    "obs-secret-label",
];

#[test]
fn every_bad_fixture_triggers_its_rule() {
    for rule in RULES {
        let report = lint_fixture(rule, "bad.rs");
        assert!(
            report.findings.iter().any(|d| d.rule == *rule),
            "fixture {rule}/bad.rs produced no `{rule}` finding; got: {:?}",
            report.findings
        );
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for rule in RULES {
        let report = lint_fixture(rule, "good.rs");
        assert!(
            report.is_clean(),
            "fixture {rule}/good.rs should be clean; got: {:?}",
            report.findings
        );
    }
}

#[test]
fn bad_fixtures_report_expected_counts() {
    // Spot-check that rules find *all* the seeded defects, not just one.
    let panic_report = lint_fixture("enclave-panic", "bad.rs");
    assert_eq!(
        panic_report
            .findings
            .iter()
            .filter(|d| d.rule == "enclave-panic")
            .count(),
        4,
        "unwrap + expect + panic! + todo!"
    );
    let log_report = lint_fixture("secret-log", "bad.rs");
    assert_eq!(
        log_report
            .findings
            .iter()
            .filter(|d| d.rule == "secret-log")
            .count(),
        3,
        "println + format + dbg"
    );
    let debug_report = lint_fixture("secret-debug", "bad.rs");
    assert_eq!(
        debug_report
            .findings
            .iter()
            .filter(|d| d.rule == "secret-debug")
            .count(),
        2,
        "derive(Debug) + impl Display"
    );
}

#[test]
fn suppression_fixture_diagnoses_all_marker_defects() {
    let report = lint_fixture("suppression", "bad.rs");
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|d| d.rule == "suppression")
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs.iter().any(|m| m.contains("no reason")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unknown rule")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("suppresses nothing")),
        "{msgs:?}"
    );
}

#[test]
fn ecall_good_fixture_exercises_a_used_suppression() {
    let report = lint_fixture("ecall-cost", "good.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 1, "the accessor allow must be consumed");
}

#[test]
fn findings_carry_location_rule_and_hint() {
    let report = lint_fixture("enclave-panic", "bad.rs");
    let d = &report.findings[0];
    assert!(d.file.ends_with("enclave-panic/bad.rs"));
    assert!(d.line > 0);
    assert!(!d.hint.is_empty());
}

#[test]
fn live_workspace_lints_clean() {
    let root = workspace_root();
    let paths = hesgx_lint::collect_workspace_files(&root).expect("walk workspace");
    assert!(
        paths.len() > 40,
        "expected the full workspace, got {} files",
        paths.len()
    );
    let files: Vec<SourceFile> = paths
        .iter()
        .map(|p| hesgx_lint::load_file(&root, p).expect("readable source"))
        .collect();
    let report = lint_sources(&files);
    assert!(
        report.is_clean(),
        "the workspace must lint clean:\n{}",
        report.render_human()
    );
    assert!(
        report.suppressed >= 10,
        "the documented inline allows should be active, got {}",
        report.suppressed
    );
}

#[test]
fn json_report_round_trips_key_fields() {
    let report = lint_fixture("const-time", "bad.rs");
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"const-time\""));
    assert!(json.contains("\"suppressed\": 0"));
    assert!(json.contains("bad.rs"));
}
