//! SARIF 2.1.0 export (hand-rolled; no dependencies).
//!
//! One run, one driver (`hesgx-lint`), the full rule table as
//! `reportingDescriptor`s, and one `result` per finding. The output is a
//! pure function of the report: findings are already stable-sorted by
//! `Report::sort`, and the rules table comes from the static config, so
//! two runs over the same tree produce byte-identical SARIF — CI uploads
//! it as an artifact and diffs it across runs like every other exported
//! byte stream in this workspace.

use crate::config::RULE_DESCRIPTIONS;
use crate::diag::{json_str, Report};

/// Renders `report` as a SARIF 2.1.0 JSON document.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"hesgx-lint\",\n          \"informationUri\": \"https://example.invalid/hesgx\",\n          \"rules\": [",
    );
    for (i, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(id),
            json_str(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_str(d.rule),
            json_str(&format!("{} (hint: {})", d.message, d.hint)),
            json_str(&d.file),
            d.line
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn sample() -> Report {
        Report {
            findings: vec![Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "wall-clock",
                message: "raw clock read".into(),
                hint: "use WallTimer".into(),
            }],
            ..Report::default()
        }
    }

    #[test]
    fn sarif_has_schema_version_and_result() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"wall-clock\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\"uri\": \"crates/x/src/lib.rs\""));
    }

    #[test]
    fn every_rule_id_is_described() {
        let s = render_sarif(&Report::default());
        for id in crate::config::RULE_IDS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
    }

    #[test]
    fn sarif_is_deterministic() {
        assert_eq!(render_sarif(&sample()), render_sarif(&sample()));
    }
}
