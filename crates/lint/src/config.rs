//! Rule configuration: the secret-type registry and the path scopes that
//! bind each rule to the part of the workspace where its invariant lives.
//!
//! Paths are matched by normalized substring (`/`-separated), so entries
//! work both for workspace files (`crates/tee/src/enclave.rs`) and for the
//! fixture corpus (`crates/lint/tests/fixtures/enclave-panic/bad.rs`).

/// One entry in the secret-bearing type registry.
pub struct SecretType {
    /// The exact type identifier.
    pub name: &'static str,
    /// Whether `#[derive(Debug)]` / `impl Display` on this type is banned
    /// (types whose fields redact via manual `Debug` impls set this false).
    pub no_debug: bool,
    /// Where the type may appear in `pub` signatures / `pub` fields:
    /// `Some(paths)` restricts to files matching one of the substrings;
    /// `None` means the type is unrestricted in public APIs (opaque handles
    /// whose Debug is still sensitive).
    pub pub_sig_allowed: Option<&'static [&'static str]>,
}

/// The registry of secret-bearing types (ISSUE: secret-hygiene rule).
///
/// The `pub_sig_allowed` lists trace the paper's trust boundary: secret key
/// material may cross public APIs only where the enclave wrapper or the
/// user-side key ceremony legitimately handles it.
pub const SECRET_TYPES: &[SecretType] = &[
    SecretType {
        name: "SecretKey",
        no_debug: true,
        pub_sig_allowed: Some(&[
            "crates/bfv/src",
            "crates/tee/src",
            "crates/core/src/sgx_ops.rs",
            "crates/core/src/keydist.rs",
            "crates/henn/src/crt.rs",
        ]),
    },
    SecretType {
        name: "EvaluationKeys",
        no_debug: true,
        // Relinearization keys are evaluation material handed to the HE
        // compute layer by design (they cannot decrypt); hesgx-henn is that
        // layer. They still must not be Debug-dumped.
        pub_sig_allowed: Some(&["crates/bfv/src", "crates/henn/src"]),
    },
    SecretType {
        name: "KeyGenerator",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "CrtKeys",
        // CrtKeys aggregates SecretKey values whose Debug impls redact, so
        // deriving Debug on the aggregate is safe.
        no_debug: false,
        pub_sig_allowed: Some(&[
            "crates/henn/src/crt.rs",
            "crates/henn/src/lib.rs",
            "crates/core/src/keydist.rs",
            "crates/core/src/sgx_ops.rs",
        ]),
    },
    SecretType {
        name: "KeyCeremonyPublic",
        no_debug: false,
        // The ceremony result is what the *user* receives over the attested
        // channel; the provisioning pipeline and Session API hand it out.
        pub_sig_allowed: Some(&[
            "crates/core/src/keydist.rs",
            "crates/core/src/pipeline.rs",
            "crates/core/src/session.rs",
        ]),
    },
    SecretType {
        name: "IngressKey",
        // Both halves (ChaCha20 + HMAC keys) redact via a manual Debug impl.
        no_debug: true,
        // The transcipher ingress key crosses exactly the paths of the
        // client → enclave upload: derivation, client-side sealing, the
        // ECALL wrapper, and the Session entry point.
        pub_sig_allowed: Some(&[
            "crates/crypto/src/transcipher.rs",
            "crates/core/src/keydist.rs",
            "crates/core/src/sgx_ops.rs",
            "crates/core/src/ingress.rs",
            "crates/core/src/session.rs",
        ]),
    },
    SecretType {
        name: "SigningKey",
        no_debug: true,
        pub_sig_allowed: Some(&["crates/crypto/src/schnorr.rs", "crates/tee/src"]),
    },
    SecretType {
        name: "ChaChaRng",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "Platform",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "QuotingEnclave",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "SealedBlob",
        no_debug: true,
        pub_sig_allowed: None,
    },
];

/// Files holding enclave-resident code, where panics abort the ECALL
/// (`enclave-panic` rule).
pub const ENCLAVE_PATHS: &[&str] = &[
    "crates/tee/src",
    "crates/core/src/sgx_ops.rs",
    "crates/core/src/keydist.rs",
    "fixtures/enclave-panic",
];

/// Files holding cryptographic primitives, where secret-dependent
/// comparisons must be constant-time (`const-time` rule).
pub const CONST_TIME_PATHS: &[&str] = &["crates/crypto/src", "fixtures/const-time"];

/// Files defining the ECALL surface; every `pub fn` must charge the TEE
/// cost model (`ecall-cost` rule).
pub const ECALL_PATHS: &[&str] = &[
    "crates/core/src/sgx_ops.rs",
    "crates/core/src/recovery.rs",
    "crates/core/src/ingress.rs",
    "crates/serve/src/dispatch.rs",
    "fixtures/ecall-cost",
];

/// Identifiers that mark a comparison as secret-dependent for the
/// `const-time` rule (beyond registry type names).
pub const SECRET_VALUE_TOKENS: &[&str] = &["tag", "mac", "digest", "challenge", "secret", "hmac"];

/// Identifier suffixes with the same meaning (`auth_tag`, `expected_mac`…).
pub const SECRET_VALUE_SUFFIXES: &[&str] = &["_tag", "_mac", "_digest"];

/// Identifiers that mark a log/format line as secret-bearing for the
/// `secret-log` rule (beyond registry type names).
pub const SECRET_LOG_TOKENS: &[&str] =
    &["secret", "user_secret", "sk", "secret_key", "private_key"];

/// All rule identifiers (for suppression-marker validation).
pub const RULE_IDS: &[&str] = &[
    "secret-debug",
    "secret-pub-api",
    "secret-log",
    "enclave-panic",
    "const-time",
    "unsafe-safety",
    "forbid-unsafe",
    "ecall-cost",
    "obs-secret-label",
    "wall-clock",
    "unordered-iter",
    "rng-fork",
    "hot-path-alloc",
    "deprecated-api",
];

/// One-line rule descriptions, for the SARIF rules table. Kept in the
/// same order as [`RULE_IDS`], plus the meta `suppression` rule.
pub const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    (
        "secret-debug",
        "registry types must not derive Debug or impl Display",
    ),
    (
        "secret-pub-api",
        "registry types stay out of foreign pub signatures",
    ),
    (
        "secret-log",
        "no format/log macro touches secret-bearing values or their aliases",
    ),
    ("enclave-panic", "no unwrap/expect/panic! in enclave code"),
    (
        "const-time",
        "no == over secret-derived bytes in hesgx-crypto",
    ),
    (
        "unsafe-safety",
        "every unsafe block carries a SAFETY: comment",
    ),
    (
        "forbid-unsafe",
        "unsafe-free crates declare #![forbid(unsafe_code)]",
    ),
    (
        "ecall-cost",
        "every pub fn on the ECALL surface returns a cost",
    ),
    (
        "obs-secret-label",
        "obs span/counter labels never name secret material",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime::now only in the audited wall module",
    ),
    (
        "unordered-iter",
        "no HashMap/HashSet iteration feeding serialized bytes",
    ),
    (
        "rng-fork",
        "no ChaCha draws on outside-bound generators inside retry bodies",
    ),
    (
        "hot-path-alloc",
        "no per-iteration allocation in loops of `hot`-marked functions",
    ),
    (
        "deprecated-api",
        "no calls to the deprecated Session inference shims",
    ),
    (
        "suppression",
        "allow markers must be well-formed, justified, and in use",
    ),
];

/// Paths where raw wall-clock reads are legitimate (`wall-clock` rule):
/// the single audited accessor module, the wall-only bench crate, and the
/// profiler (`hesgx_obs::prof` sits below `hesgx-tee`, so it cannot route
/// through the `WallTimer` shim without a dependency cycle; its wall
/// numbers are quarantined to non-deterministic exports by design —
/// DESIGN.md §18). The exemption is file-scoped: the rest of `crates/obs`
/// stays banned.
pub const WALL_OK_PATHS: &[&str] = &[
    "crates/bench/src",
    "crates/tee/src/wall.rs",
    "crates/obs/src/prof.rs",
];

/// Unordered hash containers tracked by the dataflow pass
/// (`unordered-iter` rule).
pub const TRACKED_CONTAINER_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Session-API types tracked for the `deprecated-api` rule (a value bound
/// from `SessionBuilder::...` is coarsely treated as a session handle).
pub const SESSION_TYPES: &[&str] = &["Session", "SessionBuilder"];

/// The deprecated `Session` inference shims (`deprecated-api` rule).
pub const DEPRECATED_SESSION_METHODS: &[&str] = &["infer", "infer_batch", "infer_batch_resilient"];

/// Methods that iterate a container in arbitrary order
/// (`unordered-iter` rule). `get`/`insert`/`retain`/`contains_key` are
/// point operations and do not observe ordering.
pub const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Function-name fragments that mark a function as feeding
/// serialized/exported bytes (`unordered-iter` rule).
pub const SINK_NAME_TOKENS: &[&str] = &[
    "json",
    "serialize",
    "render",
    "export",
    "snapshot",
    "digest",
    "hash",
    "report",
    "prometheus",
    "perfetto",
];

/// Body identifiers with the same meaning: a function whose body calls one
/// of these produces ordering-sensitive output.
pub const SINK_BODY_TOKENS: &[&str] = &[
    "serialize",
    "to_json",
    "render_json",
    "push_str",
    "digest",
    "sha256",
    "snapshot",
];

/// Identifier fragments that mark a bare `loop` as a retry loop
/// (`rng-fork` rule). Rejection-sampling loops speak none of these.
pub const RETRY_VOCAB: &[&str] = &["attempt", "retry", "backoff", "reprovision"];

/// ChaCha methods that are deterministic per attempt (`rng-fork` rule):
/// deriving a child stream or copying the base does not advance shared
/// state.
pub const RNG_SAFE_METHODS: &[&str] = &["fork", "clone"];

/// Allocating methods banned inside hot-path loops (`hot-path-alloc`).
pub const HOT_ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "clone", "collect"];

/// Scratch-buffer pool types whose methods *recycle* rather than allocate
/// (`hot-path-alloc` rule). A `.clone()` on an arena handle bumps an `Arc`,
/// and the copy methods draw from the pooled free list — the exact pattern
/// the rule exists to push hot kernels toward, so arena-tagged receivers
/// are exempt.
pub const ARENA_TYPES: &[&str] = &["PolyArena"];

/// Every type name the dataflow pass tracks: the secret registry plus the
/// unordered containers, the session API types, and the scratch arenas.
pub fn tracked_types() -> Vec<&'static str> {
    SECRET_TYPES
        .iter()
        .map(|t| t.name)
        .chain(TRACKED_CONTAINER_TYPES.iter().copied())
        .chain(SESSION_TYPES.iter().copied())
        .chain(ARENA_TYPES.iter().copied())
        .collect()
}

/// Whether `path` (normalized, `/`-separated) matches one of `scopes`.
pub fn path_in(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.contains(s))
}
