//! Rule configuration: the secret-type registry and the path scopes that
//! bind each rule to the part of the workspace where its invariant lives.
//!
//! Paths are matched by normalized substring (`/`-separated), so entries
//! work both for workspace files (`crates/tee/src/enclave.rs`) and for the
//! fixture corpus (`crates/lint/tests/fixtures/enclave-panic/bad.rs`).

/// One entry in the secret-bearing type registry.
pub struct SecretType {
    /// The exact type identifier.
    pub name: &'static str,
    /// Whether `#[derive(Debug)]` / `impl Display` on this type is banned
    /// (types whose fields redact via manual `Debug` impls set this false).
    pub no_debug: bool,
    /// Where the type may appear in `pub` signatures / `pub` fields:
    /// `Some(paths)` restricts to files matching one of the substrings;
    /// `None` means the type is unrestricted in public APIs (opaque handles
    /// whose Debug is still sensitive).
    pub pub_sig_allowed: Option<&'static [&'static str]>,
}

/// The registry of secret-bearing types (ISSUE: secret-hygiene rule).
///
/// The `pub_sig_allowed` lists trace the paper's trust boundary: secret key
/// material may cross public APIs only where the enclave wrapper or the
/// user-side key ceremony legitimately handles it.
pub const SECRET_TYPES: &[SecretType] = &[
    SecretType {
        name: "SecretKey",
        no_debug: true,
        pub_sig_allowed: Some(&[
            "crates/bfv/src",
            "crates/tee/src",
            "crates/core/src/sgx_ops.rs",
            "crates/core/src/keydist.rs",
            "crates/henn/src/crt.rs",
        ]),
    },
    SecretType {
        name: "EvaluationKeys",
        no_debug: true,
        // Relinearization keys are evaluation material handed to the HE
        // compute layer by design (they cannot decrypt); hesgx-henn is that
        // layer. They still must not be Debug-dumped.
        pub_sig_allowed: Some(&["crates/bfv/src", "crates/henn/src"]),
    },
    SecretType {
        name: "KeyGenerator",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "CrtKeys",
        // CrtKeys aggregates SecretKey values whose Debug impls redact, so
        // deriving Debug on the aggregate is safe.
        no_debug: false,
        pub_sig_allowed: Some(&[
            "crates/henn/src/crt.rs",
            "crates/henn/src/lib.rs",
            "crates/core/src/keydist.rs",
            "crates/core/src/sgx_ops.rs",
        ]),
    },
    SecretType {
        name: "KeyCeremonyPublic",
        no_debug: false,
        // The ceremony result is what the *user* receives over the attested
        // channel; the provisioning pipeline and Session API hand it out.
        pub_sig_allowed: Some(&[
            "crates/core/src/keydist.rs",
            "crates/core/src/pipeline.rs",
            "crates/core/src/session.rs",
        ]),
    },
    SecretType {
        name: "SigningKey",
        no_debug: true,
        pub_sig_allowed: Some(&["crates/crypto/src/schnorr.rs", "crates/tee/src"]),
    },
    SecretType {
        name: "ChaChaRng",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "Platform",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "QuotingEnclave",
        no_debug: true,
        pub_sig_allowed: None,
    },
    SecretType {
        name: "SealedBlob",
        no_debug: true,
        pub_sig_allowed: None,
    },
];

/// Files holding enclave-resident code, where panics abort the ECALL
/// (`enclave-panic` rule).
pub const ENCLAVE_PATHS: &[&str] = &[
    "crates/tee/src",
    "crates/core/src/sgx_ops.rs",
    "crates/core/src/keydist.rs",
    "fixtures/enclave-panic",
];

/// Files holding cryptographic primitives, where secret-dependent
/// comparisons must be constant-time (`const-time` rule).
pub const CONST_TIME_PATHS: &[&str] = &["crates/crypto/src", "fixtures/const-time"];

/// Files defining the ECALL surface; every `pub fn` must charge the TEE
/// cost model (`ecall-cost` rule).
pub const ECALL_PATHS: &[&str] = &[
    "crates/core/src/sgx_ops.rs",
    "crates/core/src/recovery.rs",
    "crates/serve/src/dispatch.rs",
    "fixtures/ecall-cost",
];

/// Identifiers that mark a comparison as secret-dependent for the
/// `const-time` rule (beyond registry type names).
pub const SECRET_VALUE_TOKENS: &[&str] = &["tag", "mac", "digest", "challenge", "secret", "hmac"];

/// Identifier suffixes with the same meaning (`auth_tag`, `expected_mac`…).
pub const SECRET_VALUE_SUFFIXES: &[&str] = &["_tag", "_mac", "_digest"];

/// Identifiers that mark a log/format line as secret-bearing for the
/// `secret-log` rule (beyond registry type names).
pub const SECRET_LOG_TOKENS: &[&str] =
    &["secret", "user_secret", "sk", "secret_key", "private_key"];

/// All rule identifiers (for suppression-marker validation).
pub const RULE_IDS: &[&str] = &[
    "secret-debug",
    "secret-pub-api",
    "secret-log",
    "enclave-panic",
    "const-time",
    "unsafe-safety",
    "forbid-unsafe",
    "ecall-cost",
    "obs-secret-label",
];

/// Whether `path` (normalized, `/`-separated) matches one of `scopes`.
pub fn path_in(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.contains(s))
}
