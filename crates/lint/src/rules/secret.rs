//! Secret-hygiene rules over the registry in [`crate::config`]:
//!
//! - `secret-debug` — a registry type must not `#[derive(Debug)]` or get an
//!   `impl Display`: derived formatting mechanically dumps every field, and
//!   key material in a log or panic message leaves the trust boundary. A
//!   *manual* `Debug` impl is the sanctioned alternative — it redacts.
//! - `secret-pub-api` — registry types may cross `pub fn` signatures and
//!   `pub` fields only in the files where the threat model says the secret
//!   legitimately lives (enclave wrapper, key ceremony, key generation).
//! - `secret-log` — no format/log macro may reference a registry type, a
//!   secret-named binding, or (via the dataflow pass) an innocuously named
//!   *alias* of a registry-typed value; `dbg!` is banned outright in
//!   non-test code.

use crate::analysis::Analysis;
use crate::config::{path_in, SecretType, SECRET_LOG_TOKENS, SECRET_TYPES};
use crate::diag::Diagnostic;
use crate::lexer::{ident_positions, identifiers, next_nonspace, SourceFile};
use crate::rules::{pub_fields, pub_fn_signatures};

const LOG_MACROS: &[&str] = &[
    "println", "eprintln", "print", "eprint", "format", "write", "writeln",
];

/// Runs the three sub-rules on one analyzed file.
pub fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_debug(a.file, &mut out);
    check_pub_api(a.file, &mut out);
    check_log(a, &mut out);
    out
}

fn registry(name: &str) -> Option<&'static SecretType> {
    SECRET_TYPES.iter().find(|t| t.name == name)
}

/// `secret-debug`: derives and Display impls.
fn check_debug(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < file.line_count() {
        if file.in_test[i] {
            i += 1;
            continue;
        }
        let line = file.code_line(i);
        if let Some(start) = line.find("#[derive(") {
            // Collect the derive list, possibly spanning lines.
            let mut content = String::new();
            let mut j = i;
            let mut seg: &str = &line[start + "#[derive(".len()..];
            loop {
                match seg.find(')') {
                    Some(k) => {
                        content.push_str(&seg[..k]);
                        break;
                    }
                    None => {
                        content.push_str(seg);
                        content.push(' ');
                        j += 1;
                        if j >= file.line_count() {
                            break;
                        }
                        seg = file.code_line(j);
                    }
                }
            }
            if identifiers(&content).contains(&"Debug") {
                if let Some(name) = next_type_name(file, j + 1) {
                    if registry(&name).is_some_and(|t| t.no_debug) {
                        out.push(Diagnostic {
                            file: file.path.clone(),
                            line: i + 1,
                            rule: "secret-debug",
                            message: format!(
                                "secret-bearing type `{name}` derives Debug — derived \
                                 formatting dumps key material"
                            ),
                            hint: "write a manual `impl fmt::Debug` that prints \
                                   `\"<redacted>\"` for the secret fields"
                                .into(),
                        });
                    }
                }
            }
            i = j + 1;
            continue;
        }
        // `impl Display for X` / `impl std::fmt::Display for X`.
        let words = identifiers(line);
        if words.first() == Some(&"impl") && words.contains(&"Display") {
            if let Some(for_idx) = words.iter().position(|w| *w == "for") {
                if let Some(name) = words.get(for_idx + 1) {
                    if registry(name).is_some_and(|t| t.no_debug) {
                        out.push(Diagnostic {
                            file: file.path.clone(),
                            line: i + 1,
                            rule: "secret-debug",
                            message: format!("secret-bearing type `{name}` implements Display"),
                            hint: "secret material must not be renderable; drop the impl".into(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// The struct/enum name declared at or after 0-based line `from` (skipping
/// further attributes and blank lines).
fn next_type_name(file: &SourceFile, from: usize) -> Option<String> {
    for j in from..file.line_count().min(from + 8) {
        let words = identifiers(file.code_line(j));
        if let Some(kw) = words.iter().position(|w| *w == "struct" || *w == "enum") {
            return words.get(kw + 1).map(|s| (*s).to_string());
        }
        // Another attribute or an empty line: keep looking.
    }
    None
}

/// `secret-pub-api`: registry types in public signatures and fields.
fn check_pub_api(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut flag = |line: usize, name: &str, where_: &str| {
        out.push(Diagnostic {
            file: file.path.clone(),
            line,
            rule: "secret-pub-api",
            message: format!(
                "secret-bearing type `{name}` crosses a public {where_} outside its \
                 sanctioned modules"
            ),
            hint: "keep key material behind the enclave/key-ceremony APIs, or add a \
                   justified `hesgx-lint: allow(secret-pub-api, ...)` if this boundary \
                   crossing is by design"
                .into(),
        });
    };
    for sig in pub_fn_signatures(file) {
        for name in restricted_types_in(&sig.text, &file.path) {
            flag(sig.line, name, "fn signature");
        }
    }
    for field in pub_fields(file) {
        for name in restricted_types_in(&field.type_text, &file.path) {
            flag(field.line, name, "field");
        }
    }
}

/// Registry types appearing in `text` that `path` is not sanctioned for.
fn restricted_types_in(text: &str, path: &str) -> Vec<&'static str> {
    let words = identifiers(text);
    SECRET_TYPES
        .iter()
        .filter(|t| {
            t.pub_sig_allowed
                .is_some_and(|allowed| words.contains(&t.name) && !path_in(path, allowed))
        })
        .map(|t| t.name)
        .collect()
}

/// `secret-log`: format-family macros referencing secrets (by name or by
/// dataflow alias), and `dbg!`.
fn check_log(a: &Analysis, out: &mut Vec<Diagnostic>) {
    let file = a.file;
    for i in 0..file.line_count() {
        if file.in_test[i] {
            continue;
        }
        let line = file.code_line(i);
        let words = ident_positions(line);
        for (pos, word) in &words {
            let end = pos + word.len();
            if next_nonspace(line, end) != Some('!') {
                continue;
            }
            if *word == "dbg" {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: i + 1,
                    rule: "secret-log",
                    message: "`dbg!` in non-test code dumps its argument with Debug".into(),
                    hint: "remove the debugging aid before merging".into(),
                });
                continue;
            }
            if !LOG_MACROS.contains(word) {
                continue;
            }
            let secretish = words
                .iter()
                .find(|(_, w)| SECRET_LOG_TOKENS.contains(w) || registry(w).is_some());
            if let Some((_, leaked)) = secretish {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: i + 1,
                    rule: "secret-log",
                    message: format!("`{word}!` formats secret-related value `{leaked}`"),
                    hint: "log sizes, identifiers, or digests of public data — never key \
                           material"
                        .into(),
                });
                break;
            }
            // Dataflow taint: an innocuously named alias of a registry-typed
            // value in the macro's argument list.
            if let Some((alias, ty)) = a.secret_alias_after(i, *pos) {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: i + 1,
                    rule: "secret-log",
                    message: format!(
                        "`{word}!` formats `{alias}`, which aliases secret-bearing `{ty}`"
                    ),
                    hint: "renaming a secret does not sanitize it — log sizes, identifiers, \
                           or digests of public data instead"
                        .into(),
                });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/nn/src/x.rs", text)
    }

    fn diags(f: &SourceFile) -> Vec<Diagnostic> {
        check(&Analysis::new(f))
    }

    #[test]
    fn derive_debug_on_registry_type_is_flagged() {
        let f = scan("#[derive(Debug, Clone)]\npub struct SigningKey {\n    sk: u64,\n}\n");
        let diags = diags(&f);
        assert!(diags
            .iter()
            .any(|d| d.rule == "secret-debug" && d.line == 1));
    }

    #[test]
    fn multi_line_derive_is_collected() {
        let f = scan("#[derive(\n    Clone,\n    Debug,\n)]\nstruct SecretKey {}\n");
        assert!(diags(&f).iter().any(|d| d.rule == "secret-debug"));
    }

    #[test]
    fn manual_debug_impl_is_allowed() {
        let f = scan("impl std::fmt::Debug for SigningKey {\n    fn fmt(&self) {}\n}\n");
        assert!(diags(&f).iter().all(|d| d.rule != "secret-debug"));
    }

    #[test]
    fn display_impl_is_flagged() {
        let f = scan("impl std::fmt::Display for SigningKey {\n}\n");
        assert!(diags(&f).iter().any(|d| d.rule == "secret-debug"));
    }

    #[test]
    fn derive_on_non_registry_type_is_fine() {
        let f = scan("#[derive(Debug)]\nstruct PlainConfig {\n    n: usize,\n}\n");
        assert!(diags(&f).is_empty());
    }

    #[test]
    fn registry_type_in_pub_fn_outside_sanctioned_path_is_flagged() {
        let f = scan("pub fn leak(k: &SecretKey) -> u64 { 0 }\n");
        assert!(diags(&f).iter().any(|d| d.rule == "secret-pub-api"));
    }

    #[test]
    fn registry_type_in_sanctioned_path_is_fine() {
        let f = SourceFile::scan(
            "crates/bfv/src/keys.rs",
            "pub fn secret_key(&self) -> SecretKey { todo() }\n",
        );
        assert!(diags(&f).iter().all(|d| d.rule != "secret-pub-api"));
    }

    #[test]
    fn pub_field_with_registry_type_is_flagged() {
        let f = scan("pub struct Harness {\n    pub keys: CrtKeys,\n}\n");
        assert!(diags(&f)
            .iter()
            .any(|d| d.rule == "secret-pub-api" && d.line == 2));
    }

    #[test]
    fn unrestricted_handle_types_pass_pub_api() {
        let f = scan("pub fn rng(&mut self) -> &mut ChaChaRng { &mut self.rng }\n");
        assert!(diags(&f).iter().all(|d| d.rule != "secret-pub-api"));
    }

    #[test]
    fn println_of_secret_is_flagged() {
        let f = scan("fn f(sk: u64) { println!(\"{}\", sk); }\n");
        assert!(diags(&f).iter().any(|d| d.rule == "secret-log"));
    }

    #[test]
    fn dbg_is_always_flagged() {
        let f = scan("fn f(x: u64) { dbg!(x); }\n");
        assert!(diags(&f).iter().any(|d| d.rule == "secret-log"));
    }

    #[test]
    fn benign_format_is_fine() {
        let f = scan("fn f(n: usize) { let s = format!(\"{n} items\"); }\n");
        assert!(diags(&f).iter().all(|d| d.rule != "secret-log"));
    }

    #[test]
    fn tainted_alias_in_log_macro_is_flagged() {
        let f = scan(
            "fn f(key: &SecretKey) {\n    let material = key.clone();\n    \
             println!(\"{:?}\", material);\n}\n",
        );
        let d = diags(&f);
        assert!(
            d.iter()
                .any(|d| d.rule == "secret-log" && d.line == 3 && d.message.contains("aliases")),
            "{d:?}"
        );
    }

    #[test]
    fn taint_flows_through_let_chains() {
        let f = scan(
            "fn f(gen: &KeyGenerator) {\n    let kg = gen;\n    let handle = kg;\n    \
             eprintln!(\"state {:?}\", handle);\n}\n",
        );
        assert!(diags(&f)
            .iter()
            .any(|d| d.rule == "secret-log" && d.line == 4));
    }

    #[test]
    fn receiver_before_the_macro_does_not_count_as_leaked() {
        // `base` is ChaChaRng-tagged but sits *before* `format!` — it is the
        // receiver, not a formatted argument.
        let f = scan("fn f(base: &ChaChaRng, i: usize) {\n    let child = base.fork(&format!(\"seq-{i}\"));\n}\n");
        assert!(diags(&f).iter().all(|d| d.rule != "secret-log"));
    }

    #[test]
    fn untainted_alias_is_fine() {
        let f =
            scan("fn f(cfg: &Config) {\n    let view = cfg;\n    println!(\"{:?}\", view);\n}\n");
        assert!(diags(&f).iter().all(|d| d.rule != "secret-log"));
    }
}
