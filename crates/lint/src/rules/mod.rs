//! The rule implementations. Line-oriented rules take the scanned
//! [`SourceFile`] directly; the dataflow-aware families (determinism,
//! taint, hot-path, deprecated-api) take the per-file [`Analysis`], which
//! layers the token stream, function scopes, and binding table on top.
//! The engine in `lib.rs` applies suppressions and the cross-file
//! `forbid-unsafe` check.

pub mod const_time;
pub mod deprecated;
pub mod determinism;
pub mod ecall;
pub mod hot;
pub mod obs;
pub mod panic;
pub mod secret;
pub mod unsafe_rule;

use crate::analysis::Analysis;
use crate::diag::Diagnostic;
use crate::lexer::{ident_positions, SourceFile};

/// Runs every per-file rule on one analyzed file.
pub fn check_file(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(secret::check(a));
    out.extend(panic::check(a.file));
    out.extend(const_time::check(a.file));
    out.extend(unsafe_rule::check(a.file));
    out.extend(ecall::check(a.file));
    out.extend(obs::check(a));
    out.extend(determinism::check(a));
    out.extend(hot::check(a));
    out.extend(deprecated::check(a));
    out
}

/// A `pub fn` signature: the declaration line (1-based) and the flattened
/// text from `fn` up to (excluding) the body `{` or terminating `;`.
pub(crate) struct PubSig {
    pub line: usize,
    pub text: String,
}

/// Modifier keywords that may sit between `pub` and `fn`.
const FN_MODIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

/// Extracts every non-test `pub fn` signature (visibility-restricted
/// `pub(crate)`/`pub(super)` functions are not part of the public surface
/// and are skipped).
pub(crate) fn pub_fn_signatures(file: &SourceFile) -> Vec<PubSig> {
    let mut sigs = Vec::new();
    let mut i = 0;
    while i < file.line_count() {
        if file.in_test[i] {
            i += 1;
            continue;
        }
        let line = file.code_line(i);
        let Some(fn_pos) = find_pub_fn(line) else {
            i += 1;
            continue;
        };
        let mut text = String::new();
        let mut j = i;
        let mut depth = 0i32;
        let mut done = false;
        while j < file.line_count() && !done {
            let l = file.code_line(j);
            let seg = if j == i { &l[fn_pos..] } else { l };
            for c in seg.chars() {
                match c {
                    '{' => {
                        done = true;
                        break;
                    }
                    // `;` terminates the declaration only outside brackets
                    // (array types like `[u8; 32]` contain one).
                    ';' if depth == 0 => {
                        done = true;
                        break;
                    }
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    _ => {}
                }
                if !done {
                    text.push(c);
                }
            }
            if !done {
                text.push(' ');
                j += 1;
            }
        }
        sigs.push(PubSig { line: i + 1, text });
        i = j.max(i) + 1;
    }
    sigs
}

/// If `line` declares a `pub fn` (with optional modifiers), returns the
/// byte offset of the `fn` keyword.
fn find_pub_fn(line: &str) -> Option<usize> {
    let words = ident_positions(line);
    for (wi, &(pos, word)) in words.iter().enumerate() {
        if word != "pub" {
            continue;
        }
        // `pub(crate)` / `pub(super)`: restricted visibility, skip.
        if crate::lexer::next_nonspace(line, pos + 3) == Some('(') {
            continue;
        }
        let mut k = wi + 1;
        while let Some(&(fp, w)) = words.get(k) {
            if w == "fn" {
                return Some(fp);
            }
            if FN_MODIFIERS.contains(&w) || w == "C" {
                k += 1;
                continue;
            }
            break;
        }
    }
    None
}

/// A `pub` struct-field declaration: line (1-based) and the type text
/// after the `:`.
pub(crate) struct PubField {
    pub line: usize,
    pub type_text: String,
}

/// Keywords after `pub` that mean "not a field".
const NON_FIELD_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "use", "mod", "type", "trait", "const", "static", "impl", "crate",
    "super", "self", "in", "unsafe", "async", "extern",
];

/// Extracts non-test `pub <name>: <Type>` field declarations.
pub(crate) fn pub_fields(file: &SourceFile) -> Vec<PubField> {
    let mut out = Vec::new();
    for i in 0..file.line_count() {
        if file.in_test[i] {
            continue;
        }
        let line = file.code_line(i);
        let words = ident_positions(line);
        for (wi, &(pos, word)) in words.iter().enumerate() {
            if word != "pub" {
                continue;
            }
            if crate::lexer::next_nonspace(line, pos + 3) == Some('(') {
                break; // pub(crate) field: not public surface
            }
            let Some(&(_, next)) = words.get(wi + 1) else {
                break;
            };
            if NON_FIELD_KEYWORDS.contains(&next) {
                break;
            }
            // A field has a single `:` after the name (`::` is a path).
            if let Some(colon) = single_colon(line, pos) {
                out.push(PubField {
                    line: i + 1,
                    type_text: line[colon + 1..].to_string(),
                });
            }
            break;
        }
    }
    out
}

/// Finds the first single `:` (not part of `::`) after byte `from`.
fn single_colon(line: &str, from: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut i = from;
    while i < bytes.len() {
        if bytes[i] == b':' {
            if bytes.get(i + 1) == Some(&b':') {
                i += 2;
                continue;
            }
            if i > 0 && bytes[i - 1] == b':' {
                i += 1;
                continue;
            }
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/x/src/a.rs", text)
    }

    #[test]
    fn pub_fn_signature_spans_lines() {
        let f = scan("pub fn seal(\n    key: &SecretKey,\n    data: &[u8],\n) -> Blob {\n");
        let sigs = pub_fn_signatures(&f);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].line, 1);
        assert!(sigs[0].text.contains("SecretKey"));
        assert!(sigs[0].text.contains("Blob"));
    }

    #[test]
    fn pub_crate_fn_is_skipped() {
        let f = scan("pub(crate) fn secret_keys(&self) -> &[SecretKey] { &self.sk }\n");
        assert!(pub_fn_signatures(&f).is_empty());
    }

    #[test]
    fn pub_const_fn_is_found() {
        let f = scan("pub const fn len() -> usize { 4 }\n");
        assert_eq!(pub_fn_signatures(&f).len(), 1);
    }

    #[test]
    fn pub_field_type_is_extracted() {
        let f = scan("pub struct K {\n    pub keys: Vec<SecretKey>,\n    inner: u32,\n}\n");
        let fields = pub_fields(&f);
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].line, 2);
        assert!(fields[0].type_text.contains("SecretKey"));
    }

    #[test]
    fn path_segments_are_not_fields() {
        let f = scan("pub use crate::keys::SecretKey;\n");
        assert!(pub_fields(&f).is_empty());
    }
}
