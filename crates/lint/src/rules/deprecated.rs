//! `deprecated-api` — calls to the deprecated `Session` inference shims.
//!
//! PR 6 made `Session::serve` the one request/response entry point;
//! `infer`, `infer_batch`, and `infer_batch_resilient` remain only as
//! `#[deprecated]` forwarding shims for downstream code mid-migration.
//! rustc's own deprecation warning fires at compile time, but only inside
//! this workspace and only when the call isn't wrapped in
//! `#[allow(deprecated)]`; this rule makes the migration debt visible to
//! the lint gate (and its baseline workflow) instead. The receiver must be
//! `Session`-typed per the dataflow pass, so `CryptoNetsHE::infer` and
//! `HybridInference::infer` — legitimate, non-deprecated APIs — never
//! match.

use crate::analysis::Analysis;
use crate::config::{DEPRECATED_SESSION_METHODS, SESSION_TYPES};
use crate::diag::Diagnostic;

/// Runs the rule on one analyzed file.
pub fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (f_idx, scope) in a.fns.iter().enumerate() {
        if scope.is_test {
            continue;
        }
        let Some(body) = scope.body else {
            continue;
        };
        for i in body.start + 1..body.end {
            let t = &a.toks[i];
            // `recv.method(` where method is a deprecated shim.
            if !t.is_ident || !DEPRECATED_SESSION_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            if !(i > 0
                && a.toks[i - 1].is_punct('.')
                && a.toks.get(i + 1).is_some_and(|p| p.is_punct('(')))
            {
                continue;
            }
            // Resolve the receiver: the identifier before the dot (or a
            // `self.field`).
            let r = i - 2;
            let Some(recv) = a.toks.get(r).filter(|t| t.is_ident) else {
                continue;
            };
            let tag = if r >= 2 && a.toks[r - 1].is_punct('.') && a.toks[r - 2].is("self") {
                a.flow.fields.get(&recv.text).map(String::as_str)
            } else {
                a.flow.fns[f_idx].tag_at(&recv.text, r)
            };
            if !tag.is_some_and(|tag| SESSION_TYPES.contains(&tag)) {
                continue;
            }
            out.push(Diagnostic {
                file: a.file.path.clone(),
                line: t.line + 1,
                rule: "deprecated-api",
                message: format!(
                    "call to deprecated `Session::{}` shim in `{}`",
                    t.text, scope.name
                ),
                hint: "migrate to `Session::serve(InferRequest::single(..)/batch(..))` — \
                       the shims forward there and will be removed"
                    .into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        let a = Analysis::new(&f);
        check(&a)
    }

    #[test]
    fn session_typed_receiver_calling_shim_is_flagged() {
        let d = diags(
            "fn classify(session: &Session, image: &[i64]) {\n    session.infer(image);\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "deprecated-api" && d.line == 2));
    }

    #[test]
    fn builder_bound_session_is_tracked() {
        let d = diags(
            "fn run(cfg: Config) {\n    let session = SessionBuilder::new(cfg).build();\n    session.infer_batch(&images);\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "deprecated-api" && d.line == 3));
    }

    #[test]
    fn non_session_infer_is_not_deprecated() {
        let d =
            diags("fn run(engine: &CryptoNetsHE, image: &[i64]) {\n    engine.infer(image);\n}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn serve_on_session_is_fine() {
        let d = diags(
            "fn classify(session: &Session, image: &[i64]) {\n    session.serve(InferRequest::single(image.to_vec()));\n}\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let d = diags(
            "#[cfg(test)]\nmod tests {\n    fn t(session: &Session) {\n        session.infer(&[]);\n    }\n}\n",
        );
        assert!(d.is_empty());
    }
}
