//! `ecall-cost`: the audited ECALL surface must charge the TEE cost model.
//!
//! The paper's performance claims hinge on every enclave transition being
//! accounted for (ECALL overhead, paging, in-enclave compute). Any `pub fn`
//! on the ECALL wrapper (`sgx_ops.rs`) that does *not* return a
//! [`CostBreakdown`] is an unmetered path into the enclave — either it
//! must thread the cost through, or it needs a justified `allow` stating
//! that it performs no enclave computation (constructors, accessors).

use crate::config::{path_in, ECALL_PATHS};
use crate::diag::Diagnostic;
use crate::lexer::{identifiers, SourceFile};
use crate::rules::pub_fn_signatures;

/// Runs the rule on one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !path_in(&file.path, ECALL_PATHS) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for sig in pub_fn_signatures(file) {
        let charged = match sig.text.find("->") {
            Some(arrow) => identifiers(&sig.text[arrow..]).contains(&"CostBreakdown"),
            None => false,
        };
        if !charged {
            let name = fn_name(&sig.text);
            out.push(Diagnostic {
                file: file.path.clone(),
                line: sig.line,
                rule: "ecall-cost",
                message: format!("ECALL-surface `pub fn {name}` does not return a CostBreakdown"),
                hint: "thread the enclave cost through the return value, or add \
                       `hesgx-lint: allow(ecall-cost, reason = \"...\")` for functions \
                       that perform no enclave computation"
                    .into(),
            });
        }
    }
    out
}

fn fn_name(sig: &str) -> &str {
    let words = identifiers(sig);
    words
        .iter()
        .position(|w| *w == "fn")
        .and_then(|i| words.get(i + 1).copied())
        .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/core/src/sgx_ops.rs", text)
    }

    #[test]
    fn uncharged_pub_fn_is_flagged() {
        let f = scan("pub fn refresh(&self, ct: &C) -> Result<C> {\n    body()\n}\n");
        let diags = check(&f);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("refresh"));
    }

    #[test]
    fn charged_pub_fn_passes() {
        let f = scan("pub fn refresh(&self, ct: &C) -> Result<(C, CostBreakdown)> {\n}\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn cost_in_params_does_not_count() {
        let f = scan("pub fn merge(a: CostBreakdown) -> u64 {\n}\n");
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn private_and_crate_fns_are_exempt() {
        let f = scan("fn sum_costs(a: &C) -> C {}\npub(crate) fn peek(&self) -> u64 {}\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn out_of_scope_file_is_exempt() {
        let f = SourceFile::scan("crates/core/src/pipeline.rs", "pub fn run() -> u64 {}\n");
        assert!(check(&f).is_empty());
    }
}
