//! `const-time`: secret-dependent comparisons in the crypto crate must go
//! through `hesgx_crypto::ct::ct_eq`.
//!
//! `==` on byte slices short-circuits at the first mismatch, so comparison
//! time leaks how many prefix bytes an attacker got right — the classic
//! MAC-forgery timing oracle. The rule flags `==`/`!=` on lines whose
//! identifiers look secret-derived (tags, MACs, digests, challenges).

use crate::config::{path_in, CONST_TIME_PATHS, SECRET_VALUE_SUFFIXES, SECRET_VALUE_TOKENS};
use crate::diag::Diagnostic;
use crate::lexer::{identifiers, SourceFile};

/// Runs the rule on one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !path_in(&file.path, CONST_TIME_PATHS) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..file.line_count() {
        if file.in_test[i] {
            continue;
        }
        let line = file.code_line(i);
        if !has_eq_operator(line) {
            continue;
        }
        let secretish: Vec<&str> = identifiers(line)
            .into_iter()
            .filter(|w| is_secretish(w))
            .collect();
        if let Some(first) = secretish.first() {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: i + 1,
                rule: "const-time",
                message: format!("variable-time `==`/`!=` on secret-derived value `{first}`"),
                hint: "compare with `crate::ct::ct_eq` (or `ct_eq_32`/`ct_eq_u256`), which \
                       XOR-folds every byte before deciding"
                    .into(),
            });
        }
    }
    out
}

/// Whether the code line contains a bare `==` or `!=` operator (not `<=`,
/// `>=`, `=>`, or a longer `=` run).
fn has_eq_operator(line: &str) -> bool {
    let b = line.as_bytes();
    for i in 0..b.len().saturating_sub(1) {
        let pair = [b[i], b[i + 1]];
        let after = b.get(i + 2).copied();
        if pair == *b"==" {
            let before = i.checked_sub(1).map(|j| b[j]);
            let op_char = |c: Option<u8>| {
                matches!(
                    c,
                    Some(
                        b'=' | b'<'
                            | b'>'
                            | b'!'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
                )
            };
            if !op_char(before) && after != Some(b'=') {
                return true;
            }
        }
        if pair == *b"!=" && after != Some(b'=') {
            return true;
        }
    }
    false
}

fn is_secretish(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    SECRET_VALUE_TOKENS.contains(&lower.as_str())
        || SECRET_VALUE_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/crypto/src/x.rs", text)
    }

    #[test]
    fn tag_equality_is_flagged() {
        let f = scan("if tag == expected_tag { return true; }\n");
        let diags = check(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "const-time");
    }

    #[test]
    fn mac_inequality_is_flagged() {
        let f = scan("if computed_mac != stored { bail(); }\n");
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn non_secret_comparison_is_fine() {
        let f = scan("if a.len() == b.len() { work(); }\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn shift_and_arrow_are_not_comparisons() {
        let f = scan("let secret_branch = match digest_fn { X => 1, _ => 2 };\nlet x = y <= z;\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let f = scan("#[cfg(test)]\nmod tests {\n    fn t() { assert!(tag == tag2); }\n}\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn out_of_scope_is_exempt() {
        let f = SourceFile::scan("crates/nn/src/x.rs", "if tag == other { f(); }\n");
        assert!(check(&f).is_empty());
    }
}
