//! Determinism rule family: the replay contract (DESIGN.md §12–§14) says
//! every exported byte — ciphertexts, obs snapshots, traces, load reports —
//! must be a pure function of `(inputs, seed, config)`. Three ways code
//! breaks that, each with a rule:
//!
//! - `wall-clock` — `Instant::now()` / `SystemTime::now()` outside the
//!   audited `hesgx_tee::wall` module (or the wall-only bench crate). Raw
//!   wall reads are how nondeterminism leaks into cost floors and metrics.
//! - `unordered-iter` — iterating a `HashMap`/`HashSet` in a function that
//!   feeds serialized/exported bytes. Hash iteration order is randomized
//!   per process; anything rendered from it diverges across runs.
//! - `rng-fork` — drawing from a `ChaChaRng` that was bound *outside* a
//!   retry body, *inside* that body. Each attempt then advances the shared
//!   stream, so the value a request sees depends on how many retries
//!   happened before it — the exact PR 4 bug class. The sanctioned shape
//!   forks a per-call base outside the retry and clones/forks per attempt.

use crate::analysis::Analysis;
use crate::config::{
    path_in, ITER_METHODS, RETRY_VOCAB, RNG_SAFE_METHODS, SINK_BODY_TOKENS, SINK_NAME_TOKENS,
    WALL_OK_PATHS,
};
use crate::diag::Diagnostic;
use crate::scope::Span;
use crate::tokens::{matching, seq, Tok};

/// Runs the three determinism rules on one analyzed file.
pub fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_wall_clock(a, &mut out);
    check_unordered_iter(a, &mut out);
    check_rng_fork(a, &mut out);
    out
}

/// `wall-clock`: raw monotonic/system clock reads.
fn check_wall_clock(a: &Analysis, out: &mut Vec<Diagnostic>) {
    if path_in(&a.file.path, WALL_OK_PATHS) {
        return;
    }
    for (i, t) in a.toks.iter().enumerate() {
        if !(t.is("Instant") || t.is("SystemTime")) {
            continue;
        }
        if !seq(&a.toks, i + 1, &[":", ":", "now"]) {
            continue;
        }
        if a.file.in_test.get(t.line).copied().unwrap_or(false) {
            continue;
        }
        out.push(Diagnostic {
            file: a.file.path.clone(),
            line: t.line + 1,
            rule: "wall-clock",
            message: format!(
                "`{}::now()` outside the audited wall-clock module — raw wall reads \
                 undermine the replay contract",
                t.text
            ),
            hint: "route timing through `hesgx_tee::wall::WallTimer` (crates/bench is \
                   wall-only and exempt); wall time must never reach exported bytes"
                .into(),
        });
    }
}

/// `unordered-iter`: hash-container iteration in serializer-feeding code.
fn check_unordered_iter(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for (f_idx, scope) in a.fns.iter().enumerate() {
        if scope.is_test {
            continue;
        }
        let Some(body) = scope.body else {
            continue;
        };
        if !feeds_exported_bytes(a, scope.name.as_str(), body) {
            continue;
        }
        let mut seen_lines: Vec<usize> = Vec::new();
        let mut fire = |a: &Analysis, tok: &Tok, name: &str, out: &mut Vec<Diagnostic>| {
            if seen_lines.contains(&tok.line) {
                return;
            }
            seen_lines.push(tok.line);
            out.push(Diagnostic {
                file: a.file.path.clone(),
                line: tok.line + 1,
                rule: "unordered-iter",
                message: format!(
                    "iteration over unordered hash container `{name}` in `{}`, which \
                     feeds serialized/exported bytes",
                    scope.name
                ),
                hint: "use BTreeMap/BTreeSet (ordered) or collect and sort before \
                       rendering — hash iteration order varies per process"
                    .into(),
            });
        };
        for i in body.start + 1..body.end {
            let t = &a.toks[i];
            if !t.is_ident {
                continue;
            }
            let tag = tag_or_field(a, f_idx, i);
            let hashy = matches!(tag, Some("HashMap" | "HashSet"));
            if !hashy {
                continue;
            }
            // `x.iter()` / `.keys()` / ... method iteration.
            if a.toks.get(i + 1).is_some_and(|p| p.is_punct('.'))
                && a.toks
                    .get(i + 2)
                    .is_some_and(|m| m.is_ident && ITER_METHODS.contains(&m.text.as_str()))
                && a.toks.get(i + 3).is_some_and(|p| p.is_punct('('))
            {
                fire(a, t, &t.text, out);
                continue;
            }
            // `for k in x {` / `for (k, v) in &x {` header iteration.
            if in_for_header(&a.toks, body, i) {
                fire(a, t, &t.text, out);
            }
        }
    }
}

/// Whether the tagged identifier at `i` sits between a `for ... in` and the
/// loop's opening `{` (i.e. it is the iterated expression).
fn in_for_header(toks: &[Tok], body: Span, i: usize) -> bool {
    // Walk back to an `in` with a `for` before it, without crossing `{`/`;`.
    let mut k = i;
    let mut saw_in = false;
    while k > body.start {
        k -= 1;
        let t = &toks[k];
        if t.is_punct('{') || t.is_punct(';') || t.is_punct('}') {
            return false;
        }
        if t.is("in") {
            saw_in = true;
        }
        if t.is("for") {
            return saw_in;
        }
    }
    false
}

/// Whether `scope` feeds serialized/exported bytes: its name or its body
/// tokens mention a serialization/digest/report surface.
fn feeds_exported_bytes(a: &Analysis, name: &str, body: Span) -> bool {
    let lname = name.to_ascii_lowercase();
    if SINK_NAME_TOKENS.iter().any(|s| lname.contains(s)) {
        return true;
    }
    a.toks[body.start..=body.end].iter().any(|t| {
        t.is_ident && {
            let lt = t.text.to_ascii_lowercase();
            SINK_BODY_TOKENS.iter().any(|s| lt == *s)
        }
    })
}

/// `rng-fork`: draws on an outside-bound ChaChaRng inside a retry body.
fn check_rng_fork(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for (f_idx, scope) in a.fns.iter().enumerate() {
        if scope.is_test {
            continue;
        }
        let mut spans: Vec<Span> = scope.retry_spans.clone();
        // Bare `loop` bodies whose identifiers speak retry vocabulary are
        // retry loops too (rejection-sampling loops are not: they mention
        // no attempts/backoff).
        for l in &scope.loops {
            if l.keyword == "loop" && has_retry_vocab(&a.toks, l.body) {
                spans.push(l.body);
            }
        }
        for span in spans {
            for i in span.start + 1..span.end {
                let t = &a.toks[i];
                if !t.is_ident {
                    continue;
                }
                // Receiver must be ChaCha-tagged and bound OUTSIDE the span
                // (fields count as outside by construction).
                if tag_or_field(a, f_idx, i) != Some("ChaChaRng") {
                    continue;
                }
                if bound_inside(a, f_idx, i, span) {
                    continue;
                }
                // A use is a method call: `.m(`; `.fork`/`.clone` are the
                // sanctioned per-attempt derivations. `.lock()` is safe
                // only when immediately re-forked/cloned.
                if !a.toks.get(i + 1).is_some_and(|p| p.is_punct('.')) {
                    continue;
                }
                let Some(m) = a.toks.get(i + 2).filter(|m| m.is_ident) else {
                    continue;
                };
                if RNG_SAFE_METHODS.contains(&m.text.as_str()) {
                    continue;
                }
                if m.is("lock") && lock_then_safe(&a.toks, i + 3) {
                    continue;
                }
                out.push(Diagnostic {
                    file: a.file.path.clone(),
                    line: t.line + 1,
                    rule: "rng-fork",
                    message: format!(
                        "ChaCha draw via `{}.{}` inside a retry body in `{}` — each \
                         attempt advances the shared stream, so outcomes depend on \
                         retry count",
                        t.text, m.text, scope.name
                    ),
                    hint: "fork a per-call base outside the retry (`let base = \
                           rng.fork(label)`) and derive per attempt with `base.clone()` \
                           or `base.fork(cell)`"
                        .into(),
                });
            }
        }
    }
}

/// Whether the receiver at `i` is a binding declared inside `span` (a
/// per-attempt local, which is the sanctioned pattern).
fn bound_inside(a: &Analysis, f_idx: usize, i: usize, span: Span) -> bool {
    let name = &a.toks[i].text;
    if i > 0 && a.toks[i - 1].is_punct('.') {
        return false; // `self.field`: fields live outside every span
    }
    a.flow.fns[f_idx]
        .bindings
        .iter()
        .rev()
        .find(|b| &b.name == name && b.decl_tok <= i)
        .is_some_and(|b| span.contains(b.decl_tok))
}

/// Whether `(` at `open` is a `.lock()` whose result is immediately
/// `.fork(...)`d or `.clone()`d.
fn lock_then_safe(toks: &[Tok], open: usize) -> bool {
    if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let Some(close) = matching(toks, open) else {
        return false;
    };
    toks.get(close + 1).is_some_and(|t| t.is_punct('.'))
        && toks
            .get(close + 2)
            .is_some_and(|m| m.is_ident && RNG_SAFE_METHODS.contains(&m.text.as_str()))
}

/// Whether any identifier in `span` speaks retry vocabulary.
fn has_retry_vocab(toks: &[Tok], span: Span) -> bool {
    toks[span.start..=span.end].iter().any(|t| {
        t.is_ident && {
            let l = t.text.to_ascii_lowercase();
            RETRY_VOCAB.iter().any(|v| l.contains(v))
        }
    })
}

/// The tag of the identifier at `i`: positional binding lookup, with
/// `self.field` resolved through the field table.
fn tag_or_field<'a>(a: &'a Analysis, f_idx: usize, i: usize) -> Option<&'a str> {
    let t = &a.toks[i];
    if i > 0 && a.toks[i - 1].is_punct('.') {
        if i >= 2 && a.toks[i - 2].is("self") {
            return a.flow.fields.get(&t.text).map(String::as_str);
        }
        return None;
    }
    a.flow.fns[f_idx].tag_at(&t.text, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan(path, src);
        let a = Analysis::new(&f);
        check(&a)
    }

    #[test]
    fn instant_now_is_flagged_outside_wall_module() {
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() {\n    let t = std::time::Instant::now();\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "wall-clock" && d.line == 2));
    }

    #[test]
    fn wall_module_and_bench_are_exempt() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        assert!(diags("crates/tee/src/wall.rs", src).is_empty());
        assert!(diags("crates/bench/src/main.rs", src).is_empty());
        // The profiler exemption is file-scoped: prof.rs alone, not obs.
        assert!(diags("crates/obs/src/prof.rs", src).is_empty());
        assert_eq!(diags("crates/obs/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn instant_enum_variant_is_not_a_clock_read() {
        let d = diags(
            "crates/obs/src/x.rs",
            "fn f() -> TracePhase {\n    TracePhase::Instant\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "wall-clock"));
    }

    #[test]
    fn hashmap_iteration_in_serializer_is_flagged() {
        let d = diags(
            "crates/x/src/a.rs",
            "use std::collections::HashMap;\nfn render_json(m: &HashMap<String, u64>) -> String {\n    let mut out = String::new();\n    for (k, v) in m.iter() {\n        out.push_str(k);\n    }\n    out\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "unordered-iter"));
    }

    #[test]
    fn hashmap_insert_only_is_fine() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn render_json(m: &mut HashMap<String, u64>) -> String {\n    m.insert(String::new(), 1);\n    String::new()\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "unordered-iter"));
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn render(m: &BTreeMap<String, u64>) -> String {\n    let mut out = String::new();\n    for (k, _) in m.iter() {\n        out.push_str(k);\n    }\n    out\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "unordered-iter"));
    }

    #[test]
    fn hashmap_iteration_without_sink_is_fine() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn total(m: &HashMap<String, u64>) -> u64 {\n    let mut sum = 0;\n    for v in m.values() {\n        sum += v;\n    }\n    sum\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "unordered-iter"));
    }

    #[test]
    fn draw_inside_retry_closure_is_flagged() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn f(rng: &mut ChaChaRng) {\n    retry_with_cost(policy, |_attempt| {\n        rng.next_u64()\n    });\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "rng-fork"));
    }

    #[test]
    fn fork_outside_clone_inside_is_fine() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn f(rng: &ChaChaRng) {\n    let base = rng.fork(\"call\");\n    retry_with_cost(policy, |_attempt| {\n        let mut local = base.clone();\n        local.next_u64()\n    });\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "rng-fork"), "{d:?}");
    }

    #[test]
    fn rejection_sampling_loop_is_not_a_retry() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn f(rng: &mut ChaChaRng, zone: u64) -> u64 {\n    loop {\n        let v = rng.next_u64();\n        if v <= zone {\n            return v;\n        }\n    }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "rng-fork"));
    }

    #[test]
    fn vocab_loop_draw_is_flagged() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn f(rng: &mut ChaChaRng) -> u64 {\n    let mut attempts = 0;\n    loop {\n        let v = rng.next_u64();\n        attempts += 1;\n        if attempts > 3 {\n            return v;\n        }\n    }\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "rng-fork"));
    }

    #[test]
    fn shared_field_lock_refork_inside_retry_is_fine() {
        let d = diags(
            "crates/x/src/a.rs",
            "struct W {\n    rng: Mutex<ChaChaRng>,\n}\nimpl W {\n    fn f(&self) {\n        retry_with_cost(policy, |_attempt| {\n            let local = self.rng.lock().fork(\"cell\");\n            local\n        });\n    }\n}\n",
        );
        assert!(d.iter().all(|d| d.rule != "rng-fork"), "{d:?}");
    }

    #[test]
    fn shared_field_draw_inside_retry_is_flagged() {
        let d = diags(
            "crates/x/src/a.rs",
            "struct W {\n    rng: Mutex<ChaChaRng>,\n}\nimpl W {\n    fn f(&self) {\n        retry_with_cost(policy, |_attempt| {\n            self.rng.lock().next_u64()\n        });\n    }\n}\n",
        );
        assert!(d.iter().any(|d| d.rule == "rng-fork"));
    }
}
