//! `hot-path-alloc` — no per-iteration allocation inside the loops of
//! functions marked `// hesgx-lint: hot`.
//!
//! The henn conv/FC/pool kernels and the bfv NTT butterflies dominate
//! inference wall time (the paper's Fig. 4 workload); an allocation inside
//! their loops multiplies by `cells × limbs` and shows up directly in the
//! ECALL cost model. The `hot` marker is an opt-in contract: a function
//! that carries it promises its loops are allocation-free, and this rule
//! enforces the promise for the allocating calls that actually appear in
//! this codebase: `Vec::new`, `vec![...]`, `.to_vec()`, `.to_owned()`,
//! `.clone()`, and `.collect()`.
//!
//! Receivers the dataflow pass tags as a scratch arena ([`ARENA_TYPES`])
//! are exempt: `arena.clone()` bumps an `Arc` and the arena's copy methods
//! draw from a pooled free list — borrowing the arena is how a hot kernel
//! *avoids* allocating, not an allocation.

use crate::analysis::Analysis;
use crate::config::{ARENA_TYPES, HOT_ALLOC_METHODS};
use crate::diag::Diagnostic;
use crate::tokens::seq;

/// Runs the rule on one analyzed file.
pub fn check(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for scope in &a.fns {
        if !scope.hot || scope.is_test {
            continue;
        }
        // Nested loops overlap; visit each token once (attributed to the
        // outermost enclosing loop) so one allocation yields one finding.
        let mut seen = Vec::new();
        for l in &scope.loops {
            for i in l.body.start + 1..l.body.end {
                let t = &a.toks[i];
                if !t.is_ident || seen.contains(&i) {
                    continue;
                }
                seen.push(i);
                let what = if seq(&a.toks, i, &["Vec", ":", ":", "new"]) {
                    Some("Vec::new()".to_string())
                } else if t.is("vec") && a.toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    Some("vec![..]".to_string())
                } else if i > 1
                    && a.toks[i - 1].is_punct('.')
                    && HOT_ALLOC_METHODS.contains(&t.text.as_str())
                    && a.toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
                    && !a
                        .tag_of(i - 2)
                        .is_some_and(|tag| ARENA_TYPES.contains(&tag))
                {
                    Some(format!(".{}()", t.text))
                } else {
                    None
                };
                if let Some(what) = what {
                    out.push(Diagnostic {
                        file: a.file.path.clone(),
                        line: t.line + 1,
                        rule: "hot-path-alloc",
                        message: format!(
                            "`{what}` allocates inside a {} loop of hot-path function \
                             `{}`",
                            l.keyword, scope.name
                        ),
                        hint: "hoist the buffer out of the loop or reuse scratch space \
                               (ROADMAP item 1); if per-iteration ownership is inherent, \
                               justify with allow(hot-path-alloc)"
                            .into(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        let a = Analysis::new(&f);
        check(&a)
    }

    #[test]
    fn allocations_in_marked_fn_loops_are_flagged() {
        let d = diags(
            "// hesgx-lint: hot\nfn conv(rows: &[Vec<u64>]) {\n    for row in rows {\n        let s = row.to_vec();\n        let t: Vec<u64> = s.iter().map(|v| v + 1).collect();\n        let u = vec![0u64; 4];\n    }\n}\n",
        );
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == "hot-path-alloc"));
    }

    #[test]
    fn unmarked_functions_are_ignored() {
        let d = diags(
            "fn conv(rows: &[Vec<u64>]) {\n    for row in rows {\n        let s = row.to_vec();\n    }\n}\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn allocation_outside_the_loop_is_fine() {
        let d = diags(
            "// hesgx-lint: hot\nfn conv(rows: &[Vec<u64>]) {\n    let mut out = Vec::new();\n    for row in rows {\n        out.push(row[0]);\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn nested_loops_report_an_allocation_once() {
        let d = diags(
            "// hesgx-lint: hot\nfn pool(rows: &[Vec<u64>]) {\n    for row in rows {\n        for _w in 0..4 {\n            let s = row.to_vec();\n        }\n    }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn arena_handle_clone_is_exempt() {
        // Param-typed arena: the dataflow pass tags `arena`, so cloning the
        // handle (an Arc bump) inside a hot loop is not an allocation.
        let d = diags(
            "// hesgx-lint: hot\nfn conv(rows: &[Vec<u64>], arena: &PolyArena) {\n    for row in rows {\n        let handle = arena.clone();\n        let buf = arena.copy_poly(row);\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn arena_field_clone_is_exempt_but_other_clones_still_flag() {
        let d = diags(
            "struct Engine { arena: PolyArena }\nimpl Engine {\n    // hesgx-lint: hot\n    fn conv(&self, rows: &[Vec<u64>]) {\n        for row in rows {\n            let handle = self.arena.clone();\n            let copy = row.clone();\n        }\n    }\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains(".clone()"));
    }

    #[test]
    fn turbofish_collect_is_flagged() {
        let d = diags(
            "// hesgx-lint: hot\nfn conv(rows: &[u64]) {\n    while go() {\n        let v = rows.iter().collect::<Vec<_>>();\n    }\n}\n",
        );
        assert_eq!(d.len(), 1);
    }
}
