//! `enclave-panic`: panic-freedom inside enclave code.
//!
//! A panic inside an ECALL aborts the enclave; in real SGX that tears down
//! the whole trusted runtime and, worse, turns attacker-influenced inputs
//! into a denial-of-service primitive. Enclave-side code must return
//! `hesgx_core::Error` instead. `#[cfg(test)]` modules are exempt — there
//! an `unwrap` is an assertion, not reachable enclave code.

use crate::config::{path_in, ENCLAVE_PATHS};
use crate::diag::Diagnostic;
use crate::lexer::{ident_positions, next_nonspace, prev_nonspace, SourceFile};

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Runs the rule on one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !path_in(&file.path, ENCLAVE_PATHS) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..file.line_count() {
        if file.in_test[i] {
            continue;
        }
        let line = file.code_line(i);
        for (pos, word) in ident_positions(line) {
            let end = pos + word.len();
            if (word == "unwrap" || word == "expect")
                && prev_nonspace(line, pos) == Some('.')
                && next_nonspace(line, end) == Some('(')
            {
                out.push(diag(file, i + 1, &format!("`.{word}()` in enclave code")));
            }
            if PANIC_MACROS.contains(&word) && next_nonspace(line, end) == Some('!') {
                out.push(diag(file, i + 1, &format!("`{word}!` in enclave code")));
            }
        }
    }
    out
}

fn diag(file: &SourceFile, line: usize, what: &str) -> Diagnostic {
    Diagnostic {
        file: file.path.clone(),
        line,
        rule: "enclave-panic",
        message: format!("{what} — a panic aborts the ECALL and the enclave"),
        hint: "propagate `hesgx_core::Error` (e.g. `Error::Internal(...)` via `ok_or`) instead"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/tee/src/x.rs", text)
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let f = scan("fn f() { a.unwrap(); b.expect(\"msg\"); }\n");
        let diags = check(&f);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].rule, "enclave-panic");
    }

    #[test]
    fn panic_macros_are_flagged() {
        let f = scan("fn f() { panic!(\"x\"); todo!(); }\n");
        assert_eq!(check(&f).len(), 2);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let f = scan("fn f() { a.unwrap_or(0); a.unwrap_or_default(); }\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let f = scan("#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn doc_comments_are_exempt() {
        let f = scan("/// Never `.unwrap()` here.\nfn f() {}\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_exempt() {
        let f = SourceFile::scan("crates/nn/src/x.rs", "fn f() { a.unwrap(); }\n");
        assert!(check(&f).is_empty());
    }
}
