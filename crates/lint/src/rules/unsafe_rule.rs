//! `unsafe-safety` and the single-file half of `forbid-unsafe`.
//!
//! Every `unsafe` block or function must carry a `// SAFETY:` comment on
//! the same line or within the two lines above, documenting the invariant
//! the compiler cannot check. Crates with no unsafe at all must say so with
//! `#![forbid(unsafe_code)]` so regressions fail to compile (the workspace
//! half of that check lives in the engine, which sees all files of a
//! crate; here only fixture files are checked in isolation).

use crate::diag::Diagnostic;
use crate::lexer::{identifiers, SourceFile};

/// Runs the rule on one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..file.line_count() {
        if file.in_test[i] {
            continue;
        }
        if !identifiers(file.code_line(i)).contains(&"unsafe") {
            continue;
        }
        let documented = (i.saturating_sub(2)..=i)
            .any(|j| file.comments.get(j).is_some_and(|c| c.contains("SAFETY:")));
        if !documented {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: i + 1,
                rule: "unsafe-safety",
                message: "`unsafe` without a `// SAFETY:` comment".into(),
                hint: "state the invariant that makes this sound in a `// SAFETY:` comment \
                       directly above the unsafe block"
                    .into(),
            });
        }
    }
    // Fixture-corpus mode for forbid-unsafe: a lone file stands in for a
    // crate, so apply the lib.rs check directly.
    if file.path.contains("fixtures/forbid-unsafe") {
        out.extend(check_forbid_single(file));
    }
    out
}

/// Whether the file contains any non-test `unsafe` code.
pub fn has_unsafe(file: &SourceFile) -> bool {
    (0..file.line_count())
        .any(|i| !file.in_test[i] && identifiers(file.code_line(i)).contains(&"unsafe"))
}

/// Whether the file declares `#![forbid(unsafe_code)]`.
pub fn has_forbid_attr(file: &SourceFile) -> bool {
    file.code
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"))
}

/// The `forbid-unsafe` diagnostic, anchored at `line` of `path`.
pub fn forbid_diag(path: &str, line: usize) -> Diagnostic {
    Diagnostic {
        file: path.to_string(),
        line,
        rule: "forbid-unsafe",
        message: "crate contains no unsafe code but does not forbid it".into(),
        hint: "add `#![forbid(unsafe_code)]` to the crate root so unsafe cannot creep in \
               unreviewed"
            .into(),
    }
}

fn check_forbid_single(file: &SourceFile) -> Vec<Diagnostic> {
    if !has_unsafe(file) && !has_forbid_attr(file) {
        vec![forbid_diag(&file.path, 1)]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let f = SourceFile::scan("crates/x/src/a.rs", "fn f() {\n    unsafe { g(); }\n}\n");
        let diags = check(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unsafe-safety");
    }

    #[test]
    fn safety_comment_above_satisfies() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}\n";
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn unsafe_code_attr_is_not_unsafe_usage() {
        let f = SourceFile::scan(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}\n",
        );
        assert!(check(&f).is_empty());
        assert!(!has_unsafe(&f));
        assert!(has_forbid_attr(&f));
    }

    #[test]
    fn fixture_mode_flags_missing_forbid() {
        let f = SourceFile::scan(
            "crates/lint/tests/fixtures/forbid-unsafe/bad.rs",
            "fn safe_code() {}\n",
        );
        assert!(check(&f).iter().any(|d| d.rule == "forbid-unsafe"));
    }
}
