//! `obs-secret-label` — observability labels must not name secrets.
//!
//! Span paths and counter names recorded through `hesgx-obs` land in the
//! deterministic JSON snapshot that experiments write to `target/obs/` and
//! CI archives as a build artifact — a label leaves the trust boundary
//! exactly like a log line does. This rule bans secret-bearing identifiers
//! (the `secret-log` token list plus the registry type names) from any
//! non-test line that records a span or counter, whether the secret sits
//! inside the label literal or flows in through a formatted binding.
//!
//! Unlike most rules this one inspects the *raw* line (minus its line
//! comment): the code view blanks string interiors, but the string interior
//! is precisely where a label like `"seal.secret_key"` hides.
//!
//! Since PR 5 the exported surface is wider than span/counter names: trace
//! events (`trace_begin`/`trace_end`/`trace_instant`) land verbatim in the
//! Chrome trace-event JSON — names *and* argument keys/values — and gauge /
//! histogram names become Prometheus label values. Every one of those entry
//! points is held to the same no-secret-identifier standard.

use crate::analysis::Analysis;
use crate::config::{SECRET_LOG_TOKENS, SECRET_TYPES};
use crate::diag::Diagnostic;
use crate::lexer::{ident_positions, identifiers, next_nonspace};

/// Recorder entry points that persist a label into an exported artifact:
/// the snapshot (spans/counters), the Prometheus exposition (gauges,
/// histograms), or the Chrome trace-event JSON (trace names and args).
const RECORD_CALLS: &[&str] = &[
    "record_span",
    "record_zero_attempt",
    "incr",
    "gauge",
    "observe",
    "trace_begin",
    "trace_end",
    "trace_instant",
];

/// Runs the rule on one analyzed file.
pub fn check(a: &Analysis) -> Vec<Diagnostic> {
    let file = a.file;
    let mut out = Vec::new();
    for i in 0..file.line_count() {
        if file.in_test[i] {
            continue;
        }
        let code = file.code_line(i);
        let record_pos = ident_positions(code).iter().find_map(|&(pos, word)| {
            (RECORD_CALLS.contains(&word) && next_nonspace(code, pos + word.len()) == Some('('))
                .then_some(pos)
        });
        let Some(record_pos) = record_pos else {
            continue;
        };
        // Raw line with the trailing line comment stripped: suppression
        // markers and prose must not count, label literals must.
        let raw = file.raw.get(i).map_or("", String::as_str);
        let comment = file.comments.get(i).map_or("", String::as_str);
        let visible = raw.strip_suffix(comment).unwrap_or(raw);
        let leaked = identifiers(visible)
            .into_iter()
            .find(|w| SECRET_LOG_TOKENS.contains(w) || SECRET_TYPES.iter().any(|t| t.name == *w));
        if let Some(leaked) = leaked {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: i + 1,
                rule: "obs-secret-label",
                message: format!(
                    "obs span/counter label references secret-related `{leaked}` — labels \
                     are persisted to the snapshot artifact"
                ),
                hint: "name spans after pipeline stages or public operations \
                       (`infer.layer[i].ecall`, `recovery.retry`), never after key material"
                    .into(),
            });
            continue;
        }
        // Dataflow taint: an innocuously named alias of a registry-typed
        // value formatted into the label or argument list.
        if let Some((alias, ty)) = a.secret_alias_after(i, record_pos) {
            out.push(Diagnostic {
                file: file.path.clone(),
                line: i + 1,
                rule: "obs-secret-label",
                message: format!(
                    "obs label argument `{alias}` aliases secret-bearing `{ty}` — labels \
                     are persisted to the snapshot artifact"
                ),
                hint: "name spans after pipeline stages or public operations \
                       (`infer.layer[i].ecall`, `recovery.retry`), never after key material"
                    .into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/x/src/a.rs", text)
    }

    #[test]
    fn secret_token_inside_label_literal_is_flagged() {
        let f = scan("fn f(r: &Recorder) { r.record_span(\"seal.secret_key\", c); }\n");
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
    }

    #[test]
    fn secret_binding_formatted_into_label_is_flagged() {
        let f = scan("fn f(r: &Recorder, sk: u64) { r.incr(&format!(\"uses.{sk}\"), 1); }\n");
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
    }

    #[test]
    fn registry_type_name_in_label_is_flagged() {
        let f = scan("fn f(r: &Recorder) { r.record_zero_attempt(\"SealedBlob.open\"); }\n");
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
    }

    #[test]
    fn stage_named_labels_are_fine() {
        let f = scan(
            "fn f(r: &Recorder) {\n    r.record_span(\"infer.layer[1].ecall\", c);\n    \
             r.incr(counters::RECOVERY_ATTEMPTS, 1);\n    \
             r.record_zero_attempt(\"recovery.retry\");\n}\n",
        );
        assert!(check(&Analysis::new(&f)).is_empty());
    }

    #[test]
    fn secret_token_in_the_line_comment_does_not_count() {
        let f = scan("fn f(r: &Recorder) { r.incr(\"epc.hits\", 1); // not the secret_key\n}\n");
        assert!(check(&Analysis::new(&f)).is_empty());
    }

    #[test]
    fn lines_without_record_calls_are_ignored() {
        let f = scan("fn f(sk: u64) -> u64 { sk + 1 }\n");
        assert!(check(&Analysis::new(&f)).is_empty());
    }

    #[test]
    fn secret_token_in_trace_event_name_is_flagged() {
        let f = scan("fn f(r: &Recorder) { r.trace_begin(\"seal.secret_key\", &[]); }\n");
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
    }

    #[test]
    fn secret_binding_in_trace_arg_is_flagged() {
        let f = scan(
            "fn f(r: &Recorder, secret_key: u64) { r.trace_instant(\"epc.load\", \
             &[(\"k\", secret_key.to_string())]); }\n",
        );
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
    }

    #[test]
    fn secret_token_in_gauge_or_histogram_name_is_flagged() {
        let f = scan("fn f(r: &Recorder) { r.gauge(\"private_key.bits\", 1); }\n");
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
        let f = scan("fn f(r: &Recorder) { r.observe(\"SealedBlob.bytes\", 1); }\n");
        assert!(check(&Analysis::new(&f))
            .iter()
            .any(|d| d.rule == "obs-secret-label"));
    }

    #[test]
    fn clean_trace_and_gauge_labels_pass() {
        let f = scan(
            "fn f(r: &Recorder) {\n    r.trace_begin(\"session.request\", \
             &[(\"api\", \"infer_batch\".to_string())]);\n    \
             r.gauge(\"noise.budget.layer[3].pre\", 62);\n    \
             r.observe(\"ecall.bytes\", 4096);\n    \
             r.trace_end(\"session.request\");\n}\n",
        );
        assert!(check(&Analysis::new(&f)).is_empty());
    }

    #[test]
    fn tainted_alias_in_label_argument_is_flagged() {
        let f = scan(
            "fn f(r: &Recorder, blob: &SealedBlob) {\n    let payload = blob.clone();\n    \
             r.trace_instant(\"seal.open\", &[(\"v\", format!(\"{:?}\", payload))]);\n}\n",
        );
        let d = check(&Analysis::new(&f));
        assert!(
            d.iter()
                .any(|d| d.rule == "obs-secret-label" && d.line == 3),
            "{d:?}"
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let f =
            scan("#[cfg(test)]\nmod tests {\n    fn t(r: &Recorder) { r.incr(\"sk\", 1); }\n}\n");
        assert!(check(&Analysis::new(&f)).is_empty());
    }
}
