//! Finding baselines: grandfather the findings a tree already has, fail
//! CI only on *new* ones.
//!
//! A baseline file is a plain, diffable text format — one finding per
//! line, tab-separated:
//!
//! ```text
//! # hesgx-lint baseline — regenerate with --write-baseline
//! wall-clock<TAB>crates/core/src/pipeline.rs<TAB>142
//! ```
//!
//! `--baseline FILE` subtracts matching findings from the report (each
//! entry forgives exactly one finding) and counts them as `grandfathered`;
//! `--write-baseline FILE` records the current findings. The file is
//! checked in, so shrinking it is progress reviewers can see, and a new
//! finding — one not in the file — still fails the run.

use crate::diag::Report;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub line: usize,
}

/// Parses a baseline file. Blank lines and `#` comments are skipped;
/// malformed lines are reported as errors (a corrupt baseline must not
/// silently forgive everything).
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(file), Some(line_no)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>file<TAB>line`",
                i + 1
            ));
        };
        let line_no: usize = line_no
            .parse()
            .map_err(|_| format!("baseline line {}: `{line_no}` is not a line number", i + 1))?;
        out.push(Entry {
            rule: rule.to_string(),
            file: file.to_string(),
            line: line_no,
        });
    }
    Ok(out)
}

/// Renders the report's findings as a baseline file.
pub fn render(report: &Report) -> String {
    let mut out = String::from(
        "# hesgx-lint baseline — findings grandfathered by CI.\n\
         # One finding per line: rule<TAB>file<TAB>line. Shrink me, never grow me;\n\
         # regenerate with `hesgx-lint --workspace --write-baseline <this file>`.\n",
    );
    for d in &report.findings {
        out.push_str(&format!("{}\t{}\t{}\n", d.rule, d.file, d.line));
    }
    out
}

/// Subtracts baseline entries from `report.findings` (each entry forgives
/// one finding with the same rule/file/line) and records the count in
/// `report.grandfathered`.
pub fn apply(report: &mut Report, entries: &[Entry]) {
    let mut remaining: Vec<Entry> = entries.to_vec();
    let mut kept = Vec::with_capacity(report.findings.len());
    for d in report.findings.drain(..) {
        let hit = remaining
            .iter()
            .position(|e| e.rule == d.rule && e.file == d.file && e.line == d.line);
        match hit {
            Some(k) => {
                remaining.swap_remove(k);
                report.grandfathered += 1;
            }
            None => kept.push(d),
        }
    }
    report.findings = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn finding(rule: &'static str, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
            hint: "h".into(),
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let mut report = Report::default();
        report
            .findings
            .push(finding("wall-clock", "crates/a/src/x.rs", 7));
        let text = render(&report);
        let entries = parse(&text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "wall-clock");
        assert_eq!(entries[0].line, 7);
    }

    #[test]
    fn apply_forgives_listed_findings_only() {
        let mut report = Report::default();
        report
            .findings
            .push(finding("wall-clock", "crates/a/src/x.rs", 7));
        report
            .findings
            .push(finding("rng-fork", "crates/a/src/x.rs", 9));
        let entries = parse("wall-clock\tcrates/a/src/x.rs\t7\n").unwrap();
        apply(&mut report, &entries);
        assert_eq!(report.grandfathered, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "rng-fork");
    }

    #[test]
    fn each_entry_forgives_once() {
        let mut report = Report::default();
        report
            .findings
            .push(finding("wall-clock", "crates/a/src/x.rs", 7));
        report
            .findings
            .push(finding("wall-clock", "crates/a/src/x.rs", 7));
        let entries = parse("wall-clock\tcrates/a/src/x.rs\t7\n").unwrap();
        apply(&mut report, &entries);
        assert_eq!(report.grandfathered, 1);
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("not a baseline line\n").is_err());
        assert!(parse("rule\tfile\tNaN\n").is_err());
        assert!(parse("# comment only\n\n").unwrap().is_empty());
    }
}
