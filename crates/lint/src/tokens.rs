//! A flat token stream over the code view.
//!
//! The v1 rules were line-oriented; the v2 rule families (determinism,
//! secret-taint, hot-path allocation) need to reason about *constructs* —
//! function bodies, loop extents, call argument lists, `let` bindings —
//! which requires seeing the file as one ordered sequence of tokens rather
//! than as independent lines. This module produces that sequence from the
//! [`SourceFile`] code view, so everything the lexer already blanked
//! (comments, string interiors) stays invisible here too.
//!
//! The stream is deliberately simple:
//!
//! - **identifiers** — `[A-Za-z0-9_]+` runs starting with a non-digit
//!   (the same definition as [`crate::lexer::ident_positions`]),
//! - **punctuation** — every other non-space character, one token each
//!   (`::` is two `:` tokens; sequence helpers below match across them),
//! - **numbers are skipped** — no rule inspects numeric literals, and
//!   skipping them keeps `1e3` / `0x1f` from masquerading as identifiers.
//!
//! Every token carries its 0-based line and byte column, so findings point
//! at the exact source location and suppression matching keeps working.

use crate::lexer::SourceFile;

/// One token of the code view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 0-based line index.
    pub line: usize,
    /// Byte column of the first character within the line.
    pub col: usize,
    /// The token text (single char for punctuation).
    pub text: String,
    /// Whether this is an identifier (vs punctuation).
    pub is_ident: bool,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is(&self, s: &str) -> bool {
        self.is_ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        !self.is_ident && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Tokenizes the whole code view of `file`.
pub fn tokenize(file: &SourceFile) -> Vec<Tok> {
    let mut out = Vec::new();
    for (line_idx, line) in file.code.iter().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_whitespace() {
                i += 1;
                continue;
            }
            let word_start = b == b'_' || b.is_ascii_alphabetic() || b >= 0x80;
            if word_start || b.is_ascii_digit() {
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric() || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                // Digit-led runs are numeric literals: skip them entirely.
                if word_start {
                    out.push(Tok {
                        line: line_idx,
                        col: start,
                        text: line[start..i].to_string(),
                        is_ident: true,
                    });
                }
                continue;
            }
            out.push(Tok {
                line: line_idx,
                col: i,
                text: line[i..i + 1].to_string(),
                is_ident: false,
            });
            i += 1;
        }
    }
    out
}

/// Whether the tokens at `i` match `pat` exactly: identifiers match by
/// text, single punctuation characters by text. (`"::"` must be written as
/// two `":"` entries.)
pub fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
}

/// The index of the brace/paren/bracket that closes the opener at `open`
/// (which must be `{`, `(` or `[`), or `None` when unbalanced.
pub fn matching(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks.get(open)?.text.as_str() {
        "{" => ('{', '}'),
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The first index `>= from` whose token is the punctuation `c`, ignoring
/// nesting.
pub fn find_punct(toks: &[Tok], from: usize, c: char) -> Option<usize> {
    (from..toks.len()).find(|&k| toks[k].is_punct(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&SourceFile::scan("x.rs", src))
    }

    #[test]
    fn identifiers_and_punctuation_are_split() {
        let t = toks("let x = a.b();\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "a", ".", "b", "(", ")", ";"]);
        assert!(t[0].is_ident);
        assert!(!t[2].is_ident);
    }

    #[test]
    fn numbers_are_skipped_but_their_punctuation_survives() {
        let t = toks("for i in 0..16 { v[i] = 0x1f; }\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["for", "i", "in", ".", ".", "{", "v", "[", "i", "]", "=", ";", "}"]
        );
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let t = toks("let s = \"Instant::now()\"; // Instant::now()\n");
        assert!(t.iter().all(|t| t.text != "Instant"));
    }

    #[test]
    fn positions_point_into_the_source() {
        let t = toks("fn f() {\n    g();\n}\n");
        let g = t.iter().find(|t| t.is("g")).unwrap();
        assert_eq!(g.line, 1);
        assert_eq!(g.col, 4);
    }

    #[test]
    fn seq_matches_paths() {
        let t = toks("Instant::now()\n");
        assert!(seq(&t, 0, &["Instant", ":", ":", "now"]));
        assert!(!seq(&t, 0, &["Instant", ":", "now"]));
    }

    #[test]
    fn matching_brace_skips_nested() {
        let t = toks("{ a { b } c } d\n");
        let close = matching(&t, 0).unwrap();
        assert!(t[close].is_punct('}'));
        assert_eq!(t[close + 1].text, "d");
    }

    #[test]
    fn unbalanced_open_returns_none() {
        let t = toks("{ a { b }\n");
        assert_eq!(matching(&t, 0), None);
    }
}
