//! Function scopes over the token stream: brace-tracked body extents,
//! loop spans, retry-call argument spans, and the `hot` marker.
//!
//! The v2 rule families are *function-oriented*: `rng-fork` cares about
//! draws inside retry bodies, `hot-path-alloc` about allocations inside the
//! loops of functions marked hot, `unordered-iter` about iteration inside
//! functions that feed serialized bytes. This module finds each `fn`, its
//! body `{...}` extent, the loops and retry-closure argument lists inside
//! it, and whether the function carries a `// hesgx-lint: hot` marker.

use crate::lexer::SourceFile;
use crate::tokens::{matching, Tok};

/// A contiguous token-index range `[start, end]` (inclusive; for brace
/// spans `start` is the opener and `end` the matching closer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Whether token index `i` lies inside the span (inclusive).
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i <= self.end
    }
}

/// One loop inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct LoopSpan {
    /// The body braces of the loop.
    pub body: Span,
    /// `"for"`, `"while"`, or `"loop"`.
    pub keyword: &'static str,
}

/// One function and the structure the rules need from it.
#[derive(Debug)]
pub struct FnScope {
    /// The function name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Tokens from the `fn` keyword to just before the body `{` (or the
    /// terminating `;` for bodyless declarations).
    pub sig: Span,
    /// The body braces, `None` for trait-method declarations.
    pub body: Option<Span>,
    /// Identifier texts of the return type (empty when none declared).
    pub ret_idents: Vec<String>,
    /// Whether the signature line lies in `#[cfg(test)]` code.
    pub is_test: bool,
    /// Whether the function carries a `// hesgx-lint: hot` marker.
    pub hot: bool,
    /// Loops in the body, in token order (nested loops appear separately).
    pub loops: Vec<LoopSpan>,
    /// Argument-list spans of calls to `*retry*`-named functions — the
    /// scope a retried closure body lives in.
    pub retry_spans: Vec<Span>,
}

/// Extracts every function in `file` from its token stream.
pub fn functions(file: &SourceFile, toks: &[Tok]) -> Vec<FnScope> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is("fn") || !toks.get(i + 1).is_some_and(|t| t.is_ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let sig_line = toks[i].line;
        // Scan to the body `{` or a terminating `;` (trait declarations).
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let sig = Span {
            start: i,
            end: j.saturating_sub(1),
        };
        let body = open.and_then(|o| matching(toks, o).map(|c| Span { start: o, end: c }));
        let ret_idents = return_idents(toks, sig);
        let is_test = file.in_test.get(sig_line).copied().unwrap_or(false);
        let hot = has_hot_marker(file, sig_line);
        let (loops, retry_spans) = match body {
            Some(b) => (find_loops(toks, b), find_retry_spans(toks, b)),
            None => (Vec::new(), Vec::new()),
        };
        out.push(FnScope {
            name,
            sig_line,
            sig,
            body,
            ret_idents,
            is_test,
            hot,
            loops,
            retry_spans,
        });
        // Continue after the signature so nested closures' `fn` items (and
        // functions declared inside bodies) are still discovered.
        i = sig.end + 1;
    }
    out
}

/// Identifier texts after the `->` of a signature span.
fn return_idents(toks: &[Tok], sig: Span) -> Vec<String> {
    for k in sig.start..sig.end {
        if toks[k].is_punct('-') && toks.get(k + 1).is_some_and(|t| t.is_punct('>')) {
            return toks[k + 2..=sig.end]
                .iter()
                .filter(|t| t.is_ident)
                .map(|t| t.text.clone())
                .collect();
        }
    }
    Vec::new()
}

/// Whether a `// hesgx-lint: hot` marker annotates the function whose `fn`
/// keyword sits on 0-based `sig_line`: either trailing on that line, or on
/// one of the attribute/comment/blank lines directly above it.
fn has_hot_marker(file: &SourceFile, sig_line: usize) -> bool {
    if is_hot_comment(file.comments.get(sig_line).map_or("", String::as_str)) {
        return true;
    }
    let mut k = sig_line;
    while k > 0 {
        k -= 1;
        let code = file.code_line(k).trim();
        if is_hot_comment(file.comments.get(k).map_or("", String::as_str)) {
            return true;
        }
        // Keep climbing over attributes, attribute continuations, and
        // comment-only/blank lines; anything else ends the header.
        let attr_ish = code.is_empty() || code.starts_with("#[") || code.ends_with(']');
        if !attr_ish {
            return false;
        }
    }
    false
}

/// Whether a line-comment text is a `hesgx-lint: hot` marker.
pub fn is_hot_comment(comment: &str) -> bool {
    let Some(content) = comment.strip_prefix("//") else {
        return false;
    };
    if content.starts_with('/') || content.starts_with('!') {
        return false; // doc comments stay documentation
    }
    content.trim() == "hesgx-lint: hot"
}

/// Finds every `for`/`while`/`loop` body inside `body`.
fn find_loops(toks: &[Tok], body: Span) -> Vec<LoopSpan> {
    let mut out = Vec::new();
    for k in body.start + 1..body.end {
        let keyword = if toks[k].is("for") {
            "for"
        } else if toks[k].is("while") {
            "while"
        } else if toks[k].is("loop") {
            "loop"
        } else {
            continue;
        };
        // `.for_each` style method names are idents, not keywords; a `.`
        // immediately before disqualifies (no such method names match the
        // exact texts above, but stay defensive).
        if k > 0 && toks[k - 1].is_punct('.') {
            continue;
        }
        // The loop body is the next `{` after the header expression.
        let Some(open) = (k + 1..=body.end).find(|&m| toks[m].is_punct('{')) else {
            continue;
        };
        if let Some(close) = matching(toks, open) {
            if close <= body.end {
                out.push(LoopSpan {
                    body: Span {
                        start: open,
                        end: close,
                    },
                    keyword,
                });
            }
        }
    }
    out
}

/// Finds the argument-list spans of calls whose callee name contains
/// `retry` (e.g. `retry_with_cost(...)`, `transform_cells_retrying(...)`).
fn find_retry_spans(toks: &[Tok], body: Span) -> Vec<Span> {
    let mut out = Vec::new();
    for k in body.start + 1..body.end {
        if !toks[k].is_ident || !toks[k].text.to_ascii_lowercase().contains("retry") {
            continue;
        }
        if !toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if let Some(close) = matching(toks, k + 1) {
            if close <= body.end {
                out.push(Span {
                    start: k + 1,
                    end: close,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    fn scopes(src: &str) -> (Vec<Tok>, Vec<FnScope>) {
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        let toks = tokenize(&f);
        let fns = functions(&f, &toks);
        (toks, fns)
    }

    #[test]
    fn fn_name_body_and_return_are_extracted() {
        let (toks, fns) = scopes("fn make() -> Result<Session> {\n    build()\n}\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "make");
        assert_eq!(fns[0].ret_idents, vec!["Result", "Session"]);
        let body = fns[0].body.unwrap();
        assert!(toks[body.start].is_punct('{'));
        assert!(toks[body.end].is_punct('}'));
    }

    #[test]
    fn bodyless_trait_method_has_no_body() {
        let (_, fns) = scopes("trait T {\n    fn f(&self) -> u64;\n}\n");
        assert_eq!(fns.len(), 1);
        assert!(fns[0].body.is_none());
    }

    #[test]
    fn loops_are_found_including_nested() {
        let (_, fns) =
            scopes("fn f() {\n    for i in xs {\n        while go {\n            step();\n        }\n    }\n    loop {\n        break;\n    }\n}\n");
        let kinds: Vec<&str> = fns[0].loops.iter().map(|l| l.keyword).collect();
        assert_eq!(kinds, vec!["for", "while", "loop"]);
    }

    #[test]
    fn retry_call_arguments_form_a_span() {
        let (toks, fns) =
            scopes("fn f() {\n    retry_with_cost(policy, |attempt| {\n        op()\n    })\n}\n");
        assert_eq!(fns[0].retry_spans.len(), 1);
        let span = fns[0].retry_spans[0];
        let inner: Vec<&str> = toks[span.start..=span.end]
            .iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(inner, vec!["policy", "attempt", "op"]);
    }

    #[test]
    fn hot_marker_is_detected_above_and_trailing() {
        let (_, fns) = scopes("// hesgx-lint: hot\n#[inline]\nfn conv() {}\n");
        assert!(fns[0].hot);
        let (_, fns) = scopes("fn conv() { // hesgx-lint: hot\n}\n");
        assert!(fns[0].hot);
        let (_, fns) = scopes("// plain comment\nfn conv() {}\n");
        assert!(!fns[0].hot);
    }

    #[test]
    fn hot_marker_does_not_leak_past_non_attribute_code() {
        let (_, fns) = scopes("// hesgx-lint: hot\nfn first() {}\n\nfn second() {}\n");
        assert!(fns[0].hot);
        assert!(!fns[1].hot);
    }

    #[test]
    fn test_functions_are_marked() {
        let (_, fns) = scopes("#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod() {}\n");
        assert!(fns[0].is_test);
        assert!(!fns[1].is_test);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let (_, fns) = scopes("fn f() {}\nimpl Debug for X {\n    fn g(&self) {}\n}\n");
        assert!(fns.iter().all(|s| s.loops.is_empty()));
        assert_eq!(fns.len(), 2);
    }
}
