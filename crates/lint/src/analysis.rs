//! Per-file analysis bundle: the token stream, function scopes, and
//! dataflow tables, computed once and shared by every rule.

use crate::config;
use crate::dataflow::{self, FileFlow};
use crate::lexer::SourceFile;
use crate::scope::{self, FnScope};
use crate::tokens::{self, Tok};

/// Everything the rules need to know about one file.
pub struct Analysis<'a> {
    /// The scanned file (code view, comments, test map).
    pub file: &'a SourceFile,
    /// The flat token stream.
    pub toks: Vec<Tok>,
    /// Function scopes in declaration order.
    pub fns: Vec<FnScope>,
    /// Binding tables (parallel to `fns`) plus file-level field/return
    /// tables.
    pub flow: FileFlow,
}

impl<'a> Analysis<'a> {
    /// Runs the front end on one scanned file.
    pub fn new(file: &'a SourceFile) -> Analysis<'a> {
        let toks = tokens::tokenize(file);
        let fns = scope::functions(file, &toks);
        let tracked = config::tracked_types();
        let flow = dataflow::analyze(&toks, &fns, &tracked);
        Analysis {
            file,
            toks,
            fns,
            flow,
        }
    }

    /// The index (into `fns`) of the function whose body contains token
    /// `i`, preferring the innermost (latest-declared) match.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.body.is_some_and(|b| b.contains(i)) || s.sig.contains(i))
            .map(|(idx, _)| idx)
    }

    /// The tracked tag of the identifier token at `i`, resolving bindings
    /// positionally and `self.field` reads through the field table.
    /// Identifiers in method/field position on a non-`self` receiver are
    /// not values and resolve to `None`.
    pub fn tag_of(&self, i: usize) -> Option<&str> {
        let t = self.toks.get(i)?;
        if !t.is_ident {
            return None;
        }
        if i > 0 && self.toks[i - 1].is_punct('.') {
            // `recv.name`: only `self.field` resolves.
            if i >= 2 && self.toks[i - 2].is("self") {
                return self.flow.fields.get(&t.text).map(String::as_str);
            }
            return None;
        }
        let f = self.enclosing_fn(i)?;
        self.flow.fns[f].tag_at(&t.text, i)
    }

    /// The first identifier on 0-based `line` at a column past `col` whose
    /// dataflow tag is a secret-registry type — an alias carrying secret
    /// material. Returns the alias text and the registry type name. The
    /// column filter keeps receivers *before* a macro/record call (e.g.
    /// `base.fork(&format!(..))`) from counting as leaked arguments.
    pub fn secret_alias_after(&self, line: usize, col: usize) -> Option<(String, &'static str)> {
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.line != line || !t.is_ident || t.col <= col {
                continue;
            }
            if let Some(tag) = self.tag_of(i) {
                if let Some(st) = config::SECRET_TYPES.iter().find(|s| s.name == tag) {
                    return Some((t.text.clone(), st.name));
                }
            }
        }
        None
    }
}
