//! The `hesgx-lint` command-line driver.
//!
//! ```text
//! hesgx-lint --workspace [--root DIR] [--json | --sarif]
//!            [--baseline FILE | --write-baseline FILE]
//! hesgx-lint [--root DIR] [--json | --sarif] FILE...
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    workspace: bool,
    json: bool,
    sarif: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    files: Vec<PathBuf>,
}

const USAGE: &str = "usage: hesgx-lint (--workspace | FILE...) [--root DIR] [--json | --sarif]\n\
\x20                 [--baseline FILE | --write-baseline FILE]\n\
\n\
Checks the hesgx workspace invariants: secret hygiene (including dataflow\n\
alias taint), enclave panic-freedom, constant-time discipline, unsafe\n\
inventory, the ECALL cost audit, replay determinism (wall-clock reads,\n\
unordered-container iteration, RNG forking in retry bodies), hot-path\n\
allocation, and deprecated Session shims. Suppress a finding inline with\n\
a justified marker:\n\
    // hesgx-lint: allow(<rule>, reason = \"...\")\n\
\n\
  --json                machine-readable report (byte-stable across runs)\n\
  --sarif               SARIF 2.1.0 report for code-scanning upload\n\
  --baseline FILE       subtract grandfathered findings; fail only on new ones\n\
  --write-baseline FILE record the current findings as the new baseline\n";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        json: false,
        sarif: false,
        root: None,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--baseline" => {
                let file = args.next().ok_or("--baseline requires a file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => {
                let file = args.next().ok_or("--write-baseline requires a file")?;
                opts.write_baseline = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    // Exactly one input mode: --workspace with no files, or files only.
    if opts.workspace != opts.files.is_empty() {
        return Err("pass either --workspace or one or more files".into());
    }
    if opts.json && opts.sarif {
        return Err("--json and --sarif are mutually exclusive".into());
    }
    if opts.baseline.is_some() && opts.write_baseline.is_some() {
        return Err("--baseline and --write-baseline are mutually exclusive".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("hesgx-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = opts
        .root
        .clone()
        .or_else(|| hesgx_lint::find_workspace_root(&cwd))
        .unwrap_or(cwd);

    let paths = if opts.workspace {
        match hesgx_lint::collect_workspace_files(&root) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("hesgx-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.files.clone()
    };

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        match hesgx_lint::load_file(&root, path) {
            Ok(f) => files.push(f),
            Err(e) => {
                eprintln!("hesgx-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut report = hesgx_lint::lint_sources(&files);

    if let Some(path) = &opts.write_baseline {
        let text = hesgx_lint::baseline::render(&report);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("hesgx-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "hesgx-lint: wrote {} grandfathered finding(s) to {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hesgx-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let entries = match hesgx_lint::baseline::parse(&text) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("hesgx-lint: {}: {msg}", path.display());
                return ExitCode::from(2);
            }
        };
        hesgx_lint::baseline::apply(&mut report, &entries);
    }

    if opts.json {
        print!("{}", report.render_json());
    } else if opts.sarif {
        print!("{}", hesgx_lint::sarif::render_sarif(&report));
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
