//! The `hesgx-lint` command-line driver.
//!
//! ```text
//! hesgx-lint --workspace [--root DIR] [--json]
//! hesgx-lint [--root DIR] [--json] FILE...
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    workspace: bool,
    json: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

const USAGE: &str = "usage: hesgx-lint (--workspace | FILE...) [--root DIR] [--json]\n\
\n\
Checks the hesgx workspace invariants: secret hygiene, enclave panic-\n\
freedom, constant-time discipline, unsafe inventory, and the ECALL cost\n\
audit. Suppress a finding inline with a justified marker:\n\
    // hesgx-lint: allow(<rule>, reason = \"...\")\n";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        json: false,
        root: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    // Exactly one input mode: --workspace with no files, or files only.
    if opts.workspace != opts.files.is_empty() {
        return Err("pass either --workspace or one or more files".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("hesgx-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = opts
        .root
        .clone()
        .or_else(|| hesgx_lint::find_workspace_root(&cwd))
        .unwrap_or(cwd);

    let paths = if opts.workspace {
        match hesgx_lint::collect_workspace_files(&root) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("hesgx-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.files.clone()
    };

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        match hesgx_lint::load_file(&root, path) {
            Ok(f) => files.push(f),
            Err(e) => {
                eprintln!("hesgx-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = hesgx_lint::lint_sources(&files);
    if opts.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
