//! Diagnostics and report rendering (human-readable and `--json`).

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `enclave-panic`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress it with a justification).
    pub hint: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, ordered by (file, line).
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by a justified `hesgx-lint: allow(...)` marker.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Whether the run found nothing (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings for stable output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    hint: {}\n",
                d.file, d.line, d.rule, d.message, d.hint
            ));
        }
        out.push_str(&format!(
            "hesgx-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files
        ));
        out
    }

    /// Renders the report as a JSON object (hand-rolled; no dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.message),
                json_str(&d.hint)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"suppressed\": {},\n  \"files\": {}\n}}\n",
            self.suppressed, self.files
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "enclave-panic",
                message: "`.unwrap()` in enclave code \"quoted\"".into(),
                hint: "return hesgx_core::Error instead".into(),
            }],
            suppressed: 2,
            files: 10,
        }
    }

    #[test]
    fn human_output_contains_location_rule_and_hint() {
        let text = sample().render_human();
        assert!(text.contains("crates/x/src/lib.rs:3: [enclave-panic]"));
        assert!(text.contains("hint: return hesgx_core::Error"));
        assert!(text.contains("1 finding(s), 2 suppressed, 10 file(s)"));
    }

    #[test]
    fn json_output_is_escaped() {
        let text = sample().render_json();
        assert!(text.contains("\"rule\": \"enclave-panic\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"suppressed\": 2"));
    }

    #[test]
    fn json_empty_report() {
        let r = Report::default();
        let text = r.render_json();
        assert!(text.contains("\"findings\": []"));
    }
}
