//! Diagnostics and report rendering (human-readable and `--json`).

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `enclave-panic`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress it with a justification).
    pub hint: String,
}

/// One stale `allow` marker, itemized for the `--json` audit view (the
/// marker also produces a regular `suppression` finding; this list exists
/// so tooling can count and locate suppression rot without parsing
/// messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleSuppression {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the marker.
    pub line: usize,
    /// The rule the stale marker names.
    pub rule: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, ordered by (file, line).
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by a justified `hesgx-lint: allow(...)` marker.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files: usize,
    /// Stale markers (suppressing nothing), itemized.
    pub stale: Vec<StaleSuppression>,
    /// Findings forgiven by a `--baseline` file.
    pub grandfathered: usize,
}

impl Report {
    /// Whether the run found nothing (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Sorts findings and stale markers for stable output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.stale
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    hint: {}\n",
                d.file, d.line, d.rule, d.message, d.hint
            ));
        }
        out.push_str(&format!(
            "hesgx-lint: {} finding(s), {} suppressed, {} file(s) scanned, \
             {} stale marker(s), {} grandfathered\n",
            self.findings.len(),
            self.suppressed,
            self.files,
            self.stale.len(),
            self.grandfathered
        ));
        out
    }

    /// Renders the report as a JSON object (hand-rolled; no dependencies).
    /// Key order and finding order are fixed, so two runs over the same
    /// tree are byte-identical.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.message),
                json_str(&d.hint)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"stale_suppressions\": [");
        for (i, s) in self.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}}}",
                json_str(&s.file),
                s.line,
                json_str(&s.rule)
            ));
        }
        if !self.stale.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"stale_count\": {},\n  \"suppressed\": {},\n  \"grandfathered\": {},\n  \"files\": {}\n}}\n",
            self.stale.len(),
            self.suppressed,
            self.grandfathered,
            self.files
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "enclave-panic",
                message: "`.unwrap()` in enclave code \"quoted\"".into(),
                hint: "return hesgx_core::Error instead".into(),
            }],
            suppressed: 2,
            files: 10,
            stale: vec![StaleSuppression {
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                rule: "const-time".into(),
            }],
            grandfathered: 1,
        }
    }

    #[test]
    fn human_output_contains_location_rule_and_hint() {
        let text = sample().render_human();
        assert!(text.contains("crates/x/src/lib.rs:3: [enclave-panic]"));
        assert!(text.contains("hint: return hesgx_core::Error"));
        assert!(text.contains("1 finding(s), 2 suppressed, 10 file(s)"));
        assert!(text.contains("1 stale marker(s), 1 grandfathered"));
    }

    #[test]
    fn json_output_is_escaped() {
        let text = sample().render_json();
        assert!(text.contains("\"rule\": \"enclave-panic\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"suppressed\": 2"));
    }

    #[test]
    fn json_itemizes_stale_suppressions() {
        let text = sample().render_json();
        assert!(text.contains("\"stale_suppressions\": ["));
        assert!(text.contains("\"line\": 9, \"rule\": \"const-time\""));
        assert!(text.contains("\"stale_count\": 1"));
        assert!(text.contains("\"grandfathered\": 1"));
    }

    #[test]
    fn json_empty_report() {
        let r = Report::default();
        let text = r.render_json();
        assert!(text.contains("\"findings\": []"));
        assert!(text.contains("\"stale_suppressions\": []"));
        assert!(text.contains("\"stale_count\": 0"));
    }

    #[test]
    fn sort_orders_stale_entries() {
        let mut r = Report::default();
        r.stale.push(StaleSuppression {
            file: "b.rs".into(),
            line: 1,
            rule: "x".into(),
        });
        r.stale.push(StaleSuppression {
            file: "a.rs".into(),
            line: 5,
            rule: "y".into(),
        });
        r.sort();
        assert_eq!(r.stale[0].file, "a.rs");
    }
}
