//! A minimal Rust source scanner producing a per-line "code view".
//!
//! The rules in this crate are line-oriented: they look for tokens like
//! `.unwrap(`, `#[derive(Debug)]`, or `==` in source text. Doing that
//! naively over raw text drowns in false positives from comments, doc
//! comments, and string literals ("never call `.unwrap()` here" in a doc
//! comment must not trip the panic-freedom rule). So this module runs a
//! small state machine over each file and *blanks* — replaces with spaces,
//! preserving column positions — everything that is not code:
//!
//! - line comments (`//`, `///`, `//!`) — but the raw line is kept so
//!   suppression markers (`// hesgx-lint: allow(...)`) can still be parsed,
//! - block comments, including nesting (`/* /* */ */`),
//! - the *interiors* of string, raw-string, byte-string, and char literals
//!   (the delimiting quotes survive so tokenization still sees a literal),
//!
//! and additionally marks every line that falls inside a `#[cfg(test)]`
//! module. Test code is exempt from the enclave rules by policy: `unwrap`
//! in a test is a legitimate assertion, not a panic smuggled into an ECALL.
//!
//! This is not a full Rust lexer — it does not tokenize numbers, handle
//! every raw-identifier corner, or parse macros. It only has to be exact
//! about the comment/string/char boundaries that decide whether a byte is
//! code, which is a small, closed problem.

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (or the path as given
    /// for loose files).
    pub path: String,
    /// The raw lines, untouched. Line `i` is `raw[i]`, 0-based.
    pub raw: Vec<String>,
    /// The code view: comments and literal interiors blanked with spaces.
    pub code: Vec<String>,
    /// The text of the line comment on each line (from `//` to end of
    /// line), empty if the line has none. Only *true* comments land here —
    /// a `"// ..."` inside a string literal does not. Suppression markers
    /// are parsed from this view so markers quoted in strings are inert.
    pub comments: Vec<String>,
    /// Whether each line lies inside a `#[cfg(test)]` module body.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Scans `text` into raw/code/test views.
    pub fn scan(path: &str, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let (code, comments) = blank_non_code(&raw);
        let in_test = mark_test_lines(&code);
        SourceFile {
            path: path.replace('\\', "/"),
            raw,
            code,
            comments,
            in_test,
        }
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.raw.len()
    }

    /// The code view of 0-based line `i`, or `""` past the end.
    pub fn code_line(&self, i: usize) -> &str {
        self.code.get(i).map_or("", String::as_str)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside `"..."`.
    Str,
    /// Inside `r##"..."##` with the given number of hashes.
    RawStr(u32),
    /// Inside `'...'` (a char literal, not a lifetime).
    Char,
}

/// Produces the code view (same line/column shape as `raw`, with comments
/// and literal interiors replaced by spaces) plus the per-line comment view.
fn blank_non_code(raw: &[String]) -> (Vec<String>, Vec<String>) {
    let mut out = Vec::with_capacity(raw.len());
    let mut comments = Vec::with_capacity(raw.len());
    let mut state = State::Code;
    for line in raw {
        let chars: Vec<char> = line.chars().collect();
        let mut view: Vec<char> = Vec::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => {
                    if c == '/' && next == Some('/') {
                        // Line comment: blank the rest of the line.
                        comment = chars[i..].iter().collect();
                        while view.len() < chars.len() {
                            view.push(' ');
                        }
                        i = chars.len();
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::Block(1);
                        view.push(' ');
                        view.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = State::Str;
                        view.push('"');
                        i += 1;
                        continue;
                    }
                    if c == 'r' || c == 'b' {
                        // r"..", r#"..."#, br".." , b"..": detect a raw/byte
                        // string opener starting at this identifier-ish char.
                        if let Some((hashes, consumed)) = raw_string_open(&chars, i) {
                            state = if hashes == u32::MAX {
                                State::Str // b"..." — plain string rules
                            } else {
                                State::RawStr(hashes)
                            };
                            view.extend(std::iter::repeat_n(' ', consumed));
                            // Keep the opening quote visible for tokenizers.
                            *view.last_mut().expect("consumed >= 1") = '"';
                            i += consumed;
                            continue;
                        }
                    }
                    if c == '\'' {
                        if is_char_literal(&chars, i) {
                            state = State::Char;
                            view.push('\'');
                            i += 1;
                            continue;
                        }
                        // A lifetime ('a) or loop label — plain code.
                        view.push(c);
                        i += 1;
                        continue;
                    }
                    view.push(c);
                    i += 1;
                }
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        view.push(' ');
                        view.push(' ');
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        view.push(' ');
                        view.push(' ');
                        i += 2;
                    } else {
                        view.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        // Escape: blank both chars (covers \" and \\).
                        view.push(' ');
                        if next.is_some() {
                            view.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        state = State::Code;
                        view.push('"');
                        i += 1;
                    } else {
                        view.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        state = State::Code;
                        view.push('"');
                        view.extend(std::iter::repeat_n(' ', hashes as usize));
                        i += 1 + hashes as usize;
                    } else {
                        view.push(' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\\' {
                        view.push(' ');
                        if next.is_some() {
                            view.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '\'' {
                        state = State::Code;
                        view.push('\'');
                        i += 1;
                    } else {
                        view.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // Char literals cannot span lines; plain strings, raw strings, and
        // block comments can.
        if state == State::Char {
            state = State::Code;
        }
        out.push(view.into_iter().collect());
        comments.push(comment);
    }
    (out, comments)
}

/// If `chars[i..]` opens a raw or byte string (`r"`, `r#"`, `br#"`, `b"`),
/// returns `(hash_count, chars_consumed)`. `hash_count == u32::MAX` marks a
/// plain byte string (escape rules of a normal string).
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    // Must not be the tail of a longer identifier (e.g. `var` ending in r).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    let mut saw_r = false;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'r') {
            saw_r = true;
            j += 1;
        }
    } else if chars[j] == 'r' {
        saw_r = true;
        j += 1;
    } else {
        return None;
    }
    if saw_r {
        let mut hashes = 0u32;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some((hashes, j - i + 1));
        }
        None
    } else {
        // b"..."
        if chars.get(j) == Some(&'"') {
            return Some((u32::MAX, j - i + 1));
        }
        None
    }
}

/// Whether the `"` at `chars[i]` is followed by `hashes` `#` characters.
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal `'x'` from a lifetime `'a`. A char literal
/// closes with `'` after one (possibly escaped) character; a lifetime never
/// has a closing quote.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` module bodies by brace counting over
/// the code view. The attribute arms a "pending" flag; the next `{` opens
/// the region (a `;` first — `#[cfg(test)] mod tests;` — cancels it), and
/// the matching `}` closes it. Nested test modules extend naturally since
/// the tracking uses absolute brace depth.
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut open_at: Option<i64> = None;
    for (idx, line) in code.iter().enumerate() {
        if open_at.is_some() {
            in_test[idx] = true;
        }
        if line.replace(' ', "").contains("#[cfg(test)]") {
            pending = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && open_at.is_none() {
                        open_at = Some(depth);
                        pending = false;
                        in_test[idx] = true;
                    }
                }
                '}' => {
                    if let Some(open) = open_at {
                        if depth == open {
                            open_at = None;
                        }
                    }
                    depth -= 1;
                }
                ';' if pending && open_at.is_none() => pending = false,
                _ => {}
            }
        }
    }
    in_test
}

/// Splits a code-view line into identifier tokens (`[A-Za-z0-9_]+` runs
/// starting with a non-digit) together with their byte offsets.
pub fn ident_positions(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut start = None;
    for (i, &b) in bytes.iter().enumerate() {
        let word = b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80;
        match (start, word) {
            (None, true) if !b.is_ascii_digit() => start = Some(i),
            (Some(s), false) => {
                out.push((s, &line[s..i]));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push((s, &line[s..]));
    }
    out
}

/// The identifier tokens of a code-view line, without positions.
pub fn identifiers(line: &str) -> Vec<&str> {
    ident_positions(line).into_iter().map(|(_, w)| w).collect()
}

/// The first non-space character before byte `pos`, if any.
pub fn prev_nonspace(line: &str, pos: usize) -> Option<char> {
    line[..pos].chars().rev().find(|c| !c.is_whitespace())
}

/// The first non-space character at or after byte `pos`, if any.
pub fn next_nonspace(line: &str, pos: usize) -> Option<char> {
    line[pos..].chars().find(|c| !c.is_whitespace())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("x.rs", text)
    }

    #[test]
    fn line_comments_are_blanked() {
        let f = scan("let x = 1; // call .unwrap() never\n");
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[0].contains("let x = 1;"));
        assert!(f.raw[0].contains("unwrap"));
    }

    #[test]
    fn doc_comments_are_blanked() {
        let f = scan("/// panics via .unwrap()\nfn f() {}\n");
        assert!(!f.code[0].contains("unwrap"));
        assert_eq!(f.code[1], "fn f() {}");
    }

    #[test]
    fn string_interiors_are_blanked_but_quotes_survive() {
        let f = scan("let s = \"do not .unwrap() me\";\n");
        assert!(!f.code[0].contains("unwrap"));
        assert_eq!(f.code[0].matches('"').count(), 2);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let f = scan("let s = \"a\\\"b.unwrap()\"; let y = 2;\n");
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[0].contains("let y = 2;"));
    }

    #[test]
    fn raw_strings_blank_across_lines() {
        let f = scan("let s = r#\"has .unwrap()\nand \"quotes\" more\"#;\nlet t = 3;\n");
        assert!(!f.code[0].contains("unwrap"));
        assert!(!f.code[1].contains("quotes"));
        assert!(f.code[1].ends_with(';'));
        assert_eq!(f.code[2], "let t = 3;");
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("/* outer /* inner .unwrap() */ still out */ let z = 1;\n");
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[0].contains("let z = 1;"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let f = scan("let c = '\"'; fn f<'a>(x: &'a str) {} let d = 'x';\n");
        // The quote inside the char literal must not start a string.
        assert!(f.code[0].contains("fn f<'a>"));
        assert!(f.code[0].contains("let d ="));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = scan(src);
        assert_eq!(f.in_test, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_external_mod_decl_does_not_arm() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { let a = S { b: 1 }; }\n";
        let f = scan(src);
        assert!(!f.in_test[2]);
    }

    #[test]
    fn identifier_extraction() {
        assert_eq!(
            identifiers("let user_secret = keys.sk0;"),
            vec!["let", "user_secret", "keys", "sk0"]
        );
    }
}
