//! Inline suppression markers.
//!
//! A finding can be silenced — with a mandatory justification — by:
//!
//! ```text
//! // hesgx-lint: allow(enclave-panic, reason = "slice length checked above")
//! ```
//!
//! A marker on its own line applies to the next line containing code; a
//! marker trailing code applies to that same line. Markers are themselves
//! linted: an unknown rule id, a missing reason, or a marker that silences
//! nothing each produce a diagnostic, so suppressions cannot rot silently.

use crate::config::RULE_IDS;
use crate::diag::Diagnostic;
use crate::lexer::SourceFile;

/// A parsed, well-formed `allow` marker.
pub struct Suppression {
    /// 1-based line of the marker itself.
    pub marker_line: usize,
    /// 1-based line the marker applies to.
    pub target_line: usize,
    /// The rule it silences.
    pub rule: String,
    /// Whether a finding actually matched it.
    pub used: bool,
}

/// Parses all markers in `file`. Returns the well-formed suppressions plus
/// diagnostics for malformed ones.
pub fn parse(file: &SourceFile) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for (idx, comment) in file.comments.iter().enumerate() {
        // Test code is exempt from every rule, so markers there are inert.
        if file.in_test.get(idx) == Some(&true) {
            continue;
        }
        let Some(body) = marker_body(comment) else {
            continue;
        };
        // `// hesgx-lint: hot` is the hot-path marker consumed by the scope
        // tracker, not a suppression — leave it alone here.
        if crate::scope::is_hot_comment(comment) {
            continue;
        }
        let line = idx + 1;
        match parse_marker_body(body) {
            Ok((rule, has_reason)) => {
                if !RULE_IDS.contains(&rule.as_str()) {
                    diags.push(Diagnostic {
                        file: file.path.clone(),
                        line,
                        rule: "suppression",
                        message: format!("unknown rule `{rule}` in hesgx-lint allow marker"),
                        hint: format!("valid rules: {}", RULE_IDS.join(", ")),
                    });
                    continue;
                }
                if !has_reason {
                    diags.push(Diagnostic {
                        file: file.path.clone(),
                        line,
                        rule: "suppression",
                        message: format!("allow({rule}) has no reason"),
                        hint: "write `allow(<rule>, reason = \"why this is safe\")` — \
                               unjustified suppressions are not accepted"
                            .into(),
                    });
                    continue;
                }
                let target_line = target_of(file, idx);
                sups.push(Suppression {
                    marker_line: line,
                    target_line,
                    rule,
                    used: false,
                });
            }
            Err(msg) => diags.push(Diagnostic {
                file: file.path.clone(),
                line,
                rule: "suppression",
                message: msg,
                hint: "expected `// hesgx-lint: allow(<rule>, reason = \"...\")`".into(),
            }),
        }
    }
    (sups, diags)
}

/// Emits a diagnostic per suppression that matched no finding.
pub fn unused_diags(file: &SourceFile, sups: &[Suppression]) -> Vec<Diagnostic> {
    sups.iter()
        .filter(|s| !s.used)
        .map(|s| Diagnostic {
            file: file.path.clone(),
            line: s.marker_line,
            rule: "suppression",
            message: format!(
                "allow({}) suppresses nothing on line {}",
                s.rule, s.target_line
            ),
            hint: "remove the stale marker (the code it excused has changed)".into(),
        })
        .collect()
}

/// Extracts the marker text from a line comment, or `None` when the
/// comment is not a marker. A marker is a *plain* `//` comment (doc
/// comments are documentation — examples there must stay inert) whose
/// content begins with `hesgx-lint:`; prose that merely mentions the tool
/// mid-sentence does not count.
fn marker_body(comment: &str) -> Option<&str> {
    let content = comment.strip_prefix("//")?;
    if content.starts_with('/') || content.starts_with('!') {
        return None;
    }
    let content = content.trim_start();
    content.starts_with("hesgx-lint:").then_some(content)
}

/// Parses `hesgx-lint: allow(rule, reason = "...")`, returning the rule and
/// whether a non-empty reason is present.
fn parse_marker_body(body: &str) -> Result<(String, bool), String> {
    let rest = body
        .strip_prefix("hesgx-lint:")
        .ok_or_else(|| "malformed hesgx-lint marker".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or_else(|| "hesgx-lint marker must be `allow(...)`".to_string())?;
    let close = rest
        .rfind(')')
        .ok_or_else(|| "unclosed hesgx-lint allow marker".to_string())?;
    let inner = &rest[..close];
    let (rule, tail) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), inner[c + 1..].trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return Err("allow marker names no rule".into());
    }
    let has_reason = match tail.strip_prefix("reason") {
        Some(after) => {
            let after = after.trim_start();
            match after.strip_prefix('=') {
                Some(v) => {
                    let v = v.trim();
                    v.len() > 2 && v.starts_with('"') && v.ends_with('"')
                }
                None => false,
            }
        }
        None => false,
    };
    Ok((rule.to_string(), has_reason))
}

/// The 1-based line a marker at 0-based `idx` applies to: the same line if
/// it trails code, else the next line whose code view is non-blank.
fn target_of(file: &SourceFile, idx: usize) -> usize {
    let own_code = file.code_line(idx);
    if !own_code.trim().is_empty() {
        return idx + 1;
    }
    for j in idx + 1..file.line_count() {
        if !file.code_line(j).trim().is_empty() {
            return j + 1;
        }
    }
    idx + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::scan("crates/x/src/a.rs", text)
    }

    #[test]
    fn standalone_marker_targets_next_code_line() {
        let f = scan(
            "// hesgx-lint: allow(enclave-panic, reason = \"checked above\")\n\n// comment\nx.unwrap();\n",
        );
        let (sups, diags) = parse(&f);
        assert!(diags.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "enclave-panic");
        assert_eq!(sups[0].target_line, 4);
    }

    #[test]
    fn trailing_marker_targets_its_own_line() {
        let f = scan("x.unwrap(); // hesgx-lint: allow(enclave-panic, reason = \"init only\")\n");
        let (sups, _) = parse(&f);
        assert_eq!(sups[0].target_line, 1);
    }

    #[test]
    fn missing_reason_is_diagnosed() {
        let f = scan("// hesgx-lint: allow(enclave-panic)\nx.unwrap();\n");
        let (sups, diags) = parse(&f);
        assert!(sups.is_empty());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no reason"));
    }

    #[test]
    fn unknown_rule_is_diagnosed() {
        let f = scan("// hesgx-lint: allow(no-such-rule, reason = \"x\")\n");
        let (sups, diags) = parse(&f);
        assert!(sups.is_empty());
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn hot_marker_is_not_a_suppression() {
        let f = scan("// hesgx-lint: hot\nfn conv() {}\n");
        let (sups, diags) = parse(&f);
        assert!(sups.is_empty());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_reason_is_rejected() {
        let f = scan("// hesgx-lint: allow(const-time, reason = \"\")\nlet x = 1;\n");
        let (sups, diags) = parse(&f);
        assert!(sups.is_empty());
        assert_eq!(diags.len(), 1);
    }
}
