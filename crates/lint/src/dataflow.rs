//! Per-function, intra-crate dataflow: a binding table that propagates
//! *flagged type tags* through the shapes Rust code actually uses to move
//! values around.
//!
//! The v1 rules matched type names on the line where they appeared, so
//! `let alias = secret_key;` followed by `println!("{alias:?}")` slipped
//! through, and `rng.next_u64()` looked identical whether `rng` was a
//! `ChaChaRng` or a counter. This pass gives every function a table of
//! `name → tag` bindings built from:
//!
//! - **parameters** — `fn f(rng: &mut ChaChaRng)` binds `rng`,
//! - **annotated lets** — `let s: Session = ...`,
//! - **constructor lets** — `let rng = ChaChaRng::from_seed(7)` (a tracked
//!   type name immediately followed by `::` on the right-hand side),
//! - **aliases** — `let b = a;`, `let b = &a;`, and tag-preserving method
//!   chains (`a.clone()`, `a.fork(..)`, `a.lock()`, ...),
//! - **field reads** — `let r = self.rng;` via the file-level field table,
//! - **same-file returns** — `let s = make_session();` when `fn
//!   make_session() -> Session` lives in the same file,
//! - **match/if-let arms** — `match x { Some(y) => ... }` binds `y` with
//!   `x`'s tag (single-identifier constructor patterns).
//!
//! Bindings record their declaration token, so lookups are positional
//! (latest declaration before the use wins) and shadowing with an
//! untracked value kills the tag. The analysis is deliberately
//! intra-file: it never chases imports, which keeps it fast, dependency-
//! free, and predictable — the property a lint that gates CI needs most.

use crate::scope::{FnScope, Span};
use crate::tokens::{matching, Tok};
use std::collections::BTreeMap;

/// One name→tag binding inside a function.
#[derive(Debug, Clone)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// The tracked type tag, or `None` for a shadowing untracked binding.
    pub tag: Option<String>,
    /// Token index of the declaration (lookups are positional).
    pub decl_tok: usize,
}

/// The binding table of one function (parallel to the scope list).
#[derive(Debug, Default)]
pub struct FnFlow {
    pub bindings: Vec<Binding>,
}

impl FnFlow {
    /// The tag of `name` as visible at token index `at`: the latest
    /// declaration at or before `at` wins; an untracked shadow kills the
    /// tag.
    pub fn tag_at(&self, name: &str, at: usize) -> Option<&str> {
        self.bindings
            .iter()
            .rev()
            .find(|b| b.name == name && b.decl_tok <= at)
            .and_then(|b| b.tag.as_deref())
    }
}

/// File-level flow facts shared by every function in the file.
#[derive(Debug, Default)]
pub struct FileFlow {
    /// Struct-field name → tag, from declarations outside any `fn`.
    pub fields: BTreeMap<String, String>,
    /// Function name → tag of its declared return type (same file).
    pub fn_returns: BTreeMap<String, String>,
    /// Per-function binding tables, parallel to the scope list.
    pub fns: Vec<FnFlow>,
}

/// Methods that preserve the receiver's tag when their result is bound
/// (`let b = a.clone()` still holds the flagged value).
const TAG_PRESERVING: &[&str] = &[
    "clone",
    "fork",
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "get_mut",
    "unwrap",
    "expect",
];

/// Wrapper/constructor heads to skip when finding the value an RHS hands
/// back (`let b = Box::new(a)` still binds `a`'s tag — coarsely).
const HEAD_SKIP: &[&str] = &[
    "match", "Some", "Ok", "Box", "Arc", "Rc", "Mutex", "RwLock", "RefCell", "mut", "ref", "move",
];

/// Builds the full file flow for `toks`/`scopes`, tracking `tracked` type
/// names.
pub fn analyze(toks: &[Tok], scopes: &[FnScope], tracked: &[&str]) -> FileFlow {
    let mut flow = FileFlow {
        fields: field_table(toks, scopes, tracked),
        fn_returns: return_table(scopes, tracked),
        fns: Vec::with_capacity(scopes.len()),
    };
    for scope in scopes {
        let mut fn_flow = FnFlow::default();
        bind_params(toks, scope, tracked, &mut fn_flow);
        if let Some(body) = scope.body {
            bind_body(toks, body, tracked, &flow, &mut fn_flow);
        }
        flow.fns.push(fn_flow);
    }
    flow
}

/// Whether token index `i` lies inside any function signature or body.
fn inside_fn(scopes: &[FnScope], i: usize) -> bool {
    scopes
        .iter()
        .any(|s| s.sig.contains(i) || s.body.is_some_and(|b| b.contains(i)))
}

/// Field declarations outside functions: `name: ...Tracked...,`.
fn field_table(toks: &[Tok], scopes: &[FnScope], tracked: &[&str]) -> BTreeMap<String, String> {
    let mut fields = BTreeMap::new();
    let mut k = 0;
    while k + 1 < toks.len() {
        if inside_fn(scopes, k) || !toks[k].is_ident || !toks[k + 1].is_punct(':') {
            k += 1;
            continue;
        }
        // `::` is a path, not a field annotation.
        if toks.get(k + 2).is_some_and(|t| t.is_punct(':')) || (k > 0 && toks[k - 1].is_punct(':'))
        {
            k += 1;
            continue;
        }
        // Type region: up to `,`, `;`, or `}` (nesting inside `<...>` never
        // contains those in a field type).
        let mut m = k + 2;
        let mut tag = None;
        while m < toks.len() {
            let t = &toks[m];
            if t.is_punct(',') || t.is_punct(';') || t.is_punct('}') || t.is_punct('{') {
                break;
            }
            if tag.is_none() && t.is_ident && tracked.contains(&t.text.as_str()) {
                tag = Some(t.text.clone());
            }
            m += 1;
        }
        if let Some(tag) = tag {
            fields.insert(toks[k].text.clone(), tag);
        }
        k = m;
    }
    fields
}

/// Function name → tracked return-type tag.
fn return_table(scopes: &[FnScope], tracked: &[&str]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for s in scopes {
        if let Some(tag) = s.ret_idents.iter().find(|r| tracked.contains(&r.as_str())) {
            map.insert(s.name.clone(), tag.clone());
        }
    }
    map
}

/// Binds tracked parameters from the signature span.
fn bind_params(toks: &[Tok], scope: &FnScope, tracked: &[&str], out: &mut FnFlow) {
    let sig = scope.sig;
    let mut k = sig.start;
    while k < sig.end {
        if toks[k].is_ident
            && toks[k + 1].is_punct(':')
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && !(k > 0 && toks[k - 1].is_punct(':'))
        {
            // Type region until `,` at paren depth 1 or the closing `)`.
            let mut depth = 0i64;
            let mut m = k + 2;
            let mut tag = None;
            while m <= sig.end {
                let t = &toks[m];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    break;
                } else if tag.is_none() && t.is_ident && tracked.contains(&t.text.as_str()) {
                    tag = Some(t.text.clone());
                }
                m += 1;
            }
            if let Some(tag) = tag {
                out.bindings.push(Binding {
                    name: toks[k].text.clone(),
                    tag: Some(tag),
                    decl_tok: k,
                });
            }
            k = m;
            continue;
        }
        k += 1;
    }
}

/// Walks a function body binding `let` statements and match arms.
fn bind_body(toks: &[Tok], body: Span, tracked: &[&str], file: &FileFlow, out: &mut FnFlow) {
    let mut k = body.start + 1;
    while k < body.end {
        if toks[k].is("let") {
            k = bind_let(toks, k, body.end, tracked, file, out);
            continue;
        }
        if toks[k].is("match") {
            bind_match_arms(toks, k, body.end, file, out);
        }
        k += 1;
    }
}

/// Handles one `let` starting at index `at`; returns the index to resume
/// scanning from.
fn bind_let(
    toks: &[Tok],
    at: usize,
    limit: usize,
    tracked: &[&str],
    file: &FileFlow,
    out: &mut FnFlow,
) -> usize {
    let mut k = at + 1;
    if toks.get(k).is_some_and(|t| t.is("mut")) {
        k += 1;
    }
    let Some(name_tok) = toks.get(k) else {
        return at + 1;
    };
    if !name_tok.is_ident {
        return at + 1; // tuple/slice pattern: out of scope for this pass
    }
    let mut name_idx = k;
    // `let Some(y) = ...` / `let Ok(mut y) = ...`: a capitalized
    // constructor pattern — the bound name sits inside the parens.
    if name_tok.text.starts_with(char::is_uppercase)
        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
    {
        let close = matching(toks, k + 1).unwrap_or(k + 1);
        match (k + 2..close).find(|&m| toks[m].is_ident && !toks[m].is("mut") && !toks[m].is("ref"))
        {
            Some(inner) => {
                name_idx = inner;
                k = close;
            }
            None => return k + 1,
        }
    }
    let name = toks[name_idx].text.clone();
    let mut m = k + 1;
    let mut tag = None;
    // Optional `: Type` annotation.
    if toks.get(m).is_some_and(|t| t.is_punct(':'))
        && !toks.get(m + 1).is_some_and(|t| t.is_punct(':'))
    {
        let mut depth = 0i64;
        m += 1;
        while m < limit {
            let t = &toks[m];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if (t.is_punct('=') || t.is_punct(';')) && depth <= 0 {
                break;
            } else if tag.is_none() && t.is_ident && tracked.contains(&t.text.as_str()) {
                tag = Some(t.text.clone());
            }
            m += 1;
        }
    }
    // RHS: from `=` to the statement end.
    if toks.get(m).is_some_and(|t| t.is_punct('=')) {
        let rhs_start = m + 1;
        let rhs_end = rhs_limit(toks, rhs_start, limit);
        if tag.is_none() {
            tag = rhs_tag(toks, rhs_start, rhs_end, tracked, file, out);
        }
        m = rhs_end;
    }
    out.bindings.push(Binding {
        name,
        tag,
        decl_tok: name_idx,
    });
    m.max(at + 1)
}

/// The exclusive end of an RHS scan: the statement `;` or an opening `{`
/// at nesting depth 0 (so `let y = match x {` stops before the arms).
fn rhs_limit(toks: &[Tok], start: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    let mut m = start;
    while m < limit {
        let t = &toks[m];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if (t.is_punct(';') || t.is_punct('{')) && depth <= 0 {
            return m;
        }
        m += 1;
    }
    m
}

/// Infers the tag an RHS hands to its binding.
fn rhs_tag(
    toks: &[Tok],
    start: usize,
    end: usize,
    tracked: &[&str],
    file: &FileFlow,
    out: &FnFlow,
) -> Option<String> {
    // Constructor: a tracked type name immediately followed by `::`.
    for m in start..end {
        if toks[m].is_ident
            && tracked.contains(&toks[m].text.as_str())
            && toks.get(m + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(m + 2).is_some_and(|t| t.is_punct(':'))
        {
            return Some(toks[m].text.clone());
        }
    }
    // Head value: the first identifier that is not a wrapper keyword.
    let head =
        (start..end).find(|&m| toks[m].is_ident && !HEAD_SKIP.contains(&toks[m].text.as_str()))?;
    let (source_tag, mut chain_at) = if toks[head].is("self") {
        // `self.field` — resolve through the field table; `self.method()`
        // through the same-file return table.
        let f = head + 2;
        if !toks.get(head + 1).is_some_and(|t| t.is_punct('.'))
            || !toks.get(f).is_some_and(|t| t.is_ident)
        {
            return None;
        }
        let name = toks[f].text.as_str();
        match file.fields.get(name) {
            Some(tag) => (tag.clone(), f + 1),
            None => return file.fn_returns.get(name).cloned(),
        }
    } else if let Some(tag) = out.tag_at(&toks[head].text, head) {
        (tag.to_string(), head + 1)
    } else if let Some(tag) = file.fn_returns.get(&toks[head].text) {
        // Same-file free-function call: `let s = make_session();`.
        return toks
            .get(head + 1)
            .is_some_and(|t| t.is_punct('('))
            .then(|| tag.clone());
    } else {
        return None;
    };
    // Follow the method chain: propagate only through tag-preserving
    // calls; any other method ends the value's identity.
    loop {
        let Some(dot) = toks.get(chain_at) else {
            return Some(source_tag);
        };
        if chain_at >= end || !dot.is_punct('.') {
            return Some(source_tag);
        }
        let Some(method) = toks.get(chain_at + 1) else {
            return Some(source_tag);
        };
        if !method.is_ident {
            return Some(source_tag);
        }
        if !TAG_PRESERVING.contains(&method.text.as_str()) {
            return None;
        }
        // Skip the argument list, if any.
        chain_at += 2;
        if toks.get(chain_at).is_some_and(|t| t.is_punct('(')) {
            chain_at = matching(toks, chain_at).map_or(end, |c| c + 1);
        }
    }
}

/// Binds single-identifier constructor patterns of `match` arms when the
/// scrutinee is tracked: `match x { Some(y) => ... }` binds `y`.
fn bind_match_arms(toks: &[Tok], at: usize, limit: usize, file: &FileFlow, out: &mut FnFlow) {
    // Scrutinee: tokens between `match` and its `{`.
    let Some(open) = (at + 1..limit).find(|&m| toks[m].is_punct('{')) else {
        return;
    };
    let scrutinee_tag = (at + 1..open).find_map(|m| {
        if !toks[m].is_ident {
            return None;
        }
        if toks[m].is("self") {
            let f = m + 2;
            if toks.get(m + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(f).is_some_and(|t| t.is_ident)
            {
                return file.fields.get(&toks[f].text).cloned();
            }
            return None;
        }
        out.tag_at(&toks[m].text, m).map(str::to_string)
    });
    let Some(tag) = scrutinee_tag else {
        return;
    };
    let Some(close) = matching(toks, open) else {
        return;
    };
    // Arms: `Ctor(name) =>` — the ident just before a `)` that precedes `=>`.
    for m in open + 1..close.min(limit) {
        if !(toks[m].is_punct('=') && toks.get(m + 1).is_some_and(|t| t.is_punct('>'))) {
            continue;
        }
        if m < 2 || !toks[m - 1].is_punct(')') {
            continue;
        }
        let name_idx = m - 2;
        if toks[name_idx].is_ident
            && !toks[name_idx].is("mut")
            && toks[name_idx].text.starts_with(char::is_lowercase)
        {
            out.bindings.push(Binding {
                name: toks[name_idx].text.clone(),
                tag: Some(tag.clone()),
                decl_tok: name_idx,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use crate::scope::functions;
    use crate::tokens::tokenize;

    const TRACKED: &[&str] = &["ChaChaRng", "SecretKey", "HashMap", "Session"];

    fn flow_of(src: &str) -> (Vec<Tok>, FileFlow) {
        let f = SourceFile::scan("crates/x/src/a.rs", src);
        let toks = tokenize(&f);
        let scopes = functions(&f, &toks);
        let flow = analyze(&toks, &scopes, TRACKED);
        (toks, flow)
    }

    fn tag_of<'a>(toks: &[Tok], flow: &'a FileFlow, fn_idx: usize, name: &str) -> Option<&'a str> {
        flow.fns[fn_idx].tag_at(name, toks.len())
    }

    #[test]
    fn params_are_bound() {
        let (toks, flow) = flow_of("fn f(rng: &mut ChaChaRng, n: usize) {}\n");
        assert_eq!(tag_of(&toks, &flow, 0, "rng"), Some("ChaChaRng"));
        assert_eq!(tag_of(&toks, &flow, 0, "n"), None);
    }

    #[test]
    fn annotated_and_constructor_lets_are_bound() {
        let (toks, flow) = flow_of(
            "fn f() {\n    let s: Session = connect();\n    let rng = ChaChaRng::from_seed(7);\n}\n",
        );
        assert_eq!(tag_of(&toks, &flow, 0, "s"), Some("Session"));
        assert_eq!(tag_of(&toks, &flow, 0, "rng"), Some("ChaChaRng"));
    }

    #[test]
    fn aliases_and_preserving_chains_propagate() {
        let (toks, flow) = flow_of(
            "fn f(key: SecretKey) {\n    let a = key;\n    let b = a.clone();\n    let c = b.fork(\"x\");\n    let d = c.len();\n}\n",
        );
        assert_eq!(tag_of(&toks, &flow, 0, "a"), Some("SecretKey"));
        assert_eq!(tag_of(&toks, &flow, 0, "b"), Some("SecretKey"));
        assert_eq!(tag_of(&toks, &flow, 0, "c"), Some("SecretKey"));
        assert_eq!(tag_of(&toks, &flow, 0, "d"), None);
    }

    #[test]
    fn untracked_shadow_kills_the_tag() {
        let (toks, flow) =
            flow_of("fn f(rng: ChaChaRng) {\n    let rng = 5;\n    let x = rng;\n}\n");
        assert_eq!(tag_of(&toks, &flow, 0, "rng"), None);
        assert_eq!(tag_of(&toks, &flow, 0, "x"), None);
    }

    #[test]
    fn field_table_resolves_self_reads() {
        let (toks, flow) = flow_of(
            "struct W {\n    rng: Mutex<ChaChaRng>,\n}\nimpl W {\n    fn f(&self) {\n        let r = self.rng.lock();\n    }\n}\n",
        );
        assert_eq!(
            flow.fields.get("rng").map(String::as_str),
            Some("ChaChaRng")
        );
        assert_eq!(tag_of(&toks, &flow, 0, "r"), Some("ChaChaRng"));
    }

    #[test]
    fn same_file_return_types_propagate() {
        let (toks, flow) =
            flow_of("fn make() -> Session {\n    connect()\n}\nfn g() {\n    let s = make();\n}\n");
        assert_eq!(
            flow.fn_returns.get("make").map(String::as_str),
            Some("Session")
        );
        assert_eq!(tag_of(&toks, &flow, 1, "s"), Some("Session"));
    }

    #[test]
    fn if_let_constructor_pattern_binds_inner_name() {
        let (toks, flow) = flow_of(
            "fn f(opt: Option<SecretKey>) {\n    if let Some(k) = opt {\n        use_it(k);\n    }\n}\n",
        );
        assert_eq!(tag_of(&toks, &flow, 0, "k"), Some("SecretKey"));
    }

    #[test]
    fn match_arms_bind_the_scrutinee_tag() {
        let (toks, flow) = flow_of(
            "fn f(opt: Option<ChaChaRng>) {\n    match opt {\n        Some(inner) => draw(inner),\n        None => {}\n    }\n}\n",
        );
        assert_eq!(tag_of(&toks, &flow, 0, "inner"), Some("ChaChaRng"));
    }

    #[test]
    fn match_on_untracked_scrutinee_binds_nothing() {
        let (toks, flow) = flow_of(
            "fn f(opt: Option<u64>) {\n    match opt {\n        Some(inner) => use_it(inner),\n        None => {}\n    }\n}\n",
        );
        assert_eq!(tag_of(&toks, &flow, 0, "inner"), None);
    }

    #[test]
    fn non_preserving_method_ends_the_chain() {
        let (toks, flow) = flow_of("fn f(m: HashMap<u64, u64>) {\n    let n = m.len();\n}\n");
        assert_eq!(tag_of(&toks, &flow, 0, "n"), None);
        assert_eq!(tag_of(&toks, &flow, 0, "m"), Some("HashMap"));
    }
}
