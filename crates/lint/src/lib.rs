//! hesgx-lint: workspace static analysis for enclave-boundary,
//! secret-hygiene, and panic-freedom invariants.
//!
//! The paper's security argument is only as good as a handful of coding
//! disciplines the compiler does not enforce: secret key material must not
//! be `Debug`-printed or cross public APIs outside the trust boundary,
//! enclave code must not panic (a panic aborts the ECALL and the enclave),
//! comparisons over MACs and tags must be constant-time, `unsafe` must be
//! inventoried, and every ECALL must charge the TEE cost model. This crate
//! checks those invariants over the workspace sources with a from-scratch
//! scanner (no rustc plugin, no dependencies) so `ci.sh` can gate on them
//! offline.
//!
//! Rules (all deny-by-default; see `DESIGN.md` for the threat-model map):
//!
//! | rule            | invariant                                              |
//! |-----------------|--------------------------------------------------------|
//! | `secret-debug`  | registry types don't derive Debug / impl Display       |
//! | `secret-pub-api`| registry types stay out of foreign `pub` signatures    |
//! | `secret-log`    | no format/log macro touches secret-named values        |
//! | `enclave-panic` | no `unwrap`/`expect`/`panic!` in enclave code          |
//! | `const-time`    | no `==` over secret-derived bytes in `hesgx-crypto`    |
//! | `unsafe-safety` | every `unsafe` carries a `// SAFETY:` comment          |
//! | `forbid-unsafe` | unsafe-free crates declare `#![forbid(unsafe_code)]`   |
//! | `ecall-cost`    | every `pub fn` on the ECALL surface returns a cost     |
//! | `obs-secret-label` | obs span/counter labels never name secret material  |
//! | `wall-clock`    | raw clock reads only in the audited wall module        |
//! | `unordered-iter`| no HashMap/HashSet iteration feeding exported bytes    |
//! | `rng-fork`      | retry bodies fork the RNG; they never share a stream   |
//! | `hot-path-alloc`| no per-iteration allocation in `hot`-marked functions  |
//! | `deprecated-api`| no calls to the deprecated `Session` inference shims   |
//!
//! The v2 front end layers a token stream ([`tokens`]), function scopes
//! ([`scope`]), and a per-function binding table ([`dataflow`]) over the
//! v1 line scanner; the last five rules — and the alias-taint upgrade to
//! `secret-log`/`obs-secret-label` — consume that [`analysis::Analysis`]
//! bundle rather than raw lines.
//!
//! Findings are suppressed inline — with a mandatory reason — via
//! `// hesgx-lint: allow(<rule>, reason = "...")`; pre-existing findings
//! can be grandfathered through a checked-in [`baseline`] file so CI fails
//! only on new ones.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod baseline;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod scope;
pub mod suppress;
pub mod tokens;

use diag::{Report, StaleSuppression};
use lexer::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Lints a set of scanned files and produces the final report:
/// per-file rules, the cross-file `forbid-unsafe` check, suppression
/// matching, and stale-suppression diagnostics.
pub fn lint_sources(files: &[SourceFile]) -> Report {
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    // Crate-level unsafe inventory for the forbid-unsafe rule. BTreeMap:
    // the lint's own output must never depend on hash-iteration order.
    let mut crate_has_unsafe: BTreeMap<String, bool> = BTreeMap::new();
    for f in files {
        if let Some(root) = crate_src_root(&f.path) {
            let entry = crate_has_unsafe.entry(root).or_insert(false);
            *entry = *entry || rules::unsafe_rule::has_unsafe(f);
        }
    }
    for file in files {
        let (mut sups, meta_diags) = suppress::parse(file);
        let a = analysis::Analysis::new(file);
        let mut findings = rules::check_file(&a);
        if let Some(root) = crate_src_root(&file.path) {
            let is_lib = file.path == format!("{root}/lib.rs");
            if is_lib
                && !crate_has_unsafe.get(&root).copied().unwrap_or(false)
                && !rules::unsafe_rule::has_forbid_attr(file)
            {
                findings.push(rules::unsafe_rule::forbid_diag(&file.path, 1));
            }
        }
        for d in findings {
            let matched = sups
                .iter_mut()
                .find(|s| s.rule == d.rule && s.target_line == d.line);
            match matched {
                Some(s) => {
                    s.used = true;
                    report.suppressed += 1;
                }
                None => report.findings.push(d),
            }
        }
        // A marker that silenced nothing is both a finding (the run fails)
        // and an itemized `stale_suppressions` entry in the JSON audit view.
        for s in sups.iter().filter(|s| !s.used) {
            report.stale.push(StaleSuppression {
                file: file.path.clone(),
                line: s.marker_line,
                rule: s.rule.clone(),
            });
        }
        report.findings.extend(suppress::unused_diags(file, &sups));
        report.findings.extend(meta_diags);
    }
    report.sort();
    report
}

/// Maps `crates/<name>/src/...` to `crates/<name>/src` (test and fixture
/// files return `None` — they are not part of a crate's linted source).
fn crate_src_root(path: &str) -> Option<String> {
    let rest = path.strip_prefix("crates/")?;
    let name_end = rest.find('/')?;
    if !rest[name_end..].starts_with("/src/") {
        return None;
    }
    Some(format!("crates/{}/src", &rest[..name_end]))
}

/// Collects every `.rs` file under `<root>/crates/*/src`, sorted for
/// deterministic output.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads and scans one file, keying it by its path relative to `root`
/// when possible (so rule path scopes match from any working directory).
///
/// # Errors
///
/// Propagates the read error for missing/unreadable paths.
pub fn load_file(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
    let text = std::fs::read_to_string(path)?;
    let display = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(SourceFile::scan(&display, &text))
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_src_root_extraction() {
        assert_eq!(
            crate_src_root("crates/tee/src/enclave.rs").as_deref(),
            Some("crates/tee/src")
        );
        assert_eq!(
            crate_src_root("crates/core/src/sgx_ops.rs").as_deref(),
            Some("crates/core/src")
        );
        assert_eq!(crate_src_root("crates/lint/tests/fixtures/x/bad.rs"), None);
        assert_eq!(crate_src_root("examples/demo.rs"), None);
    }

    #[test]
    fn suppressed_finding_is_counted_not_reported() {
        let src = "fn f() {\n    // hesgx-lint: allow(enclave-panic, reason = \"boot path\")\n    x.unwrap();\n}\n";
        let file = SourceFile::scan("crates/tee/src/x.rs", src);
        let report = lint_sources(&[file]);
        assert_eq!(report.suppressed, 1);
        assert!(report.findings.iter().all(|d| d.rule != "enclave-panic"));
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "fn f() {\n    // hesgx-lint: allow(enclave-panic, reason = \"nothing here\")\n    let x = 1;\n}\n";
        let file = SourceFile::scan("crates/tee/src/x.rs", src);
        let report = lint_sources(&[file]);
        assert!(report
            .findings
            .iter()
            .any(|d| d.rule == "suppression" && d.message.contains("suppresses nothing")));
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].rule, "enclave-panic");
        assert_eq!(report.stale[0].line, 2);
    }

    #[test]
    fn missing_forbid_attr_is_reported_for_unsafe_free_crate() {
        let lib = SourceFile::scan("crates/demo/src/lib.rs", "pub fn f() {}\n");
        let report = lint_sources(&[lib]);
        assert!(report.findings.iter().any(|d| d.rule == "forbid-unsafe"));
    }

    #[test]
    fn forbid_attr_satisfies_the_rule() {
        let lib = SourceFile::scan(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        let report = lint_sources(&[lib]);
        assert!(report.findings.iter().all(|d| d.rule != "forbid-unsafe"));
    }

    #[test]
    fn crate_with_documented_unsafe_needs_no_forbid() {
        let lib = SourceFile::scan(
            "crates/demo/src/lib.rs",
            "pub fn f() {\n    // SAFETY: the pointer is valid for the call.\n    unsafe { g(); }\n}\n",
        );
        let report = lint_sources(&[lib]);
        assert!(report.is_clean(), "{:?}", report.findings);
    }
}
