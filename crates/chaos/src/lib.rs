//! # hesgx-chaos
//!
//! Seed-deterministic fault injection for the hybrid HE+SGX inference
//! framework.
//!
//! The paper's availability story (ROADMAP north star: serving heavy traffic)
//! only holds if the pipeline survives the enclave boundary misbehaving —
//! ECALLs failing transiently, EPC pages evicted under outside pressure,
//! sealed key blobs rotting on untrusted storage, the attestation service
//! timing out, noise-refresh requests being dropped. This crate makes those
//! failures *injectable, deterministic, and observable*:
//!
//! * [`FaultSite`] names every place the TEE simulator consults the fault
//!   layer (ECALL entry/exit, EPC load/evict, seal/unseal, attestation
//!   verification, noise refresh).
//! * [`FaultHook`] is the lightweight trait the simulator calls at each site.
//!   The hook is optional everywhere — `None` is the default and costs one
//!   branch on an `Option` per site, nothing in release paths that never
//!   install one.
//! * [`FaultPlan`] describes *when* faults fire: seeded Bernoulli rates per
//!   site (ChaCha streams from [`hesgx_crypto::rng`], so the same seed always
//!   produces the same schedule), per-site caps, and scripted
//!   "fail the n-th consultation" triggers for precise tests.
//! * [`FaultInjector`] executes a plan and records every injected fault and
//!   every recovery decision into a [`FaultReport`] whose JSON encoding is
//!   byte-stable across runs and thread counts.
//!
//! Determinism contract: every consultation site in the simulator sits on a
//! serial code path (ECALL dispatch, region touches before fan-out, sealing,
//! attestation), so the consultation *sequence* — and therefore the report —
//! is independent of worker-pool size. The report carries only logical data
//! (sites, occurrence indices, attempt counts, deterministic backoff values);
//! no wall-clock time ever enters it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod plan;
pub mod report;

pub use plan::{FaultInjector, FaultPlan};
pub use report::{ChaosEvent, FaultReport, RecoveryEvent};

/// A named place where the TEE simulator consults the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Before an ECALL body runs (the EENTER transition fails; the body never
    /// executes, only the aborted boundary crossing is charged).
    EcallEnter,
    /// After an ECALL body ran but before its result crosses back out (the
    /// result is lost; the full call is charged).
    EcallExit,
    /// A resident EPC page is touched (injected pressure: the page behaves as
    /// if evicted by another enclave and must fault back in).
    EpcLoad,
    /// A page fault triggers the eviction path (injected pressure: one extra
    /// victim page is evicted).
    EpcEvict,
    /// Sealing data to the enclave identity (injected corruption: the blob is
    /// silently damaged, detected only at the next unseal).
    Seal,
    /// Unsealing a blob (the blob fails its integrity check).
    Unseal,
    /// The remote attestation service verifying a quote.
    AttestationVerify,
    /// A noise-refresh request before it reaches the enclave
    /// (`ecall_DecreaseNoise` — the request is dropped and must be retried).
    NoiseRefresh,
    /// A transciphered ingress payload before it reaches the enclave
    /// (`ecall_Transcipher` — the sealed upload is dropped in transit and
    /// must be retried).
    Transcipher,
}

impl FaultSite {
    /// All sites, in declaration order (stable: report indices and JSON rely
    /// on it; new sites append, so existing per-site RNG streams — forked by
    /// name — never shift).
    pub const ALL: [FaultSite; 9] = [
        FaultSite::EcallEnter,
        FaultSite::EcallExit,
        FaultSite::EpcLoad,
        FaultSite::EpcEvict,
        FaultSite::Seal,
        FaultSite::Unseal,
        FaultSite::AttestationVerify,
        FaultSite::NoiseRefresh,
        FaultSite::Transcipher,
    ];

    /// Stable machine name (used in the report JSON and RNG domain
    /// separation).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::EcallEnter => "ecall-enter",
            FaultSite::EcallExit => "ecall-exit",
            FaultSite::EpcLoad => "epc-load",
            FaultSite::EpcEvict => "epc-evict",
            FaultSite::Seal => "seal",
            FaultSite::Unseal => "unseal",
            FaultSite::AttestationVerify => "attestation-verify",
            FaultSite::NoiseRefresh => "noise-refresh",
            FaultSite::Transcipher => "transcipher",
        }
    }

    /// Index into [`FaultSite::ALL`].
    pub fn index(self) -> usize {
        match self {
            FaultSite::EcallEnter => 0,
            FaultSite::EcallExit => 1,
            FaultSite::EpcLoad => 2,
            FaultSite::EpcEvict => 3,
            FaultSite::Seal => 4,
            FaultSite::Unseal => 5,
            FaultSite::AttestationVerify => 6,
            FaultSite::NoiseRefresh => 7,
            FaultSite::Transcipher => 8,
        }
    }

    /// The kind of fault this site naturally produces (used by
    /// [`FaultPlan::rate`] when no explicit kind is given).
    pub fn natural_kind(self) -> FaultKind {
        match self {
            FaultSite::EcallEnter
            | FaultSite::EcallExit
            | FaultSite::AttestationVerify
            | FaultSite::NoiseRefresh
            | FaultSite::Transcipher => FaultKind::Transient,
            FaultSite::EpcLoad | FaultSite::EpcEvict => FaultKind::Pressure,
            FaultSite::Seal | FaultSite::Unseal => FaultKind::Corruption,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected fault does to the operation it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The operation fails but retrying it can succeed (a dropped ECALL, an
    /// attestation-service timeout, a dropped refresh request).
    Transient,
    /// Data is silently damaged (a sealed blob rots on untrusted storage, a
    /// quote arrives mangled); detected later by an integrity check.
    Corruption,
    /// Capacity pressure: the operation still succeeds but pays extra cost
    /// (an EPC page evicted by a competing enclave must fault back in).
    Pressure,
}

impl FaultKind {
    /// Stable machine name (used in the report JSON).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Corruption => "corruption",
            FaultKind::Pressure => "pressure",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The trait the TEE simulator consults at every [`FaultSite`].
///
/// Implementations must be `Send + Sync` (the enclave is shared across
/// worker threads) and `Debug` (the simulator types that hold a hook derive
/// `Debug`). The production default is no hook at all; [`FaultInjector`] is
/// the test-time implementation.
pub trait FaultHook: Send + Sync + std::fmt::Debug {
    /// Called when execution reaches `site`. Returning `Some(kind)` injects a
    /// fault of that kind; `None` lets the operation proceed normally.
    fn inject(&self, site: FaultSite) -> Option<FaultKind>;

    /// Called by the recovery layer when it makes a decision (retry,
    /// re-provision, degrade). Default: ignored.
    fn on_recovery(&self, event: RecoveryEvent) {
        let _ = event;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_and_indices_are_stable() {
        for (i, site) in FaultSite::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
            assert!(!site.name().is_empty());
        }
        // Names are unique (the JSON encoding depends on it).
        let mut names: Vec<_> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultSite::ALL.len());
    }

    #[test]
    fn natural_kinds_match_site_semantics() {
        assert_eq!(FaultSite::EcallEnter.natural_kind(), FaultKind::Transient);
        assert_eq!(FaultSite::EpcLoad.natural_kind(), FaultKind::Pressure);
        assert_eq!(FaultSite::Seal.natural_kind(), FaultKind::Corruption);
    }
}
