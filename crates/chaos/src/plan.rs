//! Fault plans (when faults fire) and the injector that executes them.

use hesgx_crypto::rng::ChaChaRng;
use hesgx_obs::{counters, Recorder};
use parking_lot::Mutex;

use crate::{ChaosEvent, FaultHook, FaultKind, FaultReport, FaultSite, RecoveryEvent};

const SITES: usize = FaultSite::ALL.len();

/// Per-site schedule parameters.
#[derive(Debug, Clone, Copy)]
struct SitePlan {
    /// Bernoulli probability that a consultation injects a fault.
    rate: f64,
    /// Kind injected by rate-triggered faults.
    kind: FaultKind,
    /// Maximum number of rate-triggered injections at this site
    /// (`u64::MAX` = unlimited). Scripted injections ignore the cap.
    cap: u64,
}

impl Default for SitePlan {
    fn default() -> Self {
        SitePlan {
            rate: 0.0,
            kind: FaultKind::Transient,
            cap: u64::MAX,
        }
    }
}

/// A seed-deterministic schedule of fault injections.
///
/// Two trigger mechanisms compose:
///
/// * **Rates** — each site gets a Bernoulli probability drawn from its own
///   domain-separated ChaCha stream (forked from the plan seed by site name),
///   so the schedule at one site never perturbs another and the same seed
///   always yields the same schedule. [`FaultPlan::cap`] bounds how many
///   rate-triggered faults a site may inject — the lever that lets tests
///   guarantee eventual success under bounded retry.
/// * **Scripts** — "fail exactly the n-th consultation of this site", for
///   tests that need a fault at a precise point (e.g. corrupt the first seal).
///
/// ```
/// use hesgx_chaos::{FaultPlan, FaultSite, FaultKind};
///
/// let plan = FaultPlan::new(42)
///     .rate(FaultSite::EcallEnter, 0.2)   // natural kind: transient
///     .cap(FaultSite::EcallEnter, 2)      // at most 2 injections
///     .script(FaultSite::Seal, 0, FaultKind::Corruption);
/// let injector = plan.build();
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    sites: [SitePlan; SITES],
    /// `(site, occurrence, kind)` triples, matched exactly.
    scripts: Vec<(FaultSite, u64, FaultKind)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: [SitePlan::default(); SITES],
            scripts: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the Bernoulli injection rate at `site`, injecting the site's
    /// [natural kind](FaultSite::natural_kind). `rate` is clamped to `[0, 1]`.
    pub fn rate(self, site: FaultSite, rate: f64) -> Self {
        let kind = site.natural_kind();
        self.rate_with(site, rate, kind)
    }

    /// Sets the Bernoulli injection rate at `site` with an explicit kind.
    pub fn rate_with(mut self, site: FaultSite, rate: f64, kind: FaultKind) -> Self {
        let plan = &mut self.sites[site.index()];
        plan.rate = rate.clamp(0.0, 1.0);
        plan.kind = kind;
        self
    }

    /// Caps rate-triggered injections at `site` to at most `max` faults.
    pub fn cap(mut self, site: FaultSite, max: u64) -> Self {
        self.sites[site.index()].cap = max;
        self
    }

    /// Injects a fault of `kind` at exactly the `occurrence`-th (zero-based)
    /// consultation of `site`, regardless of rates and caps.
    pub fn script(mut self, site: FaultSite, occurrence: u64, kind: FaultKind) -> Self {
        self.scripts.push((site, occurrence, kind));
        self
    }

    /// Convenience: a transient-only plan that faults the retryable boundary
    /// sites (ECALL enter/exit, noise refresh, transciphered ingress) at
    /// `rate` plus EPC pressure, capped at `cap` injections per site. With
    /// `cap` below the pipeline's retry budget this plan is guaranteed
    /// recoverable, which is what the bit-identical-output property tests
    /// rely on.
    pub fn transient_only(seed: u64, rate: f64, cap: u64) -> Self {
        FaultPlan::new(seed)
            .rate(FaultSite::EcallEnter, rate)
            .cap(FaultSite::EcallEnter, cap)
            .rate(FaultSite::EcallExit, rate)
            .cap(FaultSite::EcallExit, cap)
            .rate(FaultSite::NoiseRefresh, rate)
            .cap(FaultSite::NoiseRefresh, cap)
            .rate(FaultSite::Transcipher, rate)
            .cap(FaultSite::Transcipher, cap)
            .rate(FaultSite::EpcLoad, rate)
            .cap(FaultSite::EpcLoad, cap)
            .rate(FaultSite::EpcEvict, rate)
            .cap(FaultSite::EpcEvict, cap)
    }

    /// Builds the executing injector for this plan.
    pub fn build(self) -> FaultInjector {
        FaultInjector::new(self)
    }
}

/// Mutable injector state, behind one mutex so the consultation sequence is
/// totally ordered even when the enclave is shared across worker threads.
#[derive(Debug)]
struct InjectorState {
    /// One domain-separated ChaCha stream per site.
    streams: [ChaChaRng; SITES],
    /// Consultations seen per site (the "occurrence" counter).
    consults: [u64; SITES],
    /// Rate-triggered injections per site (checked against the cap).
    injected: [u64; SITES],
    report: FaultReport,
    /// Observability mirror: every delivered fault bumps `faults.injected`.
    recorder: Recorder,
}

/// Executes a [`FaultPlan`] and records a [`FaultReport`].
///
/// Implements [`FaultHook`]; install it on an enclave/session via the chaos
/// builder hooks. All state sits behind a single mutex: consultation sites in
/// the simulator are serial, so the lock is uncontended and the event order
/// (and therefore the report bytes) is deterministic.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        let root = ChaChaRng::from_seed(plan.seed);
        let streams = FaultSite::ALL.map(|site| root.fork(site.name()));
        FaultInjector {
            plan,
            state: Mutex::new(InjectorState {
                streams,
                consults: [0; SITES],
                injected: [0; SITES],
                report: FaultReport::default(),
                recorder: Recorder::disabled(),
            }),
        }
    }

    /// Installs an observability recorder: every fault this injector actually
    /// delivers (scripted or rate-triggered) increments `faults.injected`, so
    /// obs snapshots and [`FaultReport`]s count the same events.
    pub fn set_recorder(&self, recorder: Recorder) {
        self.state.lock().recorder = recorder;
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A snapshot of the report so far.
    pub fn report(&self) -> FaultReport {
        self.state.lock().report.clone()
    }

    /// Deterministic JSON encoding of the report so far.
    pub fn report_json(&self) -> String {
        self.state.lock().report.to_json()
    }

    /// Total consultations seen at `site` (injected or not).
    pub fn consults_at(&self, site: FaultSite) -> u64 {
        self.state.lock().consults[site.index()]
    }
}

impl FaultHook for FaultInjector {
    fn inject(&self, site: FaultSite) -> Option<FaultKind> {
        let idx = site.index();
        let mut state = self.state.lock();
        let occurrence = state.consults[idx];
        state.consults[idx] += 1;

        // The stream advances on *every* consultation, injected or not, so a
        // scripted fault never shifts the rate schedule of later occurrences.
        let draw = state.streams[idx].next_f64();

        let scripted = self
            .plan
            .scripts
            .iter()
            .find(|(s, occ, _)| *s == site && *occ == occurrence)
            .map(|(_, _, kind)| *kind);

        let site_plan = &self.plan.sites[idx];
        let kind = match scripted {
            Some(kind) => Some(kind),
            None if site_plan.rate > 0.0
                && state.injected[idx] < site_plan.cap
                && draw < site_plan.rate =>
            {
                state.injected[idx] += 1;
                Some(site_plan.kind)
            }
            None => None,
        };

        if let Some(kind) = kind {
            state.report.events.push(ChaosEvent::Injected {
                site,
                occurrence,
                kind,
            });
            state.recorder.incr(counters::FAULTS_INJECTED, 1);
        }
        kind
    }

    fn on_recovery(&self, event: RecoveryEvent) {
        self.state
            .lock()
            .report
            .events
            .push(ChaosEvent::Recovery(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(injector: &FaultInjector, site: FaultSite, n: u64) -> Vec<Option<FaultKind>> {
        (0..n).map(|_| injector.inject(site)).collect()
    }

    #[test]
    fn empty_plan_never_injects() {
        let injector = FaultPlan::new(7).build();
        for site in FaultSite::ALL {
            assert!(drive(&injector, site, 50).iter().all(Option::is_none));
        }
        assert_eq!(injector.report().injected_total(), 0);
        assert_eq!(injector.consults_at(FaultSite::EcallEnter), 50);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let injector = FaultPlan::new(seed)
                .rate(FaultSite::EcallEnter, 0.3)
                .rate(FaultSite::EpcLoad, 0.2)
                .build();
            let a = drive(&injector, FaultSite::EcallEnter, 100);
            let b = drive(&injector, FaultSite::EpcLoad, 100);
            (a, b, injector.report_json())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).2, run(43).2);
    }

    #[test]
    fn sites_are_domain_separated() {
        // Changing one site's rate must not change another site's draws.
        let only_a = FaultPlan::new(9).rate(FaultSite::EcallEnter, 0.5).build();
        let both = FaultPlan::new(9)
            .rate(FaultSite::EcallEnter, 0.5)
            .rate(FaultSite::Unseal, 0.9)
            .build();
        drive(&both, FaultSite::Unseal, 40);
        assert_eq!(
            drive(&only_a, FaultSite::EcallEnter, 100),
            drive(&both, FaultSite::EcallEnter, 100),
        );
    }

    #[test]
    fn cap_bounds_rate_injections() {
        let injector = FaultPlan::new(1)
            .rate(FaultSite::EcallEnter, 1.0)
            .cap(FaultSite::EcallEnter, 3)
            .build();
        let hits = drive(&injector, FaultSite::EcallEnter, 20)
            .iter()
            .filter(|k| k.is_some())
            .count();
        assert_eq!(hits, 3);
        assert_eq!(injector.report().injected_at(FaultSite::EcallEnter), 3);
    }

    #[test]
    fn script_fires_exactly_once_and_ignores_cap() {
        let injector = FaultPlan::new(5)
            .cap(FaultSite::Seal, 0)
            .script(FaultSite::Seal, 2, FaultKind::Corruption)
            .build();
        let results = drive(&injector, FaultSite::Seal, 5);
        assert_eq!(
            results,
            vec![None, None, Some(FaultKind::Corruption), None, None]
        );
        let report = injector.report();
        assert_eq!(report.injected_at(FaultSite::Seal), 1);
        assert!(matches!(
            report.events[0],
            ChaosEvent::Injected {
                site: FaultSite::Seal,
                occurrence: 2,
                kind: FaultKind::Corruption,
            }
        ));
    }

    #[test]
    fn script_does_not_shift_rate_schedule() {
        let plain = FaultPlan::new(11).rate(FaultSite::EcallExit, 0.4).build();
        let scripted = FaultPlan::new(11)
            .rate(FaultSite::EcallExit, 0.4)
            .script(FaultSite::EcallExit, 0, FaultKind::Transient)
            .build();
        let a = drive(&plain, FaultSite::EcallExit, 50);
        let b = drive(&scripted, FaultSite::EcallExit, 50);
        // After the scripted occurrence 0, the rate draws line up again.
        assert_eq!(a[1..], b[1..]);
    }

    #[test]
    fn rate_with_overrides_kind() {
        let injector = FaultPlan::new(3)
            .rate_with(FaultSite::EcallEnter, 1.0, FaultKind::Corruption)
            .build();
        assert_eq!(
            injector.inject(FaultSite::EcallEnter),
            Some(FaultKind::Corruption)
        );
    }

    #[test]
    fn transient_only_plan_skips_seal_and_attestation() {
        let injector = FaultPlan::transient_only(4, 1.0, 100).build();
        assert!(drive(&injector, FaultSite::Seal, 30)
            .iter()
            .all(Option::is_none));
        assert!(drive(&injector, FaultSite::Unseal, 30)
            .iter()
            .all(Option::is_none));
        assert!(drive(&injector, FaultSite::AttestationVerify, 30)
            .iter()
            .all(Option::is_none));
        assert_eq!(
            injector.inject(FaultSite::EcallEnter),
            Some(FaultKind::Transient)
        );
        assert_eq!(
            injector.inject(FaultSite::EpcLoad),
            Some(FaultKind::Pressure)
        );
    }

    #[test]
    fn delivered_faults_bump_the_obs_counter() {
        let recorder = Recorder::enabled();
        let injector = FaultPlan::new(1)
            .rate(FaultSite::EcallEnter, 1.0)
            .cap(FaultSite::EcallEnter, 2)
            .script(FaultSite::Seal, 0, FaultKind::Corruption)
            .build();
        injector.set_recorder(recorder.clone());
        drive(&injector, FaultSite::EcallEnter, 10);
        drive(&injector, FaultSite::Seal, 2);
        assert_eq!(
            recorder.counter(counters::FAULTS_INJECTED),
            injector.report().injected_total()
        );
        assert_eq!(recorder.counter(counters::FAULTS_INJECTED), 3);
    }

    #[test]
    fn recovery_events_are_recorded_in_order() {
        let injector = FaultPlan::new(2).build();
        injector.on_recovery(RecoveryEvent::Retry {
            site: FaultSite::EcallEnter,
            attempt: 0,
            backoff_ns: 500,
        });
        injector.on_recovery(RecoveryEvent::Recovered {
            site: FaultSite::EcallEnter,
            attempts: 2,
        });
        let report = injector.report();
        assert_eq!(report.retries(), 1);
        assert!(matches!(
            report.events[1],
            ChaosEvent::Recovery(RecoveryEvent::Recovered { attempts: 2, .. })
        ));
    }
}
