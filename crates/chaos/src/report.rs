//! The chaos record: every injected fault and every recovery decision, in
//! order, with a byte-stable JSON encoding tests and CI artifacts rely on.

use crate::{FaultKind, FaultSite};

/// A recovery decision made by the framework in response to faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A transient failure is being retried after a deterministic backoff.
    Retry {
        /// Site whose fault triggered the retry.
        site: FaultSite,
        /// Attempt number being retried (0 = the first attempt failed).
        attempt: u32,
        /// Deterministic backoff charged before the retry, in nanoseconds.
        backoff_ns: u64,
    },
    /// An operation succeeded after one or more retries.
    Recovered {
        /// Site whose fault was recovered from.
        site: FaultSite,
        /// Total attempts used (≥ 2).
        attempts: u32,
    },
    /// The bounded retry budget was exhausted; the error propagated.
    RetriesExhausted {
        /// Site whose fault exhausted the budget.
        site: FaultSite,
        /// Total attempts made.
        attempts: u32,
    },
    /// The service re-provisioned (fresh enclave, deterministic key
    /// regeneration) — the sealed-state corruption path.
    Reprovisioned {
        /// Why (e.g. `"sealed-state corruption"`).
        reason: &'static str,
    },
    /// The session fell back to the degraded pure-HE evaluation.
    Degraded {
        /// Why (e.g. `"enclave unavailable"`).
        reason: &'static str,
    },
}

/// One entry in a [`FaultReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The injector fired a fault.
    Injected {
        /// Where.
        site: FaultSite,
        /// Zero-based consultation index at that site when the fault fired.
        occurrence: u64,
        /// What kind of fault.
        kind: FaultKind,
    },
    /// The recovery layer reported a decision.
    Recovery(RecoveryEvent),
}

/// The ordered record of a chaos run.
///
/// Events appear in the order they happened on the (serial) consultation
/// path, so for a fixed [`crate::FaultPlan`] seed the report — including its
/// [`FaultReport::to_json`] bytes — is identical across runs and worker-pool
/// sizes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// All events, in order.
    pub events: Vec<ChaosEvent>,
}

impl FaultReport {
    /// Number of injected faults at `site`.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Injected { site: s, .. } if *s == site))
            .count() as u64
    }

    /// Total injected faults across all sites.
    pub fn injected_total(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Injected { .. }))
            .count() as u64
    }

    /// The distinct sites that had at least one injected fault, in
    /// [`FaultSite::ALL`] order.
    pub fn sites_injected(&self) -> Vec<FaultSite> {
        FaultSite::ALL
            .iter()
            .copied()
            .filter(|&s| self.injected_at(s) > 0)
            .collect()
    }

    /// Whether the report contains a [`RecoveryEvent::Reprovisioned`] entry.
    pub fn reprovisioned(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::Recovery(RecoveryEvent::Reprovisioned { .. })))
    }

    /// Whether the report contains a [`RecoveryEvent::Degraded`] entry.
    pub fn degraded(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::Recovery(RecoveryEvent::Degraded { .. })))
    }

    /// Number of [`RecoveryEvent::Retry`] entries.
    pub fn retries(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ChaosEvent::Recovery(RecoveryEvent::Retry { .. })))
            .count() as u64
    }

    /// Deterministic JSON encoding of the report.
    ///
    /// Hand-rolled (the workspace vendors no JSON serializer) and byte-stable:
    /// field order is fixed, all values are integers or static strings, and
    /// no timestamps or addresses are included. Equal reports encode to equal
    /// bytes, which is how the chaos suite and the CI artifact compare runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        out.push_str("{\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match event {
                ChaosEvent::Injected {
                    site,
                    occurrence,
                    kind,
                } => {
                    out.push_str(&format!(
                        "{{\"type\":\"injected\",\"site\":\"{}\",\"occurrence\":{},\"kind\":\"{}\"}}",
                        site.name(),
                        occurrence,
                        kind.name()
                    ));
                }
                ChaosEvent::Recovery(r) => match r {
                    RecoveryEvent::Retry {
                        site,
                        attempt,
                        backoff_ns,
                    } => out.push_str(&format!(
                        "{{\"type\":\"retry\",\"site\":\"{}\",\"attempt\":{},\"backoff_ns\":{}}}",
                        site.name(),
                        attempt,
                        backoff_ns
                    )),
                    RecoveryEvent::Recovered { site, attempts } => out.push_str(&format!(
                        "{{\"type\":\"recovered\",\"site\":\"{}\",\"attempts\":{}}}",
                        site.name(),
                        attempts
                    )),
                    RecoveryEvent::RetriesExhausted { site, attempts } => out.push_str(&format!(
                        "{{\"type\":\"retries-exhausted\",\"site\":\"{}\",\"attempts\":{}}}",
                        site.name(),
                        attempts
                    )),
                    RecoveryEvent::Reprovisioned { reason } => out.push_str(&format!(
                        "{{\"type\":\"reprovisioned\",\"reason\":\"{reason}\"}}"
                    )),
                    RecoveryEvent::Degraded { reason } => out.push_str(&format!(
                        "{{\"type\":\"degraded\",\"reason\":\"{reason}\"}}"
                    )),
                },
            }
        }
        out.push_str("],\"injected_total\":");
        out.push_str(&self.injected_total().to_string());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultReport {
        FaultReport {
            events: vec![
                ChaosEvent::Injected {
                    site: FaultSite::EcallEnter,
                    occurrence: 3,
                    kind: FaultKind::Transient,
                },
                ChaosEvent::Recovery(RecoveryEvent::Retry {
                    site: FaultSite::EcallEnter,
                    attempt: 0,
                    backoff_ns: 1_000_000,
                }),
                ChaosEvent::Recovery(RecoveryEvent::Recovered {
                    site: FaultSite::EcallEnter,
                    attempts: 2,
                }),
                ChaosEvent::Injected {
                    site: FaultSite::Seal,
                    occurrence: 0,
                    kind: FaultKind::Corruption,
                },
                ChaosEvent::Recovery(RecoveryEvent::Reprovisioned {
                    reason: "sealed-state corruption",
                }),
            ],
        }
    }

    #[test]
    fn counts_and_site_queries() {
        let r = sample();
        assert_eq!(r.injected_total(), 2);
        assert_eq!(r.injected_at(FaultSite::EcallEnter), 1);
        assert_eq!(r.injected_at(FaultSite::Unseal), 0);
        assert_eq!(
            r.sites_injected(),
            vec![FaultSite::EcallEnter, FaultSite::Seal]
        );
        assert!(r.reprovisioned());
        assert!(!r.degraded());
        assert_eq!(r.retries(), 1);
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"events\":["));
        assert!(a.contains("\"type\":\"injected\""));
        assert!(a.contains("\"site\":\"ecall-enter\""));
        assert!(a.contains("\"type\":\"reprovisioned\""));
        assert!(a.ends_with("\"injected_total\":2}"));
    }

    #[test]
    fn empty_report_encodes() {
        assert_eq!(
            FaultReport::default().to_json(),
            "{\"events\":[],\"injected_total\":0}"
        );
    }
}
