//! Differential property suite for the Harvey lazy-reduction NTT kernels.
//!
//! The lazy `forward`/`inverse`/`negacyclic_multiply` path must be *exactly*
//! equal — bit for bit — to two independent oracles at every supported
//! `(n, p)` tier: the retained pre-change eager transforms
//! (`*_reference`) and the schoolbook `negacyclic_multiply_naive` O(n²)
//! convolution. Adversarial inputs exercise the `[0, 4p)` / `[0, 2p)` lazy
//! bounds documented in DESIGN.md §16, and every kernel output is checked
//! against the canonical-range invariant (`< p`).

use hesgx_bfv::arith::{largest_prime_congruent_one, MAX_LIMB_BITS};
use hesgx_bfv::ntt::{negacyclic_multiply_naive, NttTable};
use hesgx_crypto::rng::ChaChaRng;

/// Transform lengths used across the stack: 8–256 by the unit corpus,
/// 256/1024 by the pipeline (`for_range` / paper parameters), 4096 as the
/// bench headline tier.
const DEGREES: &[usize] = &[8, 64, 256, 1024, 4096];

/// Modulus bit-sizes per tier: small batching primes up to the widest
/// supported limb.
const PRIME_BITS: &[u32] = &[24, 30, 45, MAX_LIMB_BITS];

fn tiers() -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    for &n in DEGREES {
        for &bits in PRIME_BITS {
            out.push((n, largest_prime_congruent_one(bits, 2 * n as u64)));
        }
    }
    out
}

fn random_canonical(n: usize, p: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaChaRng::from_seed(seed);
    (0..n).map(|_| rng.next_below(p)).collect()
}

/// Inputs hugging the lazy bounds: everything interesting below `limit`
/// (multiples of `p` ± 1, the bound itself − 1), cycled across the slots.
fn straddling(n: usize, p: u64, limit: u64) -> Vec<u64> {
    let probes = [
        0,
        1,
        p - 1,
        p,
        p + 1,
        2 * p - 1,
        (2 * p).min(limit - 1),
        (2 * p + 1).min(limit - 1),
        (3 * p).min(limit - 1),
        limit - 1,
    ];
    (0..n).map(|i| probes[i % probes.len()]).collect()
}

fn assert_canonical(values: &[u64], p: u64, what: &str) {
    for (i, &v) in values.iter().enumerate() {
        assert!(v < p, "{what}: slot {i} = {v} not canonical (p = {p})");
    }
}

#[test]
fn lazy_forward_matches_eager_reference_all_tiers() {
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);
        let input = random_canonical(n, p, n as u64 ^ p);
        let mut lazy = input.clone();
        let mut eager = input;
        table.forward(&mut lazy);
        table.forward_reference(&mut eager);
        assert_eq!(lazy, eager, "forward diverged at n={n} p={p}");
        assert_canonical(&lazy, p, "forward");
    }
}

#[test]
fn lazy_inverse_matches_eager_reference_all_tiers() {
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);
        let input = random_canonical(n, p, (n as u64).rotate_left(7) ^ p);
        let mut lazy = input.clone();
        let mut eager = input;
        table.inverse(&mut lazy);
        table.inverse_reference(&mut eager);
        assert_eq!(lazy, eager, "inverse diverged at n={n} p={p}");
        assert_canonical(&lazy, p, "inverse");
    }
}

#[test]
fn lazy_multiply_matches_eager_reference_all_tiers() {
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);
        let a = random_canonical(n, p, 11 * n as u64 + 1);
        let b = random_canonical(n, p, 13 * n as u64 + 2);
        let lazy = table.negacyclic_multiply(&a, &b);
        assert_eq!(
            lazy,
            table.negacyclic_multiply_reference(&a, &b),
            "negacyclic_multiply diverged at n={n} p={p}"
        );
        assert_canonical(&lazy, p, "negacyclic_multiply");
    }
}

#[test]
fn cached_operand_multiply_matches_eager_reference_all_tiers() {
    // The provisioning-time cached path (one forward transform, folded
    // n^{-1}) must agree bit-for-bit with both the symmetric lazy kernel
    // and the eager reference at every tier.
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);
        let a = random_canonical(n, p, 29 * n as u64 + 6);
        let b = random_canonical(n, p, 31 * n as u64 + 7);
        let cached = table.prepare_cached_operand(&b);
        let via_cache = table.negacyclic_multiply_cached(&a, &cached);
        assert_eq!(
            via_cache,
            table.negacyclic_multiply(&a, &b),
            "cached vs lazy diverged at n={n} p={p}"
        );
        assert_eq!(
            via_cache,
            table.negacyclic_multiply_reference(&a, &b),
            "cached vs eager diverged at n={n} p={p}"
        );
        assert_canonical(&via_cache, p, "negacyclic_multiply_cached");
    }
}

#[test]
fn lazy_multiply_matches_schoolbook_oracle() {
    // The O(n²) oracle is independent of *both* NTT implementations. Kept
    // to n ≤ 1024 so the suite stays fast in debug builds; the 4096 tier is
    // covered transitively by the reference-equality tests above.
    for (n, p) in tiers() {
        if n > 1024 {
            continue;
        }
        let table = NttTable::new(n, p);
        let a = random_canonical(n, p, 17 * n as u64 + 3);
        let b = random_canonical(n, p, 19 * n as u64 + 4);
        assert_eq!(
            table.negacyclic_multiply(&a, &b),
            negacyclic_multiply_naive(&a, &b, p),
            "schoolbook mismatch at n={n} p={p}"
        );
    }
}

#[test]
fn adversarial_constant_inputs() {
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);
        for value in [0u64, p - 1] {
            let input = vec![value; n];
            let mut lazy = input.clone();
            let mut eager = input.clone();
            table.forward(&mut lazy);
            table.forward_reference(&mut eager);
            assert_eq!(lazy, eager, "forward(const {value}) at n={n} p={p}");
            assert_canonical(&lazy, p, "forward(const)");

            let mut lazy = input.clone();
            let mut eager = input;
            table.inverse(&mut lazy);
            table.inverse_reference(&mut eager);
            assert_eq!(lazy, eager, "inverse(const {value}) at n={n} p={p}");
            assert_canonical(&lazy, p, "inverse(const)");
        }
        // all-zero times all-(p-1) stays all-zero.
        let zero = vec![0u64; n];
        let maxed = vec![p - 1; n];
        assert_eq!(table.negacyclic_multiply(&zero, &maxed), zero);
    }
}

#[test]
fn adversarial_inputs_straddling_lazy_bounds() {
    // `forward` accepts anything below 4p; `inverse` anything below 2p.
    // Both must agree with the eager oracle run on the values reduced to
    // canonical form (the transforms are functions of residues mod p).
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);

        let wild = straddling(n, p, 4 * p);
        let mut lazy = wild.clone();
        let mut eager: Vec<u64> = wild.iter().map(|&v| v % p).collect();
        table.forward(&mut lazy);
        table.forward_reference(&mut eager);
        assert_eq!(lazy, eager, "forward on [0,4p) inputs at n={n} p={p}");
        assert_canonical(&lazy, p, "forward straddling");

        let wild = straddling(n, p, 2 * p);
        let mut lazy = wild.clone();
        let mut eager: Vec<u64> = wild.iter().map(|&v| v % p).collect();
        table.inverse(&mut lazy);
        table.inverse_reference(&mut eager);
        assert_eq!(lazy, eager, "inverse on [0,2p) inputs at n={n} p={p}");
        assert_canonical(&lazy, p, "inverse straddling");
    }
}

#[test]
fn roundtrip_is_identity_all_tiers() {
    for (n, p) in tiers() {
        let table = NttTable::new(n, p);
        let original = random_canonical(n, p, 23 * n as u64 + 5);
        let mut values = original.clone();
        table.forward(&mut values);
        table.inverse(&mut values);
        assert_eq!(values, original, "roundtrip at n={n} p={p}");
    }
}
