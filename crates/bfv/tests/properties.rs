//! Property-based tests of the FV scheme: homomorphism over random inputs,
//! encoder round-trips, and NTT correctness against the schoolbook oracle.

use hesgx_bfv::context::BfvContext;
use hesgx_bfv::encoding::{BatchEncoder, IntegerEncoder, ScalarEncoder};
use hesgx_bfv::ntt::{negacyclic_multiply_naive, NttTable};
use hesgx_bfv::prelude::*;
use hesgx_crypto::rng::ChaChaRng;
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

struct Fixture {
    ctx: Arc<BfvContext>,
    encryptor: Encryptor,
    decryptor: Decryptor,
    evaluator: Evaluator,
    evk: EvaluationKeys,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = BfvContext::new(presets::test_n256()).unwrap();
        let mut rng = ChaChaRng::from_seed(1234);
        let keygen = KeyGenerator::new(ctx.clone(), &mut rng);
        Fixture {
            encryptor: Encryptor::new(ctx.clone(), keygen.public_key()),
            decryptor: Decryptor::new(ctx.clone(), keygen.secret_key()),
            evaluator: Evaluator::new(ctx.clone()),
            evk: keygen.evaluation_keys(&mut rng),
            ctx,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encrypt_decrypt_identity(v in 0u64..4099, seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().plain_modulus();
        let mut rng = ChaChaRng::from_seed(seed);
        let ct = f.encryptor.encrypt(&Plaintext::constant(v % t), &mut rng).unwrap();
        prop_assert_eq!(f.decryptor.decrypt(&ct).unwrap().coeffs()[0], v % t);
    }

    #[test]
    fn addition_homomorphism(a in 0u64..4000, b in 0u64..3000, seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().plain_modulus();
        let mut rng = ChaChaRng::from_seed(seed);
        let ca = f.encryptor.encrypt(&Plaintext::constant(a % t), &mut rng).unwrap();
        let cb = f.encryptor.encrypt(&Plaintext::constant(b % t), &mut rng).unwrap();
        let sum = f.evaluator.add(&ca, &cb).unwrap();
        prop_assert_eq!(f.decryptor.decrypt(&sum).unwrap().coeffs()[0], (a + b) % t);
    }

    #[test]
    fn multiplication_homomorphism(a in 0u64..60, b in 0u64..60, seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().plain_modulus();
        let mut rng = ChaChaRng::from_seed(seed);
        let ca = f.encryptor.encrypt(&Plaintext::constant(a), &mut rng).unwrap();
        let cb = f.encryptor.encrypt(&Plaintext::constant(b), &mut rng).unwrap();
        let prod = f.evaluator.multiply(&ca, &cb).unwrap();
        prop_assert_eq!(f.decryptor.decrypt(&prod).unwrap().coeffs()[0], (a * b) % t);
        // ... and relinearization preserves the value.
        let relin = f.evaluator.relinearize(&prod, &f.evk).unwrap();
        prop_assert_eq!(f.decryptor.decrypt(&relin).unwrap().coeffs()[0], (a * b) % t);
    }

    #[test]
    fn scalar_multiplication_homomorphism(a in 0u64..500, w in -60i64..60, seed in any::<u64>()) {
        let f = fixture();
        let t = f.ctx.params().plain_modulus();
        let mut rng = ChaChaRng::from_seed(seed);
        let ca = f.encryptor.encrypt(&Plaintext::constant(a), &mut rng).unwrap();
        let prod = f.evaluator.mul_plain_signed_scalar(&ca, w).unwrap();
        let expect = ((a as i64 * w).rem_euclid(t as i64)) as u64;
        prop_assert_eq!(f.decryptor.decrypt(&prod).unwrap().coeffs()[0], expect);
    }

    #[test]
    fn linearity_distributes(a in 0u64..100, b in 0u64..100, w in 1i64..30, seed in any::<u64>()) {
        // w*(a + b) == w*a + w*b homomorphically.
        let f = fixture();
        let mut rng = ChaChaRng::from_seed(seed);
        let ca = f.encryptor.encrypt(&Plaintext::constant(a), &mut rng).unwrap();
        let cb = f.encryptor.encrypt(&Plaintext::constant(b), &mut rng).unwrap();
        let lhs = f.evaluator.mul_plain_signed_scalar(&f.evaluator.add(&ca, &cb).unwrap(), w).unwrap();
        let wa = f.evaluator.mul_plain_signed_scalar(&ca, w).unwrap();
        let wb = f.evaluator.mul_plain_signed_scalar(&cb, w).unwrap();
        let rhs = f.evaluator.add(&wa, &wb).unwrap();
        prop_assert_eq!(
            f.decryptor.decrypt(&lhs).unwrap().coeffs()[0],
            f.decryptor.decrypt(&rhs).unwrap().coeffs()[0]
        );
    }

    #[test]
    fn scalar_encoder_roundtrip(v in -2000i64..2000) {
        let enc = ScalarEncoder::new(4099);
        prop_assert_eq!(enc.decode(&enc.encode(v).unwrap()), v);
    }

    #[test]
    fn integer_encoder_roundtrip(v in any::<i32>()) {
        let enc = IntegerEncoder::new(65537, 1024);
        prop_assert_eq!(enc.decode(&enc.encode(v as i64).unwrap()).unwrap(), v as i64);
    }

    #[test]
    fn batch_encoder_roundtrip(values in proptest::collection::vec(0u64..65537, 1..64)) {
        static ENC: OnceLock<BatchEncoder> = OnceLock::new();
        let enc = ENC.get_or_init(|| {
            BatchEncoder::new(&presets::paper_n1024()).unwrap()
        });
        let decoded = enc.decode(&enc.encode(&values).unwrap());
        prop_assert_eq!(&decoded[..values.len()], &values[..]);
        prop_assert!(decoded[values.len()..].iter().all(|&v| v == 0));
    }

    #[test]
    fn ntt_multiply_matches_schoolbook(seed in any::<u64>()) {
        let n = 64;
        let p = hesgx_bfv::arith::largest_prime_congruent_one(40, 2 * n as u64);
        let table = NttTable::new(n, p);
        let mut rng = ChaChaRng::from_seed(seed);
        let a: Vec<u64> = (0..n).map(|_| rng.next_below(p)).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.next_below(p)).collect();
        prop_assert_eq!(
            table.negacyclic_multiply(&a, &b),
            negacyclic_multiply_naive(&a, &b, p)
        );
    }

    #[test]
    fn noise_budget_monotone_under_adds(v in 0u64..100, adds in 1usize..6, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = ChaChaRng::from_seed(seed);
        let ct = f.encryptor.encrypt(&Plaintext::constant(v), &mut rng).unwrap();
        let fresh = f.decryptor.invariant_noise_budget(&ct).unwrap();
        let mut acc = ct.clone();
        for _ in 0..adds {
            acc = f.evaluator.add(&acc, &ct).unwrap();
        }
        let after = f.decryptor.invariant_noise_budget(&acc).unwrap();
        prop_assert!(after <= fresh);
        prop_assert!(after + 8 >= fresh.min(after + 8), "adds are cheap");
        // Value still correct.
        let t = f.ctx.params().plain_modulus();
        prop_assert_eq!(
            f.decryptor.decrypt(&acc).unwrap().coeffs()[0],
            (v * (adds as u64 + 1)) % t
        );
    }
}
