//! RNS polynomials over `R_q = Z_q[x]/(x^n + 1)`.
//!
//! A polynomial is stored as one residue vector per coefficient-modulus limb,
//! either in coefficient form or in NTT (evaluation) form. All arithmetic is
//! component-wise per limb; only ciphertext multiplication and decryption ever
//! reconstruct full-width coefficients.

use crate::arith::{add_mod, mul_mod, sub_mod};
use crate::context::BfvContext;
use serde::{Deserialize, Serialize};

/// Representation of an [`RnsPoly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolyForm {
    /// Coefficient (power-basis) representation.
    Coeff,
    /// Number-theoretic-transform (evaluation) representation.
    Ntt,
}

/// A polynomial in RNS representation: `limbs[i][j]` is coefficient `j`
/// reduced modulo the `i`-th coefficient modulus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RnsPoly {
    pub(crate) limbs: Vec<Vec<u64>>,
    pub(crate) form: PolyForm,
}

impl RnsPoly {
    /// The zero polynomial for `ctx` in the requested form.
    pub fn zero(ctx: &BfvContext, form: PolyForm) -> Self {
        RnsPoly {
            limbs: vec![vec![0u64; ctx.poly_degree()]; ctx.limb_count()],
            form,
        }
    }

    /// Builds a polynomial from signed small coefficients (e.g. sampled noise
    /// or ternary secrets), reducing each into every limb.
    pub fn from_signed(ctx: &BfvContext, coeffs: &[i64], form: PolyForm) -> Self {
        assert_eq!(coeffs.len(), ctx.poly_degree());
        let mut poly = RnsPoly::zero(ctx, PolyForm::Coeff);
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            for (j, &c) in coeffs.iter().enumerate() {
                poly.limbs[i][j] = if c >= 0 {
                    c as u64 % qi
                } else {
                    qi - ((-c) as u64 % qi)
                } % qi;
            }
        }
        if form == PolyForm::Ntt {
            poly.to_ntt(ctx);
        }
        poly
    }

    /// Builds a polynomial whose coefficients are `coeffs[j] · scale_i` in
    /// each limb, where `scale_i` is a per-limb constant. Used for `Δ · m`.
    pub(crate) fn from_scaled_plain(ctx: &BfvContext, coeffs: &[u64], scale_mod: &[u64]) -> Self {
        let n = ctx.poly_degree();
        assert!(coeffs.len() <= n);
        let mut poly = RnsPoly::zero(ctx, PolyForm::Coeff);
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            let s = scale_mod[i];
            for (j, &c) in coeffs.iter().enumerate() {
                poly.limbs[i][j] = mul_mod(c % qi, s, qi);
            }
        }
        poly
    }

    /// The representation this polynomial is currently in.
    pub fn form(&self) -> PolyForm {
        self.form
    }

    /// Converts to NTT form in place (no-op if already there).
    pub fn to_ntt(&mut self, ctx: &BfvContext) {
        if self.form == PolyForm::Ntt {
            return;
        }
        for (limb, table) in self.limbs.iter_mut().zip(ctx.ntt_tables.iter()) {
            table.forward(limb);
        }
        self.form = PolyForm::Ntt;
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn to_coeff(&mut self, ctx: &BfvContext) {
        if self.form == PolyForm::Coeff {
            return;
        }
        for (limb, table) in self.limbs.iter_mut().zip(ctx.ntt_tables.iter()) {
            table.inverse(limb);
        }
        self.form = PolyForm::Coeff;
    }

    /// `self += other` (forms must match).
    pub fn add_assign(&mut self, other: &RnsPoly, ctx: &BfvContext) {
        assert_eq!(self.form, other.form, "form mismatch in add");
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            for j in 0..self.limbs[i].len() {
                self.limbs[i][j] = add_mod(self.limbs[i][j], other.limbs[i][j], qi);
            }
        }
    }

    /// `self -= other` (forms must match).
    pub fn sub_assign(&mut self, other: &RnsPoly, ctx: &BfvContext) {
        assert_eq!(self.form, other.form, "form mismatch in sub");
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            for j in 0..self.limbs[i].len() {
                self.limbs[i][j] = sub_mod(self.limbs[i][j], other.limbs[i][j], qi);
            }
        }
    }

    /// `self = -self`.
    pub fn negate(&mut self, ctx: &BfvContext) {
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            for v in self.limbs[i].iter_mut() {
                *v = if *v == 0 { 0 } else { qi - *v };
            }
        }
    }

    /// Pointwise product (both operands must be in NTT form).
    ///
    /// Uses the per-limb Barrett reducers (no `u128 %` division in the
    /// loop); results are identical to the division form.
    pub fn mul_pointwise(&self, other: &RnsPoly, ctx: &BfvContext) -> RnsPoly {
        assert_eq!(self.form, PolyForm::Ntt);
        assert_eq!(other.form, PolyForm::Ntt);
        let mut out = self.clone();
        for (i, table) in ctx.ntt_tables.iter().enumerate() {
            let barrett = table.barrett();
            for j in 0..out.limbs[i].len() {
                out.limbs[i][j] = barrett.mul_mod(out.limbs[i][j], other.limbs[i][j]);
            }
        }
        out
    }

    /// Pointwise multiply-accumulate: `self += a ⊙ b` (all NTT form).
    pub fn mul_acc(&mut self, a: &RnsPoly, b: &RnsPoly, ctx: &BfvContext) {
        assert_eq!(self.form, PolyForm::Ntt);
        assert_eq!(a.form, PolyForm::Ntt);
        assert_eq!(b.form, PolyForm::Ntt);
        for (i, (&qi, table)) in ctx
            .params()
            .coeff_moduli()
            .iter()
            .zip(ctx.ntt_tables.iter())
            .enumerate()
        {
            let barrett = table.barrett();
            for j in 0..self.limbs[i].len() {
                let prod = barrett.mul_mod(a.limbs[i][j], b.limbs[i][j]);
                self.limbs[i][j] = add_mod(self.limbs[i][j], prod, qi);
            }
        }
    }

    /// Multiplies every coefficient by a small scalar (Shoup fast path —
    /// this is the hot loop of homomorphic convolution).
    pub fn scale_u64(&mut self, scalar: u64, ctx: &BfvContext) {
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            let s = scalar % qi;
            let s_shoup = crate::arith::shoup_precompute(s, qi);
            for v in self.limbs[i].iter_mut() {
                *v = crate::arith::mul_mod_shoup(*v, s, s_shoup, qi);
            }
        }
    }

    /// [`RnsPoly::scale_u64`] with the per-limb `(s mod qi, shoup)` pairs
    /// precomputed once at provisioning instead of per call — the per-limb
    /// `u128` division in `shoup_precompute` is the dominant per-call cost
    /// for small polynomials.
    pub fn scale_u64_prepared(&mut self, scales: &[(u64, u64)], ctx: &BfvContext) {
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            let (s, s_shoup) = scales[i];
            for v in self.limbs[i].iter_mut() {
                *v = crate::arith::mul_mod_shoup(*v, s, s_shoup, qi);
            }
        }
    }

    /// Fused scalar multiply-accumulate: `self += (±1)·src·s`, with the
    /// per-limb `(s mod qi, shoup)` pairs precomputed. Value-for-value
    /// identical to clone → `scale_u64` → `negate` → `add_assign`, without
    /// the temporary polynomial.
    pub fn scale_acc_prepared(
        &mut self,
        src: &RnsPoly,
        scales: &[(u64, u64)],
        negate: bool,
        ctx: &BfvContext,
    ) {
        assert_eq!(self.form, src.form, "form mismatch in scale_acc");
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            let (s, s_shoup) = scales[i];
            for (dst, &v) in self.limbs[i].iter_mut().zip(src.limbs[i].iter()) {
                let mut prod = crate::arith::mul_mod_shoup(v, s, s_shoup, qi);
                if negate && prod != 0 {
                    prod = qi - prod;
                }
                *dst = add_mod(*dst, prod, qi);
            }
        }
    }

    /// Infinity norm of the centered coefficients, reconstructed over the
    /// full modulus. Only meaningful in coefficient form.
    ///
    /// Returns the bit length of the largest |coefficient| (0 for the zero
    /// polynomial). Used by noise-budget estimation.
    pub fn centered_norm_bits(&self, ctx: &BfvContext) -> u32 {
        assert_eq!(self.form, PolyForm::Coeff);
        let n = ctx.poly_degree();
        let mut max_bits = 0;
        let mut residues = vec![0u64; ctx.limb_count()];
        for j in 0..n {
            for (r, limb) in residues.iter_mut().zip(&self.limbs) {
                *r = limb[j];
            }
            let x = ctx.crt_reconstruct(&residues);
            let mag = if x > ctx.q_half {
                ctx.q.wrapping_sub(x)
            } else {
                x
            };
            max_bits = max_bits.max(mag.bits());
        }
        max_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::presets;
    use hesgx_crypto::rng::ChaChaRng;

    fn ctx() -> std::sync::Arc<BfvContext> {
        BfvContext::new(presets::test_n256()).unwrap()
    }

    fn random_poly(ctx: &BfvContext, rng: &mut ChaChaRng) -> RnsPoly {
        let mut p = RnsPoly::zero(ctx, PolyForm::Coeff);
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            for v in p.limbs[i].iter_mut() {
                *v = rng.next_below(qi);
            }
        }
        p
    }

    #[test]
    fn ntt_roundtrip() {
        let ctx = ctx();
        let mut rng = ChaChaRng::from_seed(1);
        let original = random_poly(&ctx, &mut rng);
        let mut p = original.clone();
        p.to_ntt(&ctx);
        assert_eq!(p.form(), PolyForm::Ntt);
        p.to_coeff(&ctx);
        assert_eq!(p, original);
    }

    #[test]
    fn add_sub_cancel() {
        let ctx = ctx();
        let mut rng = ChaChaRng::from_seed(2);
        let a = random_poly(&ctx, &mut rng);
        let b = random_poly(&ctx, &mut rng);
        let mut c = a.clone();
        c.add_assign(&b, &ctx);
        c.sub_assign(&b, &ctx);
        assert_eq!(c, a);
    }

    #[test]
    fn negate_twice_identity() {
        let ctx = ctx();
        let mut rng = ChaChaRng::from_seed(3);
        let a = random_poly(&ctx, &mut rng);
        let mut b = a.clone();
        b.negate(&ctx);
        b.negate(&ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn ntt_multiplication_is_ring_multiplication() {
        // (x+1)(x-1) = x^2 - 1 in R_q.
        let ctx = ctx();
        let n = ctx.poly_degree();
        let mut a_coeffs = vec![0i64; n];
        a_coeffs[0] = 1;
        a_coeffs[1] = 1;
        let mut b_coeffs = vec![0i64; n];
        b_coeffs[0] = -1;
        b_coeffs[1] = 1;
        let a = RnsPoly::from_signed(&ctx, &a_coeffs, PolyForm::Ntt);
        let b = RnsPoly::from_signed(&ctx, &b_coeffs, PolyForm::Ntt);
        let mut prod = a.mul_pointwise(&b, &ctx);
        prod.to_coeff(&ctx);
        let mut expect = vec![0i64; n];
        expect[0] = -1;
        expect[2] = 1;
        assert_eq!(prod, RnsPoly::from_signed(&ctx, &expect, PolyForm::Coeff));
    }

    #[test]
    fn from_signed_handles_negative() {
        let ctx = ctx();
        let n = ctx.poly_degree();
        let mut coeffs = vec![0i64; n];
        coeffs[0] = -5;
        let p = RnsPoly::from_signed(&ctx, &coeffs, PolyForm::Coeff);
        for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
            assert_eq!(p.limbs[i][0], qi - 5);
        }
    }

    #[test]
    fn centered_norm_small_poly() {
        let ctx = ctx();
        let n = ctx.poly_degree();
        let mut coeffs = vec![0i64; n];
        coeffs[3] = -1000;
        coeffs[7] = 500;
        let p = RnsPoly::from_signed(&ctx, &coeffs, PolyForm::Coeff);
        assert_eq!(p.centered_norm_bits(&ctx), 10); // |−1000| needs 10 bits
    }

    #[test]
    fn prepared_scale_matches_scale_u64() {
        let ctx = ctx();
        let mut rng = ChaChaRng::from_seed(5);
        let a = random_poly(&ctx, &mut rng);
        for scalar in [0u64, 1, 3, 1000] {
            let scales: Vec<(u64, u64)> = ctx
                .params()
                .coeff_moduli()
                .iter()
                .map(|&qi| {
                    let s = scalar % qi;
                    (s, crate::arith::shoup_precompute(s, qi))
                })
                .collect();
            let mut plain = a.clone();
            plain.scale_u64(scalar, &ctx);
            let mut prepared = a.clone();
            prepared.scale_u64_prepared(&scales, &ctx);
            assert_eq!(plain, prepared, "scalar {scalar}");
        }
    }

    #[test]
    fn fused_scale_acc_matches_clone_scale_negate_add() {
        let ctx = ctx();
        let mut rng = ChaChaRng::from_seed(6);
        let acc0 = random_poly(&ctx, &mut rng);
        let src = random_poly(&ctx, &mut rng);
        for (scalar, negate) in [(3u64, false), (3, true), (0, true), (7, false)] {
            let scales: Vec<(u64, u64)> = ctx
                .params()
                .coeff_moduli()
                .iter()
                .map(|&qi| {
                    let s = scalar % qi;
                    (s, crate::arith::shoup_precompute(s, qi))
                })
                .collect();
            // Reference: the pre-fusion temporary-ciphertext sequence.
            let mut term = src.clone();
            term.scale_u64(scalar, &ctx);
            if negate {
                term.negate(&ctx);
            }
            let mut want = acc0.clone();
            want.add_assign(&term, &ctx);
            // Fused path.
            let mut got = acc0.clone();
            got.scale_acc_prepared(&src, &scales, negate, &ctx);
            assert_eq!(got, want, "scalar {scalar} negate {negate}");
        }
    }

    #[test]
    fn scale_u64_matches_repeated_add() {
        let ctx = ctx();
        let mut rng = ChaChaRng::from_seed(4);
        let a = random_poly(&ctx, &mut rng);
        let mut scaled = a.clone();
        scaled.scale_u64(3, &ctx);
        let mut sum = a.clone();
        sum.add_assign(&a, &ctx);
        sum.add_assign(&a, &ctx);
        assert_eq!(scaled, sum);
    }
}
