//! Precomputed context: NTT tables, CRT constants, the wide multiplication
//! basis, and reciprocals for exact rescaling.

use crate::arith::{self, inv_mod, mul_mod};
use crate::ntt::NttTable;
use crate::params::{EncryptionParameters, ParameterError};
use hesgx_crypto::sha256::sha256;
use hesgx_crypto::uint::{Reciprocal, U256};
use std::sync::Arc;

/// Bit size of the wide-basis primes used for exact tensor products.
const WIDE_PRIME_BITS: u32 = 45;

/// All precomputation for one parameter set.
///
/// Construction is `O(n log n)` per modulus; contexts are meant to be built
/// once and shared via [`Arc`].
#[derive(Debug)]
pub struct BfvContext {
    params: EncryptionParameters,
    /// Identifier binding keys/ciphertexts to this parameter set.
    id: [u8; 32],

    /// NTT tables per coefficient-modulus limb.
    pub(crate) ntt_tables: Vec<NttTable>,

    /// q = Π q_i.
    pub(crate) q: U256,
    pub(crate) rec_q: Reciprocal,
    pub(crate) q_half: U256,
    /// q / q_i.
    pub(crate) q_hat: Vec<U256>,
    /// (q / q_i)^{-1} mod q_i.
    pub(crate) q_hat_inv: Vec<u64>,

    /// Δ = floor(q / t).
    pub(crate) delta: U256,
    /// Δ mod q_i.
    pub(crate) delta_mod: Vec<u64>,

    /// Wide CRT basis for exact ciphertext multiplication.
    pub(crate) wide_tables: Vec<NttTable>,
    pub(crate) wide_primes: Vec<u64>,
    /// P = Π w_j.
    pub(crate) p_prod: U256,
    pub(crate) rec_p: Reciprocal,
    pub(crate) p_half: U256,
    /// P / w_j.
    pub(crate) p_hat: Vec<U256>,
    /// (P / w_j)^{-1} mod w_j.
    pub(crate) p_hat_inv: Vec<u64>,
    /// q mod w_j (for centering inputs into the wide basis).
    pub(crate) q_mod_wide: Vec<u64>,

    /// Precomputed discrete-Gaussian table for the error distribution.
    noise: crate::sampler::DiscreteGaussian,

    /// Number of relinearization decomposition components.
    pub(crate) decomp_count: usize,
    /// w^k mod q_i for each component k and limb i (row-major `[k][i]`).
    pub(crate) decomp_pow: Vec<Vec<u64>>,
}

impl BfvContext {
    /// Builds the context, validating that a wide basis exists for the
    /// parameter sizes.
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError::CoeffModulusTooLarge`] when the total
    /// coefficient modulus leaves no room for the exact-multiplication basis.
    pub fn new(params: EncryptionParameters) -> Result<Arc<Self>, ParameterError> {
        let n = params.poly_degree();
        let q_bits = params.coeff_modulus_bits();
        let log_n = n.trailing_zeros();
        // Exact tensor products need P > n * q^2 (with one bit to spare) and
        // the reciprocal machinery needs P below 2^250.
        let wide_target = 2 * q_bits + log_n + 2;
        if wide_target > 250 {
            return Err(ParameterError::CoeffModulusTooLarge(q_bits));
        }

        let ntt_tables: Vec<NttTable> = params
            .coeff_moduli()
            .iter()
            .map(|&q| NttTable::new(n, q))
            .collect();

        // q product and CRT constants.
        let mut q = U256::ONE;
        for &qi in params.coeff_moduli() {
            let (prod, carry) = q.carrying_mul_u64(qi);
            assert_eq!(carry, 0, "q fits in 256 bits by validation");
            q = prod;
        }
        let rec_q = Reciprocal::new(q);
        let q_half = q.shr(1);
        let mut q_hat = Vec::new();
        let mut q_hat_inv = Vec::new();
        for &qi in params.coeff_moduli() {
            let (hat, rem) = rec_div_by_u64(q, qi);
            debug_assert_eq!(rem, 0);
            q_hat.push(hat);
            let hat_mod = u256_mod_u64(hat, qi);
            q_hat_inv.push(inv_mod(hat_mod, qi).expect("limbs are coprime"));
        }

        // Δ = floor(q / t).
        let t = params.plain_modulus();
        let (delta, _) = rec_div_by_u64(q, t);
        let delta_mod = params
            .coeff_moduli()
            .iter()
            .map(|&qi| u256_mod_u64(delta, qi))
            .collect();

        // Wide basis: NTT primes, skipping any that collide with the
        // coefficient moduli, until the product covers the tensor bound. The
        // prime size adapts downward so the rounded-up product stays below the
        // 2^250 reciprocal limit even for large q (e.g. n = 2048 defaults).
        let step = 2 * n as u64;
        let wide_bits = (38..=WIDE_PRIME_BITS)
            .rev()
            .find(|&bits| bits * wide_target.div_ceil(bits) <= 250)
            .ok_or(ParameterError::CoeffModulusTooLarge(q_bits))?;
        let mut wide_primes = Vec::new();
        let mut p_prod = U256::ONE;
        let mut p_bits = 0u32;
        let mut candidate_pool = arith::primes_congruent_one(wide_bits, step, 16).into_iter();
        while p_bits < wide_target {
            let w = candidate_pool.next().expect("enough wide primes exist");
            if params.coeff_moduli().contains(&w) {
                continue;
            }
            let (prod, carry) = p_prod.carrying_mul_u64(w);
            assert_eq!(carry, 0, "wide product below 2^250 by validation");
            p_prod = prod;
            p_bits = p_prod.bits();
            wide_primes.push(w);
        }
        // The rescaling step computes t · |coefficient| inside a U256; the
        // coefficients are bounded by the tensor bound (2^wide_target), which
        // may be well below P itself.
        let t_bits = 64 - params.plain_modulus().leading_zeros();
        if t_bits + wide_target > 255 {
            return Err(ParameterError::CoeffModulusTooLarge(q_bits));
        }
        let wide_tables: Vec<NttTable> = wide_primes.iter().map(|&w| NttTable::new(n, w)).collect();
        let rec_p = Reciprocal::new(p_prod);
        let p_half = p_prod.shr(1);
        let mut p_hat = Vec::new();
        let mut p_hat_inv = Vec::new();
        for &w in &wide_primes {
            let (hat, rem) = rec_div_by_u64(p_prod, w);
            debug_assert_eq!(rem, 0);
            p_hat.push(hat);
            let hat_mod = u256_mod_u64(hat, w);
            p_hat_inv.push(inv_mod(hat_mod, w).expect("wide primes are coprime"));
        }
        let q_mod_wide = wide_primes.iter().map(|&w| u256_mod_u64(q, w)).collect();

        // Relinearization decomposition: q_bits split into dbc-bit digits.
        let dbc = params.decomposition_bit_count();
        let decomp_count = q_bits.div_ceil(dbc) as usize;
        let mut decomp_pow = Vec::with_capacity(decomp_count);
        for k in 0..decomp_count {
            let row: Vec<u64> = params
                .coeff_moduli()
                .iter()
                .map(|&qi| {
                    // (2^dbc)^k mod q_i
                    arith::pow_mod(arith::pow_mod(2, dbc as u64, qi), k as u64, qi)
                })
                .collect();
            decomp_pow.push(row);
        }

        let params_noise = params.noise_std_dev();
        // Context id: hash of the parameter encoding.
        let mut material = Vec::new();
        material.extend_from_slice(&(n as u64).to_le_bytes());
        for &qi in params.coeff_moduli() {
            material.extend_from_slice(&qi.to_le_bytes());
        }
        material.extend_from_slice(&t.to_le_bytes());
        material.extend_from_slice(&dbc.to_le_bytes());
        let id = sha256(&material);

        Ok(Arc::new(BfvContext {
            params,
            id,
            ntt_tables,
            q,
            rec_q,
            q_half,
            q_hat,
            q_hat_inv,
            delta,
            delta_mod,
            wide_tables,
            wide_primes,
            p_prod,
            rec_p,
            p_half,
            p_hat,
            p_hat_inv,
            q_mod_wide,
            noise: crate::sampler::DiscreteGaussian::new(params_noise),
            decomp_count,
            decomp_pow,
        }))
    }

    /// The validated parameters this context was built from.
    pub fn params(&self) -> &EncryptionParameters {
        &self.params
    }

    /// A 32-byte identifier binding artifacts to this parameter set.
    pub fn id(&self) -> &[u8; 32] {
        &self.id
    }

    /// The ring degree `n`.
    pub fn poly_degree(&self) -> usize {
        self.params.poly_degree()
    }

    /// Number of RNS limbs of `q`.
    pub fn limb_count(&self) -> usize {
        self.params.coeff_moduli().len()
    }

    /// The full coefficient modulus `q` as a big integer.
    pub fn coeff_modulus(&self) -> U256 {
        self.q
    }

    /// The scaling factor `Δ = floor(q / t)` applied to messages.
    pub fn delta(&self) -> U256 {
        self.delta
    }

    /// The precomputed error-distribution sampler.
    pub fn noise_sampler(&self) -> &crate::sampler::DiscreteGaussian {
        &self.noise
    }

    /// Reconstructs a coefficient from its RNS residues into `[0, q)`.
    pub(crate) fn crt_reconstruct(&self, residues: &[u64]) -> U256 {
        debug_assert_eq!(residues.len(), self.limb_count());
        let mut acc = hesgx_crypto::uint::U512::ZERO;
        for (i, &r) in residues.iter().enumerate() {
            let c = mul_mod(r, self.q_hat_inv[i], self.params.coeff_moduli()[i]);
            let (term, carry) = self.q_hat[i].carrying_mul_u64(c);
            let mut wide = hesgx_crypto::uint::U512::from_u256(term);
            wide.0[4] = carry;
            let (sum, overflow) = acc.overflowing_add(wide);
            debug_assert!(!overflow);
            acc = sum;
        }
        self.rec_q.reduce_u512(acc)
    }

    /// Reconstructs a wide-basis coefficient into `[0, P)`.
    pub(crate) fn crt_reconstruct_wide(&self, residues: &[u64]) -> U256 {
        debug_assert_eq!(residues.len(), self.wide_primes.len());
        let mut acc = hesgx_crypto::uint::U512::ZERO;
        for (j, &r) in residues.iter().enumerate() {
            let c = mul_mod(r, self.p_hat_inv[j], self.wide_primes[j]);
            let (term, carry) = self.p_hat[j].carrying_mul_u64(c);
            let mut wide = hesgx_crypto::uint::U512::from_u256(term);
            wide.0[4] = carry;
            let (sum, overflow) = acc.overflowing_add(wide);
            debug_assert!(!overflow);
            acc = sum;
        }
        self.rec_p.reduce_u512(acc)
    }
}

/// Divides a `U256` by a `u64`, returning quotient and remainder.
pub(crate) fn rec_div_by_u64(n: U256, d: u64) -> (U256, u64) {
    assert!(d > 0);
    let mut q = [0u64; 4];
    let mut rem: u128 = 0;
    for i in (0..4).rev() {
        let cur = rem << 64 | n.0[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    (U256(q), rem as u64)
}

/// Computes `n mod d` for a `u64` divisor.
pub(crate) fn u256_mod_u64(n: U256, d: u64) -> u64 {
    rec_div_by_u64(n, d).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::presets;

    #[test]
    fn context_builds_for_presets() {
        let ctx = BfvContext::new(presets::paper_n1024()).unwrap();
        assert_eq!(ctx.poly_degree(), 1024);
        assert_eq!(ctx.limb_count(), 2);
        assert!(ctx.wide_primes.len() >= 5);
        let ctx2 = BfvContext::new(presets::test_n256()).unwrap();
        assert_eq!(ctx2.poly_degree(), 256);
    }

    #[test]
    fn div_by_u64_matches_u128() {
        let n = U256::from_u128(123_456_789_012_345_678_901_234_567u128);
        let (q, r) = rec_div_by_u64(n, 97);
        assert_eq!(
            q.to_u128().unwrap(),
            123_456_789_012_345_678_901_234_567u128 / 97
        );
        assert_eq!(r as u128, 123_456_789_012_345_678_901_234_567u128 % 97);
    }

    #[test]
    fn crt_reconstruct_roundtrip() {
        let ctx = BfvContext::new(presets::paper_n1024()).unwrap();
        let moduli = ctx.params().coeff_moduli().to_vec();
        // Pick x, compute residues, reconstruct.
        let x = U256::from_u128(0xdead_beef_cafe_babe_0123_4567u128);
        let residues: Vec<u64> = moduli.iter().map(|&m| u256_mod_u64(x, m)).collect();
        assert_eq!(ctx.crt_reconstruct(&residues), x);
    }

    #[test]
    fn crt_reconstruct_wide_roundtrip() {
        let ctx = BfvContext::new(presets::test_n256()).unwrap();
        // Any value below P (the wide product has >= 130 bits here).
        let x = U256([0x1234_5678_9abc_def0, 0xfeed_beef, 0, 0]);
        let residues: Vec<u64> = ctx
            .wide_primes
            .iter()
            .map(|&w| u256_mod_u64(x, w))
            .collect();
        assert_eq!(ctx.crt_reconstruct_wide(&residues), x);
    }

    #[test]
    fn delta_times_t_close_to_q() {
        let ctx = BfvContext::new(presets::paper_n1024()).unwrap();
        let t = ctx.params().plain_modulus();
        let (dt, carry) = ctx.delta.carrying_mul_u64(t);
        assert_eq!(carry, 0);
        // q - Δt = q mod t < t
        let diff = ctx.q.wrapping_sub(dt);
        assert!(diff < U256::from_u64(t));
    }

    #[test]
    fn context_ids_differ_per_params() {
        let a = BfvContext::new(presets::paper_n1024()).unwrap();
        let b = BfvContext::new(presets::test_n256()).unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn wide_basis_covers_tensor_bound() {
        let ctx = BfvContext::new(presets::paper_n1024()).unwrap();
        let q_bits = ctx.params().coeff_modulus_bits();
        let n_bits = ctx.poly_degree().trailing_zeros();
        assert!(ctx.p_prod.bits() > 2 * q_bits + n_bits);
        assert!(ctx.p_prod.bits() <= 250);
    }
}

#[cfg(test)]
mod wide_basis_tests {
    use super::*;
    use crate::params::EncryptionParameters;

    #[test]
    fn wide_basis_adapts_for_large_degrees() {
        // n = 2048 with the default (112-bit) q needs a finer-grained basis;
        // this used to overflow the 2^250 reciprocal limit.
        for n in [2048usize, 4096] {
            let params = EncryptionParameters::builder()
                .poly_degree(n)
                .plain_modulus(65537)
                .build()
                .unwrap();
            let ctx = BfvContext::new(params).unwrap();
            let q_bits = ctx.params().coeff_modulus_bits();
            assert!(ctx.p_prod.bits() > 2 * q_bits + n.trailing_zeros());
            assert!(
                ctx.p_prod.bits() <= 250,
                "n={n}: {} bits",
                ctx.p_prod.bits()
            );
        }
    }

    #[test]
    fn multiplication_works_at_degree_2048() {
        use crate::decryptor::Decryptor;
        use crate::encryptor::Encryptor;
        use crate::keys::KeyGenerator;
        use crate::plaintext::Plaintext;
        use hesgx_crypto::rng::ChaChaRng;
        let params = EncryptionParameters::builder()
            .poly_degree(2048)
            .plain_modulus(65537)
            .build()
            .unwrap();
        let ctx = BfvContext::new(params).unwrap();
        let mut rng = ChaChaRng::from_seed(61);
        let keygen = KeyGenerator::new(ctx.clone(), &mut rng);
        let enc = Encryptor::new(ctx.clone(), keygen.public_key());
        let dec = Decryptor::new(ctx.clone(), keygen.secret_key());
        let eval = crate::evaluator::Evaluator::new(ctx);
        let a = enc.encrypt(&Plaintext::constant(123), &mut rng).unwrap();
        let b = enc.encrypt(&Plaintext::constant(45), &mut rng).unwrap();
        let prod = eval.multiply(&a, &b).unwrap();
        assert_eq!(dec.decrypt(&prod).unwrap().coeffs()[0], 123 * 45);
    }
}
