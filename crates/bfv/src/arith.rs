//! 64-bit modular arithmetic, deterministic Miller–Rabin, and NTT-friendly
//! prime generation.
//!
//! Everything here operates on moduli below 2^62 so that products fit in
//! `u128` without overflow.

/// Maximum supported modulus bit size for a single RNS limb.
pub const MAX_LIMB_BITS: u32 = 62;

/// Computes `a * b mod m` using a 128-bit intermediate.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    (a as u128 * b as u128 % m as u128) as u64
}

/// Computes `a + b mod m` for `a, b < m` (branchless — the inputs are
/// uniformly random in the NTT hot loops, so a compare-branch would
/// mispredict half the time).
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    let s = a + b; // cannot overflow: a, b < m <= 2^62
    let d = s.wrapping_sub(m);
    // mask = all-ones iff d underflowed (s < m).
    let mask = ((d as i64) >> 63) as u64;
    d.wrapping_add(m & mask)
}

/// Computes `a - b mod m` for `a, b < m` (branchless).
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    let d = a.wrapping_sub(b);
    let mask = ((d as i64) >> 63) as u64;
    d.wrapping_add(m & mask)
}

/// Precomputes the Shoup constant `floor(w · 2^64 / p)` for fast repeated
/// multiplication by the fixed operand `w` modulo `p`.
#[inline]
pub fn shoup_precompute(w: u64, p: u64) -> u64 {
    (((w as u128) << 64) / p as u128) as u64
}

/// Shoup modular multiplication: `x · w mod p` using the precomputed
/// `w_shoup = floor(w · 2^64 / p)`. Two multiplications, no division.
///
/// Requires `p < 2^63`; the result is fully reduced.
#[inline]
pub fn mul_mod_shoup(x: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let r = mul_mod_shoup_lazy(x, w, w_shoup, p);
    // r < 2p; reduce branchlessly.
    let d = r.wrapping_sub(p);
    let mask = ((d as i64) >> 63) as u64;
    d.wrapping_add(p & mask)
}

/// Lazy (Harvey-style) Shoup multiplication: returns `x · w mod p` reduced
/// only into `[0, 2p)`, skipping the final conditional subtraction.
///
/// Sound for **any** `x < 2^64` (not just canonical inputs): with
/// `w_shoup = floor(w·2^64/p)` the quotient estimate `q = floor(x·w_shoup /
/// 2^64)` satisfies `q > x·w/p − 2`, so `r = x·w − q·p < 2p`, and `q ≤
/// x·w/p` keeps `r ≥ 0`. This is what lets the NTT butterflies defer
/// reductions across whole passes (DESIGN.md §16).
#[inline]
pub fn mul_mod_shoup_lazy(x: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = ((x as u128 * w_shoup as u128) >> 64) as u64;
    x.wrapping_mul(w).wrapping_sub(q.wrapping_mul(p))
}

/// High 128 bits of the 256-bit product `a · b`.
#[inline]
fn mulhi_u128(a: u128, b: u128) -> u128 {
    const M: u128 = u64::MAX as u128;
    let (a1, a0) = (a >> 64, a & M);
    let (b1, b0) = (b >> 64, b & M);
    let lo = a0 * b0;
    let mid1 = a0 * b1;
    let mid2 = a1 * b0;
    let carry = (lo >> 64) + (mid1 & M) + (mid2 & M);
    a1 * b1 + (mid1 >> 64) + (mid2 >> 64) + (carry >> 64)
}

/// Barrett reducer for 128-bit intermediates modulo an odd `p < 2^62`.
///
/// `u128 %` lowers to a software division (`__umodti3`, tens of cycles);
/// in the NTT pointwise stage that single division rivals the cost of a
/// whole butterfly pass. Barrett replaces it with two wide multiplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrettU128 {
    p: u64,
    /// `floor(2^128 / p)`; for odd `p` this equals `floor((2^128−1)/p)`,
    /// which is computable without 256-bit arithmetic.
    ratio: u128,
    /// `floor(2^64 / p)` (again `= floor((2^64−1)/p)` for odd `p`), used by
    /// the narrow-operand fast path in [`Self::mul_mod`]: when both operands
    /// fit 32 bits the product fits `u64` and a single 64×64→128 high
    /// multiply replaces the two 128-bit wide multiplies of [`Self::reduce`].
    ratio64: u64,
}

impl BarrettU128 {
    /// Precomputes the reduction constant for odd `p` with `3 ≤ p < 2^62`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is even or out of range (the NTT moduli are odd
    /// primes below [`MAX_LIMB_BITS`] bits, so this never fires in use).
    pub fn new(p: u64) -> Self {
        assert!(p >= 3 && !p.is_multiple_of(2), "p must be odd >= 3");
        assert!(p < 1 << MAX_LIMB_BITS, "p above {MAX_LIMB_BITS} bits");
        Self {
            p,
            ratio: u128::MAX / p as u128,
            ratio64: u64::MAX / p,
        }
    }

    /// The modulus this reducer was built for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Fully reduces any `x < 2^128` to the canonical range `[0, p)`.
    ///
    /// The quotient estimate `q = floor(x·ratio / 2^128)` is off by at most
    /// one from `floor(x/p)` (since `ratio ≥ 2^128/p − 1` and `x < 2^128`),
    /// so `x − q·p < 2p` and one conditional subtraction finishes the job.
    #[inline]
    pub fn reduce(&self, x: u128) -> u64 {
        let q = mulhi_u128(x, self.ratio);
        let mut r = (x - q * self.p as u128) as u64;
        if r >= self.p {
            r -= self.p;
        }
        r
    }

    /// `a · b mod p` for arbitrary `u64` operands (a product of two `u64`
    /// values always fits `u128`, so lazy `[0, 4p)` operands are covered).
    ///
    /// When both operands fit 32 bits — always true in production, where the
    /// workspace moduli stay below [`MAX_LIMB_BITS`] bits and operands are
    /// canonical or lazily `< 4p` — the product fits `u64` and the reduction
    /// runs against `ratio64` with one 64×64→128 high multiply. The quotient
    /// estimate `q = floor(x·ratio64 / 2^64)` satisfies
    /// `floor(x/p) − 1 ≤ q ≤ floor(x/p)` for `x < 2^64`, so the remainder
    /// lands in `[0, 2p)` and one conditional subtraction makes it
    /// canonical — bit-identical to the wide path by exactness.
    #[inline]
    pub fn mul_mod(&self, a: u64, b: u64) -> u64 {
        if (a | b) >> 32 == 0 {
            let x = a * b;
            let q = ((x as u128 * self.ratio64 as u128) >> 64) as u64;
            let mut r = x.wrapping_sub(q.wrapping_mul(self.p));
            if r >= self.p {
                r -= self.p;
            }
            r
        } else {
            self.reduce(a as u128 * b as u128)
        }
    }
}

/// Computes `a^e mod m`.
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    let mut result = 1 % m;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            result = mul_mod(result, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    result
}

/// Computes the modular inverse of `a` modulo `m` (extended Euclid).
///
/// Returns `None` when `gcd(a, m) != 1`.
pub fn inv_mod(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let quotient = old_r / r;
        (old_r, r) = (r, old_r - quotient * r);
        (old_s, s) = (s, old_s - quotient * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

/// Deterministic Miller–Rabin for 64-bit integers.
///
/// Uses the known-sufficient witness set for the full 64-bit range.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    // Sufficient deterministic witness set for n < 2^64 (Sinclair).
    'witness: for &a in &[2u64, 325, 9375, 28178, 450775, 9780504, 1795265022] {
        let a = a % n;
        if a == 0 {
            continue;
        }
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the largest prime `p < 2^bits` with `p ≡ 1 (mod modulus_step)`.
///
/// This is how NTT-friendly coefficient-modulus limbs and batching-friendly
/// plaintext moduli are generated: `modulus_step = 2n` guarantees a primitive
/// `2n`-th root of unity exists mod `p`.
///
/// # Panics
///
/// Panics if `bits` exceeds [`MAX_LIMB_BITS`] or no prime exists in range.
pub fn largest_prime_congruent_one(bits: u32, modulus_step: u64) -> u64 {
    assert!(
        bits <= MAX_LIMB_BITS,
        "limb size above {MAX_LIMB_BITS} bits"
    );
    assert!(bits >= 10, "limb size too small");
    let upper = 1u64 << bits;
    // Largest candidate of the form k*step + 1 below 2^bits.
    let mut candidate = (upper - 2) / modulus_step * modulus_step + 1;
    while candidate > modulus_step {
        if is_prime_u64(candidate) {
            return candidate;
        }
        candidate -= modulus_step;
    }
    panic!("no prime of {bits} bits congruent to 1 mod {modulus_step}");
}

/// Returns `count` distinct primes just below `2^bits`, each `≡ 1 (mod step)`.
pub fn primes_congruent_one(bits: u32, step: u64, count: usize) -> Vec<u64> {
    assert!(bits <= MAX_LIMB_BITS);
    let mut out = Vec::with_capacity(count);
    let upper = 1u64 << bits;
    let mut candidate = (upper - 2) / step * step + 1;
    while out.len() < count && candidate > step {
        if is_prime_u64(candidate) {
            out.push(candidate);
        }
        candidate -= step;
    }
    assert_eq!(out.len(), count, "not enough primes below 2^{bits}");
    out
}

/// Finds the smallest prime `p > lower` with `p ≡ 1 (mod step)`.
pub fn smallest_prime_congruent_one_above(lower: u64, step: u64) -> u64 {
    let mut candidate = lower / step * step + 1;
    while candidate <= lower {
        candidate += step;
    }
    loop {
        if is_prime_u64(candidate) {
            return candidate;
        }
        candidate = candidate
            .checked_add(step)
            .expect("prime search overflowed u64");
    }
}

/// Finds a generator of the multiplicative group mod prime `p` with known
/// factorization structure `p - 1 = 2^k * odd`, then returns a primitive
/// `order`-th root of unity.
///
/// `order` must divide `p - 1` and be a power of two.
pub fn primitive_root_of_unity(p: u64, order: u64) -> u64 {
    assert!(order.is_power_of_two(), "order must be a power of two");
    assert_eq!((p - 1) % order, 0, "order must divide p-1");
    let cofactor = (p - 1) / order;
    // Try small candidates: g = c^cofactor has order dividing `order`; it has
    // order exactly `order` iff g^(order/2) != 1.
    for c in 2..p {
        let g = pow_mod(c, cofactor, p);
        if g != 1 && pow_mod(g, order / 2, p) == p - 1 {
            return g;
        }
    }
    unreachable!("no primitive root found for prime {p}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_mod_matches_naive() {
        let m = (1u64 << 61) - 1;
        assert_eq!(mul_mod(m - 1, m - 1, m), 1);
        assert_eq!(mul_mod(0, 123, m), 0);
        assert_eq!(mul_mod(2, 3, 7), 6);
    }

    #[test]
    fn add_sub_mod_roundtrip() {
        let m = 1_000_003;
        for (a, b) in [(0u64, 0u64), (1, m - 1), (m - 1, m - 1), (5, 7)] {
            let s = add_mod(a, b, m);
            assert_eq!(sub_mod(s, b, m), a);
        }
    }

    #[test]
    fn pow_mod_fermat() {
        let p = 40961;
        for a in [2u64, 3, 12345] {
            assert_eq!(pow_mod(a, p - 1, p), 1);
        }
    }

    #[test]
    fn inv_mod_works() {
        let m = 12289;
        for a in 1..100u64 {
            let inv = inv_mod(a, m).unwrap();
            assert_eq!(mul_mod(a, inv, m), 1);
        }
        assert_eq!(inv_mod(6, 9), None);
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64(12289));
        assert!(is_prime_u64(40961));
        assert!(is_prime_u64(65537));
        assert!(is_prime_u64((1 << 61) - 1));
        assert!(!is_prime_u64(0));
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64(561));
        assert!(!is_prime_u64(3215031751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_prime_generation() {
        let n = 1024u64;
        let p = largest_prime_congruent_one(46, 2 * n);
        assert!(is_prime_u64(p));
        assert_eq!(p % (2 * n), 1);
        assert!(p < 1 << 46);

        let ps = primes_congruent_one(45, 2 * n, 5);
        assert_eq!(ps.len(), 5);
        for w in ps.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn batching_plaintext_primes() {
        // The classic NTT primes used as plaintext moduli.
        let t = smallest_prime_congruent_one_above(10_000, 2048);
        assert_eq!(t, 12289);
        let t2 = smallest_prime_congruent_one_above(40_000, 2048);
        assert_eq!(t2, 40961);
    }

    #[test]
    fn roots_of_unity() {
        let p = 12289; // 12289 - 1 = 2^12 * 3
        let w = primitive_root_of_unity(p, 4096);
        assert_eq!(pow_mod(w, 4096, p), 1);
        assert_ne!(pow_mod(w, 2048, p), 1);
    }
}

#[cfg(test)]
mod shoup_tests {
    use super::*;

    #[test]
    fn shoup_matches_mul_mod() {
        let p = largest_prime_congruent_one(52, 2048);
        for w in [1u64, 2, p - 1, 123_456_789, p / 2] {
            let ws = shoup_precompute(w, p);
            for x in [0u64, 1, p - 1, 987_654_321 % p, p / 3] {
                assert_eq!(mul_mod_shoup(x, w, ws, p), mul_mod(x, w, p), "x={x} w={w}");
            }
        }
    }

    #[test]
    fn lazy_shoup_bound_and_congruence_for_any_u64_input() {
        // The lazy form must stay below 2p and agree mod p even for inputs
        // far outside the canonical range (the Harvey passes feed it values
        // up to 4p, and the proof covers all of u64).
        let p = largest_prime_congruent_one(MAX_LIMB_BITS, 2048);
        for w in [1u64, p - 1, 0x1234_5678_9abc_def0 % p, p / 2 + 1] {
            let ws = shoup_precompute(w, p);
            for x in [0u64, 1, p - 1, 2 * p - 1, 4 * p - 1, u64::MAX] {
                let r = mul_mod_shoup_lazy(x, w, ws, p);
                assert!(r < 2 * p, "lazy result {r} >= 2p for x={x} w={w}");
                assert_eq!(r % p, mul_mod(x % p, w, p), "congruence x={x} w={w}");
            }
        }
    }

    #[test]
    fn barrett_matches_u128_remainder() {
        for p in [
            12289u64,
            40961,
            largest_prime_congruent_one(30, 2048),
            largest_prime_congruent_one(MAX_LIMB_BITS, 8192),
        ] {
            let red = BarrettU128::new(p);
            assert_eq!(red.modulus(), p);
            let probes = [
                0u128,
                1,
                p as u128 - 1,
                p as u128,
                4 * p as u128 - 1,
                (p as u128 - 1) * (p as u128 - 1),
                (4 * p as u128 - 1) * (4 * p as u128 - 1),
                u128::MAX,
            ];
            for x in probes {
                assert_eq!(red.reduce(x) as u128, x % p as u128, "p={p} x={x}");
            }
            for (a, b) in [(p - 1, p - 1), (4 * p - 1, 4 * p - 2), (1, 0)] {
                assert_eq!(red.mul_mod(a, b), mul_mod(a % p, b % p, p), "p={p}");
            }
        }
    }

    #[test]
    fn barrett_narrow_fast_path_matches_wide() {
        // Both operands below 2^32 take the ratio64 fast path; straddling
        // pairs exercise the gate itself (one wide operand forces the slow
        // path). Results must agree with the u128 remainder bit-for-bit.
        for p in [12289u64, 40961, 65537, (1 << 32) - 5] {
            let red = BarrettU128::new(p);
            let narrow = [0u64, 1, p % (1 << 32), u32::MAX as u64, 0xdead_beef];
            for &a in &narrow {
                for &b in &narrow {
                    assert_eq!(
                        red.mul_mod(a, b) as u128,
                        (a as u128 * b as u128) % p as u128,
                        "p={p} a={a} b={b}"
                    );
                }
                let wide = u64::MAX - 7;
                assert_eq!(
                    red.mul_mod(a, wide) as u128,
                    (a as u128 * wide as u128) % p as u128,
                    "p={p} a={a} straddle"
                );
            }
        }
    }
}
