//! Random sampling for FV: uniform ring elements, ternary secrets, and the
//! truncated discrete Gaussian error distribution `X` from the paper §II-B.

use crate::context::BfvContext;
use crate::params::NOISE_TRUNCATION_SIGMAS;
use crate::poly::{PolyForm, RnsPoly};
use hesgx_crypto::rng::ChaChaRng;

/// Samples a uniformly random element of `R_q` (per-limb uniform residues).
pub fn uniform_poly(ctx: &BfvContext, rng: &mut ChaChaRng, form: PolyForm) -> RnsPoly {
    let mut poly = RnsPoly::zero(ctx, PolyForm::Coeff);
    for (i, &qi) in ctx.params().coeff_moduli().iter().enumerate() {
        for v in poly.limbs[i].iter_mut() {
            *v = rng.next_below(qi);
        }
    }
    if form == PolyForm::Ntt {
        poly.to_ntt(ctx);
    }
    poly
}

/// Samples a ternary polynomial with coefficients in `{-1, 0, 1}` — the FV
/// secret-key distribution. Consumes 2 keystream bits per accepted trit
/// (rejecting the `0b11` pattern) instead of a full word.
pub fn ternary_signed(n: usize, rng: &mut ChaChaRng) -> Vec<i64> {
    let mut out = Vec::with_capacity(n);
    let mut word = 0u64;
    let mut bits_left = 0u32;
    while out.len() < n {
        if bits_left < 2 {
            word = rng.next_u64();
            bits_left = 64;
        }
        let trit = word & 3;
        word >>= 2;
        bits_left -= 2;
        if trit < 3 {
            out.push(trit as i64 - 1);
        }
    }
    out
}

/// Samples from the truncated discrete Gaussian with standard deviation
/// `sigma`, truncated at [`NOISE_TRUNCATION_SIGMAS`]·σ.
pub fn gaussian_signed(n: usize, sigma: f64, rng: &mut ChaChaRng) -> Vec<i64> {
    let bound = (NOISE_TRUNCATION_SIGMAS * sigma).ceil() as i64;
    (0..n)
        .map(|_| loop {
            let sample = (rng.next_gaussian() * sigma).round() as i64;
            if sample.abs() <= bound {
                break sample;
            }
        })
        .collect()
}

/// Table-based discrete Gaussian sampler (inverse-CDF over the truncated
/// support). Replaces per-sample Box–Muller transcendentals with one uniform
/// draw and a small binary search — the hot path of encryption.
#[derive(Debug, Clone)]
pub struct DiscreteGaussian {
    /// Cumulative thresholds over the support `-bound..=bound` (32-bit
    /// resolution: tail probabilities below 2^-32 round away, which is
    /// irrelevant at the simulation security level).
    cdf: Vec<u32>,
    bound: i64,
}

impl DiscreteGaussian {
    /// Builds the sampler for standard deviation `sigma`, truncated at
    /// [`NOISE_TRUNCATION_SIGMAS`]·σ.
    pub fn new(sigma: f64) -> Self {
        let bound = (NOISE_TRUNCATION_SIGMAS * sigma).ceil() as i64;
        let weights: Vec<f64> = (-bound..=bound)
            .map(|k| (-(k as f64 * k as f64) / (2.0 * sigma * sigma)).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(weights.len());
        for w in &weights {
            acc += w / total;
            cdf.push((acc.min(1.0) * u32::MAX as f64) as u32);
        }
        *cdf.last_mut().expect("non-empty support") = u32::MAX;
        DiscreteGaussian { cdf, bound }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut ChaChaRng) -> i64 {
        let u = rng.next_u32();
        let idx = self.cdf.partition_point(|&t| t < u);
        idx as i64 - self.bound
    }

    /// Fills a vector of `n` samples.
    pub fn sample_vec(&self, n: usize, rng: &mut ChaChaRng) -> Vec<i64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Samples a ternary secret directly as an [`RnsPoly`].
pub fn ternary_poly(ctx: &BfvContext, rng: &mut ChaChaRng, form: PolyForm) -> RnsPoly {
    let coeffs = ternary_signed(ctx.poly_degree(), rng);
    RnsPoly::from_signed(ctx, &coeffs, form)
}

/// Samples an error polynomial directly as an [`RnsPoly`] using the
/// context's precomputed table sampler.
pub fn gaussian_poly(ctx: &BfvContext, rng: &mut ChaChaRng, form: PolyForm) -> RnsPoly {
    let coeffs = ctx.noise_sampler().sample_vec(ctx.poly_degree(), rng);
    RnsPoly::from_signed(ctx, &coeffs, form)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::presets;

    #[test]
    fn ternary_values_in_range() {
        let mut rng = ChaChaRng::from_seed(1);
        let v = ternary_signed(10_000, &mut rng);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        // All three values occur.
        for target in -1..=1 {
            assert!(v.contains(&target));
        }
    }

    #[test]
    fn gaussian_bounded_and_centered() {
        let mut rng = ChaChaRng::from_seed(2);
        let sigma = 3.2;
        let v = gaussian_signed(20_000, sigma, &mut rng);
        let bound = (NOISE_TRUNCATION_SIGMAS * sigma).ceil() as i64;
        assert!(v.iter().all(|&x| x.abs() <= bound));
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((var.sqrt() - sigma).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_poly_covers_range() {
        let ctx = BfvContext::new(presets::test_n256()).unwrap();
        let mut rng = ChaChaRng::from_seed(3);
        let p = uniform_poly(&ctx, &mut rng, PolyForm::Coeff);
        let q0 = ctx.params().coeff_moduli()[0];
        assert!(p.limbs[0].iter().all(|&v| v < q0));
        // Not all identical.
        assert!(p.limbs[0].windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn table_sampler_moments_match() {
        let sigma = 3.2;
        let sampler = DiscreteGaussian::new(sigma);
        let mut rng = ChaChaRng::from_seed(12);
        let v = sampler.sample_vec(30_000, &mut rng);
        let bound = (NOISE_TRUNCATION_SIGMAS * sigma).ceil() as i64;
        assert!(v.iter().all(|&x| x.abs() <= bound));
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!((var.sqrt() - sigma).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ctx = BfvContext::new(presets::test_n256()).unwrap();
        let mut a = ChaChaRng::from_seed(4);
        let mut b = ChaChaRng::from_seed(4);
        assert_eq!(
            uniform_poly(&ctx, &mut a, PolyForm::Coeff),
            uniform_poly(&ctx, &mut b, PolyForm::Coeff)
        );
    }
}
