//! A per-session pool of reusable polynomial limb buffers.
//!
//! The henn conv/FC/pool kernels clone ciphertexts at every accumulator
//! site; each clone allocates `size × limbs` fresh coefficient vectors.
//! [`PolyArena`] recycles those vectors across stages of one inference
//! session: a consumed intermediate map is returned to the arena, and the
//! next stage's accumulator copies draw from the free list instead of the
//! global allocator.
//!
//! Determinism: a recycled buffer is always *fully overwritten*
//! (`clear` + `extend_from_slice`) before it is observable, so ciphertext
//! bytes are bit-identical whether a buffer came from the allocator or the
//! free list — the golden pipeline test pins this. The free list is shared
//! behind a mutex; pop order under parallelism is scheduler-dependent, but
//! buffers are interchangeable, so no observable value depends on it.

use crate::ciphertext::Ciphertext;
use crate::poly::RnsPoly;
use std::sync::{Arc, Mutex};

/// Free-list cap: beyond this the arena lets buffers drop, bounding the
/// session's steady-state memory at roughly one inference's worth of maps.
const MAX_FREE_BUFFERS: usize = 4096;

/// A cloneable handle to a shared pool of `Vec<u64>` limb buffers.
///
/// Cloning the handle shares the underlying pool (the handle is an
/// `Arc`), which is what the parallel henn kernels need: every worker
/// recycles into, and draws from, the same session arena.
#[derive(Debug, Clone, Default)]
pub struct PolyArena {
    free: Arc<Mutex<Vec<Vec<u64>>>>,
}

impl PolyArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the free list (telemetry /
    /// tests).
    pub fn free_buffers(&self) -> usize {
        self.free.lock().expect("arena lock").len()
    }

    /// A buffer holding a copy of `src`, reusing a free buffer when one is
    /// available.
    fn take_copy(&self, src: &[u64]) -> Vec<u64> {
        let mut buf = self
            .free
            .lock()
            .expect("arena lock")
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    fn recycle_buf(&self, buf: Vec<u64>) {
        let mut free = self.free.lock().expect("arena lock");
        if free.len() < MAX_FREE_BUFFERS {
            free.push(buf);
        }
    }

    /// An arena-backed copy of `src` (same limbs, same form).
    pub fn copy_poly(&self, src: &RnsPoly) -> RnsPoly {
        RnsPoly {
            limbs: src.limbs.iter().map(|l| self.take_copy(l)).collect(),
            form: src.form,
        }
    }

    /// Returns a polynomial's limb buffers to the free list.
    pub fn recycle_poly(&self, poly: RnsPoly) {
        for limb in poly.limbs {
            self.recycle_buf(limb);
        }
    }

    /// An arena-backed copy of a whole ciphertext.
    pub fn copy_ciphertext(&self, src: &Ciphertext) -> Ciphertext {
        Ciphertext {
            polys: src.polys.iter().map(|p| self.copy_poly(p)).collect(),
            context_id: src.context_id,
        }
    }

    /// Returns every limb buffer of a consumed ciphertext to the free list.
    pub fn recycle_ciphertext(&self, ct: Ciphertext) {
        for poly in ct.polys {
            self.recycle_poly(poly);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::BfvContext;
    use crate::params::presets;
    use crate::poly::PolyForm;

    #[test]
    fn copy_is_bit_identical_and_buffers_recycle() {
        let ctx = BfvContext::new(presets::test_n256()).unwrap();
        let arena = PolyArena::new();
        let poly = RnsPoly::from_signed(
            &ctx,
            &(0..ctx.poly_degree())
                .map(|i| (i as i64 % 11) - 5)
                .collect::<Vec<_>>(),
            PolyForm::Coeff,
        );
        let copy = arena.copy_poly(&poly);
        assert_eq!(copy, poly);
        let limb_count = poly.limbs.len();
        arena.recycle_poly(copy);
        assert_eq!(arena.free_buffers(), limb_count);
        // A second copy must drain the free list, not allocate.
        let again = arena.copy_poly(&poly);
        assert_eq!(again, poly);
        assert_eq!(arena.free_buffers(), 0);
    }

    #[test]
    fn recycled_garbage_never_leaks_into_copies() {
        let ctx = BfvContext::new(presets::test_n256()).unwrap();
        let arena = PolyArena::new();
        // Park a poisoned, wrong-length buffer.
        arena.recycle_buf(vec![u64::MAX; 7]);
        let zero = RnsPoly::zero(&ctx, PolyForm::Coeff);
        let copy = arena.copy_poly(&zero);
        assert_eq!(copy, zero);
    }

    #[test]
    fn clone_shares_the_pool() {
        let arena = PolyArena::new();
        let handle = arena.clone();
        handle.recycle_buf(vec![1, 2, 3]);
        assert_eq!(arena.free_buffers(), 1);
    }
}
