//! # hesgx-bfv
//!
//! A from-scratch Rust implementation of the Fan–Vercauteren (FV/BFV)
//! somewhat-homomorphic encryption scheme — the scheme the ICDCS 2021 paper
//! *"Privacy-Preserving Neural Network Inference Framework via Homomorphic
//! Encryption and SGX"* uses through Microsoft SEAL 2.1.
//!
//! The crate implements exactly the seven algorithms the paper lists in
//! §II-B, plus the supporting machinery:
//!
//! | Paper algorithm | API |
//! |---|---|
//! | `SecretKeyGen(1^λ)` | [`keys::KeyGenerator::secret_key`] |
//! | `PublicKeyGen(sk)` | [`keys::KeyGenerator::public_key`] |
//! | `Encrypt(pk, m)` | [`encryptor::Encryptor::encrypt`] |
//! | `Decrypt(sk, c)` | [`decryptor::Decryptor::decrypt`] |
//! | `Add(ct0, ct1)` | [`evaluator::Evaluator::add`] |
//! | `Multiply(ct0, ct1)` | [`evaluator::Evaluator::multiply`] |
//! | `EvaluationKeyGen(sk, w)` | [`keys::KeyGenerator::evaluation_keys`] |
//!
//! Design highlights:
//!
//! * **RNS coefficient modulus** — `q` is a product of NTT-friendly primes;
//!   all linear operations run per-limb with no big-integer arithmetic.
//! * **Exact multiplication** — the tensor product is computed over the
//!   integers in a wide CRT/NTT basis and rescaled by `round(t·x/q)` using
//!   `U256` arithmetic, matching the textbook FV definition bit for bit.
//! * **Three encoders** — scalar, SEAL-style integer (low-norm), and SIMD
//!   batching (`t ≡ 1 mod 2n`), the throughput extension of the paper's §VIII.
//! * **Noise budget tracking** — [`decryptor::Decryptor::invariant_noise_budget`]
//!   drives the hybrid framework's decision to refresh ciphertexts in the
//!   enclave instead of relinearizing.
//!
//! # Examples
//!
//! ```
//! use hesgx_bfv::prelude::*;
//! use hesgx_crypto::rng::ChaChaRng;
//!
//! # fn main() -> Result<(), hesgx_bfv::error::BfvError> {
//! let ctx = BfvContext::new(presets::test_n256())?;
//! let mut rng = ChaChaRng::from_seed(2021);
//! let keygen = KeyGenerator::new(ctx.clone(), &mut rng);
//! let encryptor = Encryptor::new(ctx.clone(), keygen.public_key());
//! let decryptor = Decryptor::new(ctx.clone(), keygen.secret_key());
//! let evaluator = Evaluator::new(ctx.clone());
//!
//! let a = encryptor.encrypt(&Plaintext::constant(6), &mut rng)?;
//! let b = encryptor.encrypt(&Plaintext::constant(7), &mut rng)?;
//! let product = evaluator.multiply(&a, &b)?;
//! assert_eq!(decryptor.decrypt(&product)?.coeffs()[0], 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod arith;
pub mod ciphertext;
pub mod context;
pub mod decryptor;
pub mod encoding;
pub mod encryptor;
pub mod error;
pub mod evaluator;
pub mod keys;
pub mod ntt;
pub mod params;
pub mod plaintext;
pub mod poly;
pub mod sampler;
pub mod serialization;

/// Convenient glob-import of the main types.
pub mod prelude {
    pub use crate::arena::PolyArena;
    pub use crate::ciphertext::Ciphertext;
    pub use crate::context::BfvContext;
    pub use crate::decryptor::Decryptor;
    pub use crate::encoding::{BatchEncoder, IntegerEncoder, ScalarEncoder};
    pub use crate::encryptor::Encryptor;
    pub use crate::error::BfvError;
    pub use crate::evaluator::{Evaluator, PlainScalar, PreparedBias};
    pub use crate::keys::{EvaluationKeys, KeyGenerator, PublicKey, SecretKey};
    pub use crate::params::{presets, EncryptionParameters, SecurityLevel};
    pub use crate::plaintext::{NttPlaintext, Plaintext};
}
