//! Plaintext polynomials over `R_t`.

use crate::poly::RnsPoly;
use serde::{Deserialize, Serialize};

/// A plaintext: a polynomial with coefficients reduced modulo the plaintext
/// modulus `t`. Produced by the encoders in [`crate::encoding`] and consumed
/// by [`crate::encryptor::Encryptor`] / [`crate::evaluator::Evaluator`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plaintext {
    coeffs: Vec<u64>,
}

impl Plaintext {
    /// Wraps raw coefficients (must already be reduced mod `t`).
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Plaintext { coeffs }
    }

    /// A plaintext holding the single constant `value` (already mod `t`).
    pub fn constant(value: u64) -> Self {
        Plaintext {
            coeffs: vec![value],
        }
    }

    /// The zero plaintext.
    pub fn zero() -> Self {
        Plaintext { coeffs: vec![0] }
    }

    /// Coefficients (low to high degree; may be shorter than `n`).
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Number of stored coefficients.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether every stored coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// `len() == 0` (an empty plaintext is also zero).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Largest nonzero degree plus one (0 for the zero plaintext).
    pub fn significant_len(&self) -> usize {
        self.coeffs
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |p| p + 1)
    }
}

impl Default for Plaintext {
    fn default() -> Self {
        Plaintext::zero()
    }
}

/// A plaintext cached in NTT (evaluation) form against one context — the
/// centered lift and forward transform that
/// [`crate::evaluator::Evaluator::mul_plain`] redoes per call, computed
/// once at weight provisioning and reused by
/// [`crate::evaluator::Evaluator::mul_plain_ntt`] for every request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NttPlaintext {
    pub(crate) poly: RnsPoly,
    /// Binds the cached transform to the parameter set that produced it.
    pub(crate) context_id: [u8; 32],
}

impl NttPlaintext {
    /// The context identifier this cached transform is bound to.
    pub fn context_id(&self) -> &[u8; 32] {
        &self.context_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_zero() {
        assert!(Plaintext::zero().is_zero());
        assert!(!Plaintext::constant(5).is_zero());
        assert_eq!(Plaintext::constant(5).coeffs(), &[5]);
    }

    #[test]
    fn significant_len_ignores_trailing_zeros() {
        let p = Plaintext::from_coeffs(vec![1, 0, 3, 0, 0]);
        assert_eq!(p.significant_len(), 3);
        assert_eq!(Plaintext::zero().significant_len(), 0);
    }
}
