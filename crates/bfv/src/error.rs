//! Error types for scheme-level operations.

use crate::params::ParameterError;

/// Errors returned by encryption, decryption, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BfvError {
    /// A key or ciphertext belongs to a different parameter set.
    ContextMismatch,
    /// The plaintext has more coefficients than the ring degree.
    PlaintextTooLong {
        /// Stored coefficient count.
        len: usize,
        /// Ring degree.
        degree: usize,
    },
    /// A plaintext coefficient is not reduced modulo `t`.
    PlaintextOutOfRange(u64),
    /// The ciphertext has an unexpected number of polynomials.
    InvalidCiphertextSize(usize),
    /// Relinearization was requested on a size-2 ciphertext.
    NothingToRelinearize,
    /// The evaluation keys do not match the context decomposition.
    EvaluationKeyMismatch,
    /// Batching requested but `t ≢ 1 (mod 2n)` or `t` is not prime.
    BatchingUnsupported,
    /// A value does not fit the encoder's representable range.
    EncodeOutOfRange(i64),
    /// Too many values for the available slots.
    TooManyValues {
        /// Provided value count.
        len: usize,
        /// Available slot count.
        slots: usize,
    },
    /// Invalid parameters (propagated from construction).
    Params(ParameterError),
}

impl std::fmt::Display for BfvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BfvError::ContextMismatch => write!(f, "artifact bound to a different context"),
            BfvError::PlaintextTooLong { len, degree } => {
                write!(f, "plaintext length {len} exceeds ring degree {degree}")
            }
            BfvError::PlaintextOutOfRange(c) => {
                write!(f, "plaintext coefficient {c} not reduced modulo t")
            }
            BfvError::InvalidCiphertextSize(s) => {
                write!(f, "ciphertext has invalid size {s}")
            }
            BfvError::NothingToRelinearize => {
                write!(f, "ciphertext already has size 2")
            }
            BfvError::EvaluationKeyMismatch => {
                write!(f, "evaluation keys do not match context decomposition")
            }
            BfvError::BatchingUnsupported => {
                write!(f, "plaintext modulus does not support batching")
            }
            BfvError::EncodeOutOfRange(v) => {
                write!(f, "value {v} outside encodable range")
            }
            BfvError::TooManyValues { len, slots } => {
                write!(f, "{len} values exceed {slots} available slots")
            }
            BfvError::Params(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for BfvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BfvError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParameterError> for BfvError {
    fn from(e: ParameterError) -> Self {
        BfvError::Params(e)
    }
}

/// Convenience alias for scheme-level results.
pub type Result<T> = std::result::Result<T, BfvError>;
