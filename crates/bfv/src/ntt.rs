//! Negacyclic number-theoretic transform over `Z_p[x]/(x^n + 1)`.
//!
//! The classic Longa–Naehrig formulation: the forward transform folds the
//! multiplication by powers of ψ (a primitive 2n-th root of unity) into the
//! butterflies, so polynomial multiplication modulo `x^n + 1` is a pointwise
//! product between forward transforms.

use crate::arith::{
    add_mod, inv_mod, mul_mod, mul_mod_shoup, primitive_root_of_unity, shoup_precompute, sub_mod,
};

/// Precomputed twiddle tables for one `(n, p)` pair.
///
/// Twiddle factors carry Shoup precomputations, so every butterfly costs two
/// multiplications and no division.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    p: u64,
    /// ψ^bitrev(i) for the forward (decimation-in-time, CT) transform.
    root_powers: Vec<u64>,
    /// Shoup constants for `root_powers`.
    root_powers_shoup: Vec<u64>,
    /// ψ^{-bitrev(i)} for the inverse (GS) transform.
    inv_root_powers: Vec<u64>,
    /// Shoup constants for `inv_root_powers`.
    inv_root_powers_shoup: Vec<u64>,
    /// n^{-1} mod p.
    inv_n: u64,
    /// Shoup constant for `inv_n`.
    inv_n_shoup: u64,
}

fn bit_reverse(mut x: usize, log_n: u32) -> usize {
    let mut r = 0;
    for _ in 0..log_n {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

impl NttTable {
    /// Builds tables for degree `n` (a power of two) and prime `p ≡ 1 mod 2n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `p ≢ 1 (mod 2n)`.
    pub fn new(n: usize, p: u64) -> Self {
        assert!(n.is_power_of_two(), "degree must be a power of two");
        assert_eq!(
            (p - 1) % (2 * n as u64),
            0,
            "prime must be congruent to 1 mod 2n"
        );
        let log_n = n.trailing_zeros();
        let psi = primitive_root_of_unity(p, 2 * n as u64);
        let psi_inv = inv_mod(psi, p).expect("psi invertible");

        let mut root_powers = vec![0u64; n];
        let mut inv_root_powers = vec![0u64; n];
        let mut power = 1u64;
        let mut powers = vec![0u64; n];
        for item in powers.iter_mut() {
            *item = power;
            power = mul_mod(power, psi, p);
        }
        let mut inv_power = 1u64;
        let mut inv_powers = vec![0u64; n];
        for item in inv_powers.iter_mut() {
            *item = inv_power;
            inv_power = mul_mod(inv_power, psi_inv, p);
        }
        for i in 0..n {
            root_powers[i] = powers[bit_reverse(i, log_n)];
            inv_root_powers[i] = inv_powers[bit_reverse(i, log_n)];
        }

        let inv_n = inv_mod(n as u64, p).expect("n invertible mod p");
        let root_powers_shoup = root_powers
            .iter()
            .map(|&w| shoup_precompute(w, p))
            .collect();
        let inv_root_powers_shoup = inv_root_powers
            .iter()
            .map(|&w| shoup_precompute(w, p))
            .collect();
        NttTable {
            n,
            p,
            root_powers,
            root_powers_shoup,
            inv_root_powers,
            inv_root_powers_shoup,
            inv_n,
            inv_n_shoup: shoup_precompute(inv_n, p),
        }
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the transform length is zero (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The prime modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// In-place forward negacyclic NTT (coefficient order → bit-reversed
    /// evaluation order).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n`.
    // hesgx-lint: hot
    pub fn forward(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.n);
        let p = self.p;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t >>= 1;
            for (i, block) in values.chunks_exact_mut(2 * t).enumerate() {
                let s = self.root_powers[m + i];
                let s_shoup = self.root_powers_shoup[m + i];
                let (left, right) = block.split_at_mut(t);
                for (a, b) in left.iter_mut().zip(right.iter_mut()) {
                    let u = *a;
                    let v = mul_mod_shoup(*b, s, s_shoup, p);
                    *a = add_mod(u, v, p);
                    *b = sub_mod(u, v, p);
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (bit-reversed evaluation order →
    /// coefficient order).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n`.
    // hesgx-lint: hot
    pub fn inverse(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.n);
        let p = self.p;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            for (i, block) in values.chunks_exact_mut(2 * t).enumerate() {
                let s = self.inv_root_powers[h + i];
                let s_shoup = self.inv_root_powers_shoup[h + i];
                let (left, right) = block.split_at_mut(t);
                for (a, b) in left.iter_mut().zip(right.iter_mut()) {
                    let u = *a;
                    let v = *b;
                    *a = add_mod(u, v, p);
                    *b = mul_mod_shoup(sub_mod(u, v, p), s, s_shoup, p);
                }
            }
            t <<= 1;
            m = h;
        }
        for v in values.iter_mut() {
            *v = mul_mod_shoup(*v, self.inv_n, self.inv_n_shoup, p);
        }
    }

    /// Negacyclic convolution of `a` and `b` (both length `n`, coefficients
    /// mod `p`), returning the product modulo `x^n + 1`.
    // hesgx-lint: hot
    pub fn negacyclic_multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = mul_mod(*x, *y, self.p);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication (test oracle, O(n^2)).
pub fn negacyclic_multiply_naive(a: &[u64], b: &[u64], p: u64) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = mul_mod(ai, bj, p);
            let k = i + j;
            if k < n {
                out[k] = add_mod(out[k], prod, p);
            } else {
                out[k - n] = sub_mod(out[k - n], prod, p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hesgx_crypto::rng::ChaChaRng;

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 256;
        let p = crate::arith::largest_prime_congruent_one(45, 2 * n as u64);
        let table = NttTable::new(n, p);
        let mut rng = ChaChaRng::from_seed(1);
        let original: Vec<u64> = (0..n).map(|_| rng.next_below(p)).collect();
        let mut values = original.clone();
        table.forward(&mut values);
        assert_ne!(values, original);
        table.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn multiply_matches_naive() {
        for n in [8usize, 64, 256] {
            let p = crate::arith::largest_prime_congruent_one(40, 2 * n as u64);
            let table = NttTable::new(n, p);
            let mut rng = ChaChaRng::from_seed(n as u64);
            let a: Vec<u64> = (0..n).map(|_| rng.next_below(p)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.next_below(p)).collect();
            assert_eq!(
                table.negacyclic_multiply(&a, &b),
                negacyclic_multiply_naive(&a, &b, p),
                "degree {n}"
            );
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // (x^(n-1)) * x = x^n = -1 mod x^n + 1.
        let n = 16;
        let p = crate::arith::largest_prime_congruent_one(30, 2 * n as u64);
        let table = NttTable::new(n, p);
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let prod = table.negacyclic_multiply(&a, &b);
        let mut expect = vec![0u64; n];
        expect[0] = p - 1;
        assert_eq!(prod, expect);
    }

    #[test]
    fn multiply_by_one_is_identity() {
        let n = 32;
        let p = crate::arith::largest_prime_congruent_one(30, 2 * n as u64);
        let table = NttTable::new(n, p);
        let mut rng = ChaChaRng::from_seed(7);
        let a: Vec<u64> = (0..n).map(|_| rng.next_below(p)).collect();
        let mut one = vec![0u64; n];
        one[0] = 1;
        assert_eq!(table.negacyclic_multiply(&a, &one), a);
    }
}
